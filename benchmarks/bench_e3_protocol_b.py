"""E3 — Theorem 2: protocol B at m = 2*m0 across (r, t, mf) and placements."""

from benchmarks.conftest import run_registry
from repro.experiments.e3_protocol_b import table


def test_e3_protocol_b_sufficiency(benchmark):
    result = run_registry(benchmark, "e3")
    print()
    print(table(result))
    assert result.all_succeed, "Theorem 2: m = 2*m0 must always succeed"
    assert result.cost_within_twice_lower_bound, "cost must stay within 2x m0"
