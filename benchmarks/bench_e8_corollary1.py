"""E8 — Corollary 1 feasibility map in the (t, m) plane."""

from benchmarks.conftest import run_registry
from repro.experiments.e8_corollary1 import table


def test_e8_feasibility_boundary(benchmark):
    result = run_registry(benchmark, "e8")
    print()
    print(table(result))
    assert result.all_consistent, "no tolerable point may fail"
    assert result.breakable_failure_rate > 0.5, (
        "the impossibility side must be realized away from razor-tight points"
    )
