"""E4 — message-efficiency comparison vs the Koo et al. [14] baseline."""

import pytest

from benchmarks.conftest import run_registry
from repro.experiments.e4_koo_comparison import table


def test_e4_budget_comparison(benchmark):
    result = run_registry(benchmark, "e4")
    print()
    print(table(result))
    # The paper's headline: baseline/B budget ratio ~ (r(2r+1) - t)/2.
    fig2_row = next(r for r in result.rows if (r.r, r.t, r.mf) == (4, 1, 1000))
    assert fig2_row.koo_m == 2001 and fig2_row.b_m == 112
    assert fig2_row.ratio == pytest.approx(fig2_row.paper_ratio, rel=0.05)
    measured = result.measured
    assert measured.koo_success and measured.b_success
    assert measured.b_max_sent < measured.koo_max_sent
