"""E1 — Theorem 1 / Figure 1: stripe impossibility series (decided fraction vs m)."""

from benchmarks.conftest import run_registry
from repro.experiments.e1_impossibility import table


def test_e1_stripe_impossibility(benchmark):
    result = run_registry(benchmark, "e1")
    print()
    print(table(result))
    assert result.fails_below_m0, "Theorem 1: every m < m0 must fail"
    assert result.succeeds_at_2m0, "Theorem 2: every m >= 2*m0 must succeed"
    starved = [p for p in result.points if p.m < result.m0]
    assert all(p.band_decided == 0 for p in starved), "band must be fully starved"
