"""E10 — mapping the paper's open region m ∈ (m0, 2m0) (extension)."""

from benchmarks.conftest import run_registry
from repro.experiments.e10_uncertain_region import table


def test_e10_open_region_map(benchmark):
    result = run_registry(benchmark, "e10")
    print()
    print(table(result))
    # The Figure-2 construction funds attacks only up to m = 3*t*mf/50.
    for point in result.points:
        expected = point.m <= result.lattice_breakable_until
        assert point.lattice_wins == expected
    # Everything near 2*m0 resists every implemented attack.
    assert result.points[-1].empirically_possible
