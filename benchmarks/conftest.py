"""Shared helpers for the benchmark harness.

Every experiment benchmark resolves its harness through
:mod:`repro.experiments.registry` and runs it exactly once per pytest-
benchmark round (the experiments are deterministic end-to-end runs, not
microbenchmarks), prints the regenerated table — the same rows the
paper's analysis predicts — and asserts the headline claim.

Run with::

    pytest benchmarks/ --benchmark-only            # timings + assertions
    pytest benchmarks/ --benchmark-only -s         # ... plus the tables
    REPRO_BENCH_WORKERS=4 pytest benchmarks/ ...   # parallel sweeps

``REPRO_BENCH_WORKERS`` fans each experiment's sweep points out over
worker processes; results are bit-identical to the serial default (the
determinism suite under ``tests/`` enforces this), so assertions hold at
any worker count.
"""

from __future__ import annotations

import os

from repro.experiments import registry

#: Worker processes per experiment sweep (0 = one per CPU).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic end-to-end harness with one invocation."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_registry(benchmark, exp_id: str):
    """Benchmark one experiment end-to-end through the registry."""
    experiment = registry.get(exp_id)
    return benchmark.pedantic(
        lambda: experiment.run(workers=BENCH_WORKERS), rounds=1, iterations=1
    )
