"""Shared helpers for the benchmark harness.

Every experiment benchmark runs its harness exactly once per pytest-
benchmark round (the experiments are deterministic end-to-end runs, not
microbenchmarks), prints the regenerated table — the same rows the
paper's analysis predicts — and asserts the headline claim.

Run with::

    pytest benchmarks/ --benchmark-only            # timings + assertions
    pytest benchmarks/ --benchmark-only -s         # ... plus the tables
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic end-to-end harness with one invocation."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
