"""E5 — Theorem 3 / Figure 5: heterogeneous budget savings vs grid size."""

from benchmarks.conftest import run_registry
from repro.experiments.e5_heterogeneous import table


def test_e5_heterogeneous_budgets(benchmark):
    result = run_registry(benchmark, "e5")
    print()
    print(table(result))
    assert result.all_succeed, "Theorem 3: B_heter must broadcast reliably"
    assert result.always_cheaper_than_homogeneous
    # Savings approach 1 - m0/(2*m0) = 50% as the cross's share shrinks.
    fractions = [p.savings_fraction for p in result.points if p.placement == "random"]
    assert fractions == sorted(fractions), "savings must grow with network size"
