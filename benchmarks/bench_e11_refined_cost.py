"""E11 — refined chain-vs-I-code efficiency model (§5 future work)."""

from benchmarks.conftest import run_registry
from repro.experiments.e11_refined_coding_cost import table


def test_e11_refined_cost_model(benchmark):
    result = run_registry(benchmark, "e11")
    print()
    print(table(result))
    assert result.model_matches_simulation
    # Attack-free: the chain code's k+O(log k) always beats 2k.
    for row in result.rows:
        if row.attacks == 0:
            assert row.chain_wins
    # All crossovers sit below one attack per message: per-bit repair
    # wins as soon as the adversary spends anything.
    assert all(a_star < 1.0 for _, a_star in result.crossovers)
