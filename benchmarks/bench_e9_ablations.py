"""E9 — design-choice ablations (relay count, growth shape, quiet window)."""

from benchmarks.conftest import BENCH_WORKERS, run_once
from repro.experiments.e9_ablations import (
    run_growth_shape,
    run_quiet_window,
    run_relay_sweep,
    table_a,
    table_b,
    table_c,
)


def test_e9a_relay_count(benchmark):
    points = run_once(benchmark, run_relay_sweep, workers=BENCH_WORKERS)
    print()
    print(table_a(points))
    by_label = {p.label: p for p in points}
    assert not by_label["m0 - 1"].success
    assert any("protocol B" in label and p.success for label, p in by_label.items())


def test_e9b_growth_shape(benchmark):
    result = run_once(benchmark, run_growth_shape)
    print()
    print(table_b(result))
    assert not result.homogeneous_success, "square growth stalls at m0+1 (Fig 2)"
    assert result.heterogeneous_success, "cross/circular growth survives (Thm 3)"


def test_e9c_quiet_window(benchmark):
    points = run_once(benchmark, run_quiet_window, workers=BENCH_WORKERS)
    print()
    print(table_c(points))
    paper_window = next(p for p in points if p.window == 8)
    assert paper_window.success_rate == 1.0
