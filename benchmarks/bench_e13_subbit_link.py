"""E13 — faithful sub-bit link layer vs the E7 message-level model."""

import pytest

from benchmarks.conftest import run_registry
from repro.experiments.e13_subbit_link import table


def test_e13_link_abstraction_validation(benchmark):
    result = run_registry(benchmark, "e13")
    print()
    print(table(result))
    assert result.delivery_rate == 1.0
    assert result.cost_model_match_rate == 1.0
    assert result.total_forgeries == 0
    assert result.measured_cancellation_rate == pytest.approx(
        result.analytic_cancellation_rate, abs=0.004
    )
