"""E2 — Figure 2 worked example at the paper's exact parameters."""

from benchmarks.conftest import run_once
from repro.experiments.e2_figure2 import run_figure2, table


def test_e2_figure2_exact_numbers(benchmark):
    result = run_once(benchmark, run_figure2)
    print()
    print(table(result))
    assert result.m0 == 58
    assert result.decided_good + 1 == 84  # source square + 4 mid-side nodes
    assert result.p_suppliers == 33
    assert result.p_potential == 1947
    assert result.midside_potential == 2065
    assert result.p_clean <= 1000  # t*mf: one copy short of acceptance
    assert result.defender_spend <= 1000  # within the bad node's budget mf
    assert result.broadcast_failed  # m = m0 + 1 is not sufficient
