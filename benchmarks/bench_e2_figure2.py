"""E2 — Figure 2 worked example at the paper's exact parameters."""

from benchmarks.conftest import run_once, run_registry
from repro.experiments.e2_figure2 import run_figure2, sweep_table, table


def test_e2_figure2_exact_numbers(benchmark):
    result = run_once(benchmark, run_figure2)
    print()
    print(table(result))
    assert result.m0 == 58
    assert result.decided_good + 1 == 84  # source square + 4 mid-side nodes
    assert result.p_suppliers == 33
    assert result.p_potential == 1947
    assert result.midside_potential == 2065
    assert result.p_clean <= 1000  # t*mf: one copy short of acceptance
    assert result.defender_spend <= 1000  # within the bad node's budget mf
    assert result.broadcast_failed  # m = m0 + 1 is not sufficient


def test_e2_generalized_sweep(benchmark):
    sweep = run_registry(benchmark, "e2")
    print()
    print(sweep_table(sweep))
    # Every fundable budget in the sweep window stalls the broadcast.
    assert all(s.broadcast_failed for s in sweep.results)
    paper = {s.m: s for s in sweep.results}[59]
    assert paper.p_clean <= 1000 and paper.defender_spend <= 1000
