"""E7 — Theorem 4: B_reactive reliability and message cost."""

from benchmarks.conftest import run_registry
from repro.experiments.e7_reactive import table


def test_e7_reactive_broadcast(benchmark):
    result = run_registry(benchmark, "e7")
    print()
    print(table(result))
    assert result.success_rate >= 1.0 - 1.0 / result.n
    assert result.within_paper_bound, "message rounds must fit 2*(t*mf+1)"
    measured_subbits = result.max_message_rounds * result.K * result.L
    # Theorem 4's closed form uses real-valued logs; allow the ceil(L) slack.
    assert measured_subbits <= result.theorem4_subbit_budget * 1.05
    assert result.forced_failure_wrong > 0, "tiny L must be exploitable"
