"""E12 — probabilistic crash failures (§6 future work, model of [4])."""

from benchmarks.conftest import run_once
from repro.experiments.e12_probabilistic_failures import (
    run_probabilistic_failures,
    table,
)


def test_e12_failure_percolation(benchmark):
    result = run_once(benchmark, run_probabilistic_failures)
    print()
    print(table(result))
    assert result.larger_radius_tolerates_more
    # Failure-free runs are complete; heavy failures break r=1 coverage.
    assert result.fraction_at(1, 0.0) == 1.0
    assert result.fraction_at(2, 0.0) == 1.0
    assert result.fraction_at(1, 0.7) < 1.0
