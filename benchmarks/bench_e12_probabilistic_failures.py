"""E12 — probabilistic crash failures (§6 future work, model of [4])."""

from benchmarks.conftest import run_registry
from repro.experiments.e12_probabilistic_failures import table


def test_e12_failure_percolation(benchmark):
    result = run_registry(benchmark, "e12")
    print()
    print(table(result))
    assert result.larger_radius_tolerates_more
    # Failure-free runs are complete; heavy failures break r=1 coverage.
    assert result.fraction_at(1, 0.0) == 1.0
    assert result.fraction_at(2, 0.0) == 1.0
    assert result.fraction_at(1, 0.7) < 1.0
