"""E6 — Figure 9 coding scheme: overhead table, detection, attack rates.

Also contains genuine microbenchmarks of the hot coding paths (encode,
verify, sub-bit expansion) since §5 envisions these running on sensor
firmware.
"""

import random

import pytest

from benchmarks.conftest import run_registry
from repro.coding.chain import ChainCode
from repro.coding.subbit import SubbitCodec
from repro.experiments.e6_coding import table


def test_e6_coding_experiment(benchmark):
    result = run_registry(benchmark, "e6")
    print()
    print(table(result))
    assert result.detection.detection_rate == 1.0
    assert result.detection.literal_allzero_forgery_passes  # documented gap
    for row in result.overhead:
        if row.k >= 16:
            assert row.chain_K < row.icode_K, "chain code must beat I-code's 2k"
    for row in result.cancellation:
        assert row.measured_rate == pytest.approx(row.analytic_rate, rel=0.35)


def test_chain_encode_throughput(benchmark):
    code = ChainCode(256)
    message = tuple(random.Random(0).getrandbits(1) for _ in range(256))
    word = benchmark(code.encode, message)
    assert code.verify(word)


def test_chain_verify_throughput(benchmark):
    code = ChainCode(256)
    message = tuple(random.Random(0).getrandbits(1) for _ in range(256))
    word = code.encode(message)
    assert benchmark(code.verify, word)


def test_subbit_encode_throughput(benchmark):
    codec = SubbitCodec(block_length=32, rng=random.Random(1))
    bits = tuple(random.Random(2).getrandbits(1) for _ in range(64))
    signal = benchmark(codec.encode, bits)
    assert len(signal) == 64 * 32
