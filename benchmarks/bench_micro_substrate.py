"""Microbenchmarks of the simulator's hot paths.

Not paper artifacts — these guard the substrate's performance so the
experiment harnesses stay tractable as the library grows.
"""

from repro.adversary.placement import RandomPlacement
from repro.network.grid import Grid, GridSpec
from repro.network.node import NodeTable
from repro.radio.medium import Medium
from repro.radio.messages import Transmission
from repro.radio.schedule import TdmaSchedule
from repro.runner.broadcast_run import ThresholdRunConfig
from repro.scenario import run as run_spec

SPEC = GridSpec(width=30, height=30, r=2, torus=True)


def test_grid_construction(benchmark):
    grid = benchmark(Grid, SPEC)
    assert grid.n == 900


def test_medium_slot_resolution(benchmark):
    grid = Grid(SPEC)
    medium = Medium(grid)
    transmitters = [
        Transmission(grid.id_of((x, y)), 1)
        for x in range(0, 30, 5)
        for y in range(0, 30, 5)
    ]
    deliveries = benchmark(medium.resolve_slot, transmitters, [])
    assert len(deliveries) == len(transmitters) * 24


def test_medium_slot_resolution_reference(benchmark):
    # The preserved dict-based resolver: the fast path's referee and
    # the baseline the BENCH_slot_resolution.json trajectory divides by.
    grid = Grid(SPEC)
    medium = Medium(grid, fast=False)
    transmitters = [
        Transmission(grid.id_of((x, y)), 1)
        for x in range(0, 30, 5)
        for y in range(0, 30, 5)
    ]
    deliveries = benchmark(medium.resolve_slot, transmitters, [])
    assert len(deliveries) == len(transmitters) * 24


def test_schedule_verification(benchmark):
    grid = Grid(SPEC)
    schedule = TdmaSchedule(grid)
    benchmark(schedule.verify_collision_free)


def test_local_boundedness_validation(benchmark):
    grid = Grid(SPEC)
    bad = RandomPlacement(t=2, count=30, seed=0).bad_ids(grid, 0)
    table = NodeTable(grid, 0, bad)
    benchmark(table.validate_locally_bounded, 2)


def test_full_protocol_b_run(benchmark):
    def run():
        return run_spec(
            ThresholdRunConfig(
                spec=SPEC,
                t=2,
                mf=2,
                placement=RandomPlacement(t=2, count=20, seed=1),
                protocol="b",
                batch_per_slot=4,
            ).to_scenario_spec()
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.success
