"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (which must build a wheel) fail; this shim lets
``pip install -e .`` fall back to ``setup.py develop``. All metadata lives
in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
