"""Run reports: the :class:`BroadcastReport` result object and table formatting.

Experiments print the same rows the paper's analysis predicts; a tiny
formatter keeps that output dependency-free and diff-friendly.
:class:`BroadcastReport` lives here (rather than next to the runner)
because it is pure result data with no assembly dependencies — both the
scenario runner and the deprecated ``broadcast_run`` shims return it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.analysis.budgets import BudgetAssignment
    from repro.analysis.metrics import BroadcastOutcome, MessageCosts
    from repro.network.grid import Grid
    from repro.network.node import NodeTable
    from repro.radio.budget import BudgetLedger
    from repro.radio.mac import RunStats
    from repro.types import NodeId


@dataclass
class BroadcastReport:
    """Everything a test or experiment needs from a finished run."""

    outcome: "BroadcastOutcome"
    costs: "MessageCosts"
    stats: "RunStats"
    grid: "Grid"
    table: "NodeTable"
    nodes: "Mapping[NodeId, object]"
    adversary: object
    ledger: "BudgetLedger"
    assignment: "BudgetAssignment | None" = None

    @property
    def success(self) -> bool:
        return self.outcome.success


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_render(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    if cells:
        out.extend(line(row) for row in cells)
    else:
        # Zero-row sweeps (e.g. an empty point list) must still render a
        # well-formed table rather than raising or printing nothing.
        out.append("(no rows)")
    return "\n".join(out)
