"""End-to-end broadcast runs.

The two entry points — :func:`run_threshold_broadcast` (protocols B,
B_heter, Koo baseline, §2-§4) and :func:`run_reactive_broadcast`
(B_reactive, §5) — assemble grid, roles, budgets, protocol nodes, and an
adversary, drive the slotted MAC to quiescence, and return a
:class:`BroadcastReport` with the verified outcome, message costs, and
live handles for deeper inspection by tests and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal, Mapping

from repro.adversary.base import Adversary, NullAdversary
from repro.adversary.jamming import ThresholdGuardJammer
from repro.adversary.lying import SpamLiar, SpoofingJammer
from repro.adversary.placement import Placement
from repro.analysis.budgets import (
    BudgetAssignment,
    heterogeneous_assignment,
    homogeneous_assignment,
)
from repro.analysis.metrics import BroadcastOutcome, MessageCosts
from repro.analysis.verify import collect_costs, collect_outcome
from repro.errors import ConfigurationError
from repro.network.grid import Grid, GridSpec
from repro.network.node import NodeTable
from repro.protocols.base import BroadcastParams, ThresholdNode
from repro.protocols.cpa import make_cpa_nodes
from repro.protocols.koo_baseline import make_koo_nodes
from repro.protocols.protocol_b import make_protocol_b_nodes, protocol_b_required_budget
from repro.protocols.protocol_heter import make_protocol_heter_nodes
from repro.protocols.reactive import CodedJammerAdversary, make_reactive_nodes
from repro.radio.budget import BudgetLedger
from repro.radio.mac import RoundDriver, RunLimits, RunStats
from repro.sim.rng import RngRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.types import VTRUE, Coord, NodeId, Role, Value

ProtocolName = Literal["b", "koo", "heter", "cpa"]
BehaviorName = Literal["jam", "lie", "spoof", "none", "custom"]

#: Signature of a custom adversary factory (behavior="custom").
AdversaryFactory = Callable[[Grid, NodeTable, BudgetLedger], Adversary]


@dataclass
class BroadcastReport:
    """Everything a test or experiment needs from a finished run."""

    outcome: BroadcastOutcome
    costs: MessageCosts
    stats: RunStats
    grid: Grid
    table: NodeTable
    nodes: Mapping[NodeId, object]
    adversary: Adversary | CodedJammerAdversary
    ledger: BudgetLedger
    assignment: BudgetAssignment | None = None

    @property
    def success(self) -> bool:
        return self.outcome.success


@dataclass(frozen=True)
class ThresholdRunConfig:
    """Configuration for a §2-§4 style run.

    ``m`` is the homogeneous good-node budget; ``None`` uses the
    protocol's sufficient budget (``2*m0`` for B, ``2tmf+1`` for Koo).
    The heterogeneous protocol ignores ``m`` and uses the Figure-5
    assignment. ``protected`` focuses the jammer on specific receivers
    (e.g. the victim band of an impossibility experiment).
    ``relay_override`` (protocol "b" only) replaces the relay count —
    used by ablation E9a to sweep the relay knob independently.
    """

    spec: GridSpec
    t: int
    mf: int
    placement: Placement
    protocol: ProtocolName = "b"
    behavior: BehaviorName = "jam"
    m: int | None = None
    source: Coord = (0, 0)
    vtrue: Value = VTRUE
    protected: Iterable[NodeId] | None = None
    max_rounds: int | None = None
    batch_per_slot: int = 1
    relay_override: int | None = None
    validate_local_bound: bool = True
    tracer: Tracer = field(default=NULL_TRACER)
    adversary_factory: AdversaryFactory | None = None


def _default_max_rounds(
    spec: GridSpec, source_sends: int, relay_count: int
) -> int:
    """Generous cap: source phase + one relay phase per unit of distance."""
    if spec.torus:
        max_distance = max(spec.width, spec.height) // 2
    else:
        max_distance = max(spec.width, spec.height)
    return source_sends + (max_distance + 2) * (relay_count + 2) + 10


def run_threshold_broadcast(cfg: ThresholdRunConfig) -> BroadcastReport:
    """Assemble and run one threshold-protocol broadcast to quiescence."""
    grid = Grid(cfg.spec)
    source = grid.id_of(cfg.source)
    table = NodeTable(grid, source, cfg.placement.bad_ids(grid, source))
    if cfg.validate_local_bound:
        table.validate_locally_bounded(cfg.t)
    params = BroadcastParams(r=cfg.spec.r, t=cfg.t, mf=cfg.mf, vtrue=cfg.vtrue)

    assignment: BudgetAssignment | None = None
    if cfg.protocol == "b":
        if cfg.relay_override is not None:
            nodes = {
                nid: ThresholdNode(
                    nid,
                    Role.SOURCE if nid == source else Role.GOOD,
                    params,
                    relay_count=cfg.relay_override,
                )
                for nid in table.good_ids
            }
        else:
            nodes = make_protocol_b_nodes(table, params)
        default_m = protocol_b_required_budget(cfg.spec.r, cfg.t, cfg.mf)
        good_budget = cfg.m if cfg.m is not None else default_m
        assignment = homogeneous_assignment(grid, source, good_budget)
    elif cfg.protocol == "koo":
        nodes = make_koo_nodes(table, params)
        good_budget = cfg.m if cfg.m is not None else params.source_sends
        assignment = homogeneous_assignment(grid, source, good_budget)
    elif cfg.protocol == "heter":
        assignment = heterogeneous_assignment(grid, source, cfg.t, cfg.mf)
        nodes = make_protocol_heter_nodes(table, params, assignment)
    elif cfg.protocol == "cpa":
        nodes = make_cpa_nodes(table, params)
        good_budget = cfg.m if cfg.m is not None else 1
        assignment = homogeneous_assignment(grid, source, good_budget)
    else:
        raise ConfigurationError(f"unknown protocol {cfg.protocol!r}")

    overrides = assignment.overrides()
    for bad in table.bad_ids:
        overrides[bad] = cfg.mf
    ledger = BudgetLedger(grid.n, default_budget=None, overrides=overrides)

    adversary: Adversary
    if cfg.behavior == "jam":
        jammer = ThresholdGuardJammer(
            grid,
            table,
            ledger,
            threshold=params.threshold,
            protected=cfg.protected,
            vtrue=cfg.vtrue,
            tracer=cfg.tracer,
        )
        jammer.bind_decided(nodes)
        adversary = jammer
    elif cfg.behavior == "lie":
        adversary = SpamLiar(grid, table, ledger)
    elif cfg.behavior == "spoof":
        adversary = SpoofingJammer(grid, table, ledger)
    elif cfg.behavior == "none":
        adversary = NullAdversary()
    elif cfg.behavior == "custom":
        if cfg.adversary_factory is None:
            raise ConfigurationError(
                "behavior='custom' requires an adversary_factory"
            )
        adversary = cfg.adversary_factory(grid, table, ledger)
        binder = getattr(adversary, "bind_decided", None)
        if callable(binder):
            binder(nodes)
    else:
        raise ConfigurationError(f"unknown behavior {cfg.behavior!r}")

    driver = RoundDriver(
        grid,
        table,
        nodes,
        adversary,
        ledger,
        batch_per_slot=cfg.batch_per_slot,
        tracer=cfg.tracer,
    )
    relay_guess = max(
        (assignment.maximum if assignment else 1),
        1,
    )
    max_rounds = (
        cfg.max_rounds
        if cfg.max_rounds is not None
        else _default_max_rounds(cfg.spec, params.source_sends, relay_guess)
    )
    stats = driver.run(RunLimits(max_rounds=max_rounds))

    outcome = collect_outcome(table, nodes, stats, cfg.vtrue)
    costs = collect_costs(table, ledger)
    return BroadcastReport(
        outcome=outcome,
        costs=costs,
        stats=stats,
        grid=grid,
        table=table,
        nodes=nodes,
        adversary=adversary,
        ledger=ledger,
        assignment=assignment,
    )


@dataclass(frozen=True)
class ReactiveRunConfig:
    """Configuration for a §5 B_reactive run.

    ``mf`` is the bad nodes' *actual* budget — unknown to the protocol,
    which only relies on the loose bound ``mmax`` through the code length
    ``L``. ``p_forge_override`` forces a (large) forgery probability so
    tests can exercise the failure path deterministically.
    """

    spec: GridSpec
    t: int
    mf: int
    mmax: int
    placement: Placement
    source: Coord = (0, 0)
    vtrue: Value = VTRUE
    seed: int = 0
    attack_nacks: bool = True
    p_forge_override: float | None = None
    quiet_window_override: int | None = None
    max_rounds: int | None = None
    tracer: Tracer = field(default=NULL_TRACER)


def run_reactive_broadcast(cfg: ReactiveRunConfig) -> BroadcastReport:
    """Assemble and run one B_reactive broadcast to quiescence."""
    grid = Grid(cfg.spec)
    source = grid.id_of(cfg.source)
    table = NodeTable(grid, source, cfg.placement.bad_ids(grid, source))
    table.validate_locally_bounded(cfg.t)

    overrides: dict[NodeId, int | None] = {bad: cfg.mf for bad in table.bad_ids}
    overrides[source] = None
    ledger = BudgetLedger(grid.n, default_budget=None, overrides=overrides)

    nodes = make_reactive_nodes(
        table,
        cfg.t,
        cfg.spec.r,
        cfg.vtrue,
        quiet_limit=cfg.quiet_window_override,
    )
    rng = RngRegistry(cfg.seed).stream("reactive-adversary")
    if cfg.p_forge_override is not None:
        adversary = CodedJammerAdversary(
            grid,
            table,
            ledger,
            rng,
            p_forge=cfg.p_forge_override,
            attack_nacks=cfg.attack_nacks,
        )
    else:
        adversary = CodedJammerAdversary.with_recommended_code(
            grid,
            table,
            ledger,
            rng,
            t=cfg.t,
            mmax=cfg.mmax,
            attack_nacks=cfg.attack_nacks,
        )

    driver = RoundDriver(grid, table, nodes, adversary, ledger, tracer=cfg.tracer)
    # Every local broadcast waits out a (2r+1)^2-1 quiet window; attacks
    # prolong it by at most one window per bad message.
    window = (2 * cfg.spec.r + 1) ** 2
    hops = (max(cfg.spec.width, cfg.spec.height) // 2) // cfg.spec.r + 2
    attack_budget = len(table.bad_ids) * cfg.mf
    max_rounds = (
        cfg.max_rounds
        if cfg.max_rounds is not None
        else hops * window + attack_budget * window + 50
    )
    stats = driver.run(RunLimits(max_rounds=max_rounds))

    outcome = collect_outcome(table, nodes, stats, cfg.vtrue)
    costs = collect_costs(table, ledger)
    return BroadcastReport(
        outcome=outcome,
        costs=costs,
        stats=stats,
        grid=grid,
        table=table,
        nodes=nodes,
        adversary=adversary,
        ledger=ledger,
    )
