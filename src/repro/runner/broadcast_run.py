"""Deprecated end-to-end run entry points (use :mod:`repro.scenario`).

Historically this module owned the whole scenario assembly: two divergent
config dataclasses (:class:`ThresholdRunConfig` / :class:`ReactiveRunConfig`)
plus string-literal ``if/elif`` dispatch over protocol and adversary
names. That shape is now :class:`repro.scenario.ScenarioSpec` — one
frozen, serializable object from grid to adversary — executed by
:func:`repro.scenario.run` through name-based component registries.

The two config classes and :func:`run_threshold_broadcast` /
:func:`run_reactive_broadcast` survive as thin shims that translate to a
``ScenarioSpec`` and delegate, so existing callers keep working and keep
producing bit-identical results (the golden-table suite enforces this).
New code should build specs directly::

    from repro.scenario import ScenarioSpec, run
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Literal

from repro.adversary.placement import Placement
from repro.errors import ConfigurationError
from repro.network.grid import GridSpec
from repro.runner.report import BroadcastReport
from repro.sim.trace import NULL_TRACER, Tracer
from repro.types import VTRUE, Coord, NodeId, Value

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.adversary.base import Adversary
    from repro.network.grid import Grid
    from repro.network.node import NodeTable
    from repro.radio.budget import BudgetLedger

#: Deprecated — protocols now register by name in
#: :data:`repro.scenario.registries.protocols`.
ProtocolName = Literal["b", "koo", "heter", "cpa"]
#: Deprecated — behaviors now register by name in
#: :data:`repro.scenario.registries.behaviors`.
BehaviorName = Literal["jam", "lie", "spoof", "none", "custom"]

#: Signature of a custom adversary factory (behavior="custom").
AdversaryFactory = Callable[["Grid", "NodeTable", "BudgetLedger"], "Adversary"]

__all__ = [
    "AdversaryFactory",
    "BehaviorName",
    "BroadcastReport",
    "ProtocolName",
    "ReactiveRunConfig",
    "ThresholdRunConfig",
    "run_reactive_broadcast",
    "run_threshold_broadcast",
]


@dataclass(frozen=True)
class ThresholdRunConfig:
    """Deprecated configuration for a §2-§4 style run.

    ``m`` is the homogeneous good-node budget; ``None`` uses the
    protocol's sufficient budget (``2*m0`` for B, ``2tmf+1`` for Koo).
    The heterogeneous protocol ignores ``m`` and uses the Figure-5
    assignment. ``protected`` focuses the jammer on specific receivers
    (e.g. the victim band of an impossibility experiment).
    ``relay_override`` (protocol "b" only) replaces the relay count —
    used by ablation E9a to sweep the relay knob independently.

    Prefer :class:`repro.scenario.ScenarioSpec`; :meth:`to_scenario_spec`
    is the exact translation (``behavior="custom"`` excepted — callables
    are not scenario content; register a behavior instead).
    """

    spec: GridSpec
    t: int
    mf: int
    placement: Placement
    protocol: ProtocolName = "b"
    behavior: BehaviorName = "jam"
    m: int | None = None
    source: Coord = (0, 0)
    vtrue: Value = VTRUE
    protected: Iterable[NodeId] | None = None
    max_rounds: int | None = None
    batch_per_slot: int = 1
    relay_override: int | None = None
    validate_local_bound: bool = True
    tracer: Tracer = field(default=NULL_TRACER)
    adversary_factory: AdversaryFactory | None = None

    def to_scenario_spec(self):
        """The equivalent :class:`~repro.scenario.ScenarioSpec`."""
        from repro.scenario.spec import ScenarioSpec

        protocol_params = {}
        if self.relay_override is not None:
            protocol_params["relay_override"] = self.relay_override
        return ScenarioSpec(
            grid=self.spec,
            t=self.t,
            mf=self.mf,
            placement=self.placement,
            protocol=self.protocol,
            behavior=None if self.behavior == "custom" else self.behavior,
            m=self.m,
            source=self.source,
            vtrue=self.vtrue,
            protected=(
                None if self.protected is None else tuple(self.protected)
            ),
            max_rounds=self.max_rounds,
            batch_per_slot=self.batch_per_slot,
            validate_local_bound=self.validate_local_bound,
            protocol_params=protocol_params,
        )


def run_threshold_broadcast(cfg: ThresholdRunConfig) -> BroadcastReport:
    """Deprecated shim: translate to a spec and run via :func:`repro.scenario.run`."""
    from repro.scenario.runner import run

    warnings.warn(
        "run_threshold_broadcast is deprecated; build a "
        "repro.scenario.ScenarioSpec and call repro.scenario.run(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    if cfg.behavior == "custom":
        if cfg.adversary_factory is None:
            raise ConfigurationError(
                "behavior='custom' requires an adversary_factory"
            )

        def override(grid, table, ledger):
            return cfg.adversary_factory(grid, table, ledger)

        return run(
            cfg.to_scenario_spec(), tracer=cfg.tracer, adversary_override=override
        )
    return run(cfg.to_scenario_spec(), tracer=cfg.tracer)


@dataclass(frozen=True)
class ReactiveRunConfig:
    """Deprecated configuration for a §5 B_reactive run.

    ``mf`` is the bad nodes' *actual* budget — unknown to the protocol,
    which only relies on the loose bound ``mmax`` through the code length
    ``L``. ``p_forge_override`` forces a (large) forgery probability so
    tests can exercise the failure path deterministically.

    Prefer :class:`repro.scenario.ScenarioSpec` with ``protocol="reactive"``;
    :meth:`to_scenario_spec` is the exact translation.
    """

    spec: GridSpec
    t: int
    mf: int
    mmax: int
    placement: Placement
    source: Coord = (0, 0)
    vtrue: Value = VTRUE
    seed: int = 0
    attack_nacks: bool = True
    p_forge_override: float | None = None
    quiet_window_override: int | None = None
    max_rounds: int | None = None
    tracer: Tracer = field(default=NULL_TRACER)

    def to_scenario_spec(self):
        """The equivalent :class:`~repro.scenario.ScenarioSpec`."""
        from repro.scenario.spec import ScenarioSpec

        protocol_params = {}
        if self.quiet_window_override is not None:
            protocol_params["quiet_limit"] = self.quiet_window_override
        behavior_params = {}
        if not self.attack_nacks:
            behavior_params["attack_nacks"] = False
        if self.p_forge_override is not None:
            behavior_params["p_forge"] = self.p_forge_override
        return ScenarioSpec(
            grid=self.spec,
            t=self.t,
            mf=self.mf,
            mmax=self.mmax,
            placement=self.placement,
            protocol="reactive",
            source=self.source,
            vtrue=self.vtrue,
            seed=self.seed,
            max_rounds=self.max_rounds,
            protocol_params=protocol_params,
            behavior_params=behavior_params,
        )


def run_reactive_broadcast(cfg: ReactiveRunConfig) -> BroadcastReport:
    """Deprecated shim: translate to a spec and run via :func:`repro.scenario.run`."""
    from repro.scenario.runner import run

    warnings.warn(
        "run_reactive_broadcast is deprecated; build a "
        "repro.scenario.ScenarioSpec (protocol='reactive') and call "
        "repro.scenario.run(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run(cfg.to_scenario_spec(), tracer=cfg.tracer)
