"""Deprecated alias for :mod:`repro.runner.parallel`.

The historical serial sweep collapsed into the parallel engine: calling
:func:`repro.runner.parallel.sweep` with its default ``workers=1`` *is*
the serial loop (same in-order execution and callbacks), and
:class:`~repro.runner.parallel.SweepResult` moved there with it. This
module re-exports both so existing imports keep working; new code should
import from :mod:`repro.runner.parallel` (or :mod:`repro`).
"""

from __future__ import annotations

import warnings

from repro.runner.parallel import SweepResult, sweep

__all__ = ["SweepResult", "sweep"]

warnings.warn(
    "repro.runner.sweep is deprecated; import sweep/SweepResult from "
    "repro.runner.parallel (serial is workers=1)",
    DeprecationWarning,
    stacklevel=2,
)
