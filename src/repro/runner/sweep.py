"""Parameter sweeps over broadcast runs.

A sweep maps a list of configuration points through a runner function,
collecting per-point results into rows suitable for
:func:`~repro.runner.report.format_table`. Kept deliberately simple —
experiments compose their own point lists so every benchmark is explicit
about the workload it regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

PointT = TypeVar("PointT")
ResultT = TypeVar("ResultT")


@dataclass(frozen=True)
class SweepResult:
    """All (point, result) pairs of one sweep."""

    points: tuple[Any, ...]
    results: tuple[Any, ...]

    def rows(self, to_row: Callable[[Any, Any], Sequence[Any]]) -> list[Sequence[Any]]:
        return [to_row(p, r) for p, r in zip(self.points, self.results)]

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    points: Iterable[PointT],
    run: Callable[[PointT], ResultT],
    *,
    on_result: Callable[[PointT, ResultT], None] | None = None,
) -> SweepResult:
    """Run ``run`` over every point, in order, deterministically."""
    collected_points: list[PointT] = []
    collected_results: list[ResultT] = []
    for point in points:
        result = run(point)
        collected_points.append(point)
        collected_results.append(result)
        if on_result is not None:
            on_result(point, result)
    return SweepResult(tuple(collected_points), tuple(collected_results))
