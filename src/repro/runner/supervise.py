"""Worker-pool supervision: respawn, backoff, and idempotent resubmission.

This is the **only** module in the tree allowed to name
``concurrent.futures.BrokenExecutor`` in an ``except`` clause — rule
RPR501 of ``python -m repro check`` enforces it. Everything else routes
pool work through :func:`supervised_map` / :class:`SupervisedPool` and
classifies failures with :func:`is_pool_break`, so recovery policy
(capped exponential backoff, restart counters, chaos-fault spending,
completed-point accounting) lives in exactly one place.

The contract recovery must honor is the ROADMAP standing rule:
*infrastructure faults may cost latency, never bytes*. Pool breaks are
infrastructure — a SIGKILLed worker, an OOM kill, an unimportable spawn —
and are retried by resubmitting the in-flight points, which is safe
because points are idempotent by content hash
(:func:`repro.runner.parallel.point_key`). Simulation exceptions travel
as data through the invoker protocol ``(ok, value)`` and are **never**
retried: a deterministic failure is a result, not a fault.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Callable, Iterator, Sequence

from repro.chaos import inject as _chaos
from repro.errors import ConfigurationError, PoolBrokenError, SimulationError

_LOG = logging.getLogger("repro.pool")

#: Consecutive no-progress pool breaks tolerated before giving up. Above
#: the largest fault burst ``repro.chaos.plan.sample_plan`` can draw, so
#: any sampled plan is survivable by construction.
DEFAULT_MAX_RESTARTS = 5

#: Capped exponential backoff between respawns: 0.05, 0.1, 0.2, ... cap.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 1.0


def default_workers() -> int:
    """Worker count used for ``workers=0``/``None``: one per CPU, capped."""
    return max(1, min(os.cpu_count() or 1, 16))


def backoff_delay(consecutive_failures: int) -> float:
    """Seconds to wait before respawn attempt ``consecutive_failures``."""
    exponent = max(0, consecutive_failures - 1)
    return min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2**exponent))


def is_pool_break(exc: BaseException) -> bool:
    """Classify an exception as pool infrastructure failure.

    An ``isinstance`` check rather than an ``except`` clause, so callers
    outside this module never need to name ``BrokenExecutor`` (RPR501).
    """
    return isinstance(exc, (BrokenExecutor, PoolBrokenError))


def describe_worker_failure(
    point: Any, exc_type: str, message: str, tb: str
) -> str:
    """The one-line-plus-traceback story of a worker-side exception."""
    return (
        f"sweep worker failed on point {point!r}: {exc_type}: {message}\n"
        f"--- worker traceback ---\n{tb}"
    )


def supervised_map(
    invoker_factory: Callable[[Callable[[Any], Any]], Callable[[Any], Any]],
    run: Callable[[Any], Any],
    points: Sequence[Any],
    *,
    workers: int,
    chunksize: int,
    max_restarts: int | None = None,
) -> Iterator[Any]:
    """Yield invoker outcomes for ``points`` in order, surviving breaks.

    The streaming analogue of ``executor.map``: on a pool break the dead
    executor is replaced (after :func:`backoff_delay`) and the *unconsumed*
    suffix of points is resubmitted through a fresh invoker — fresh so a
    chaos fault spent by :func:`repro.chaos.inject.on_pool_break` is no
    longer shipped to the replacement workers. Consumed outcomes are never
    re-run (the caller has already cached them); progress resets the
    backoff counter, and ``max_restarts`` consecutive no-progress breaks
    raise :class:`~repro.errors.PoolBrokenError` carrying completed/total.
    """
    point_list = list(points)
    total = len(point_list)
    if max_restarts is None:
        max_restarts = DEFAULT_MAX_RESTARTS
    context = multiprocessing.get_context("spawn")
    position = 0
    consecutive = 0
    while position < total:
        executor = ProcessPoolExecutor(
            max_workers=max(1, min(workers, total - position)),
            mp_context=context,
        )
        try:
            outcomes = executor.map(
                invoker_factory(run),
                point_list[position:],
                chunksize=chunksize,
            )
            for outcome in outcomes:
                position += 1
                consecutive = 0
                yield outcome
        except BrokenExecutor as exc:
            # Workers died before/while running (an unimportable main
            # module under spawn, an OOM/SIGKILL). Respawn and resubmit
            # the unconsumed suffix instead of aborting the sweep — or,
            # after max_restarts consecutive no-progress breaks, surface
            # one coherent infrastructure error.
            consecutive += 1
            if consecutive > max_restarts:
                raise PoolBrokenError(
                    f"parallel sweep worker pool broke ({exc}) and stayed "
                    f"broken after {consecutive - 1} respawns; points must "
                    "be picklable and the run function importable by "
                    "spawned workers",
                    completed=position,
                    total=total,
                    restarts=consecutive - 1,
                ) from exc
            _chaos.on_pool_break()
            delay = backoff_delay(consecutive)
            _LOG.warning(
                "sweep worker pool broke (%s); respawning in %.2fs "
                "(attempt %d/%d, %d/%d points done)",
                exc,
                delay,
                consecutive,
                max_restarts,
                position,
                total,
            )
            time.sleep(delay)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


class _Task:
    """One supervised submission: its inputs, its outer future, its tries."""

    __slots__ = ("run", "point", "outer", "attempts")

    def __init__(self, run: Callable[[Any], Any], point: Any) -> None:
        self.run = run
        self.point = point
        self.outer: Future[Any] = Future()
        self.attempts = 0


class SupervisedPool:
    """A long-lived, self-healing spawn pool.

    Wraps one ``ProcessPoolExecutor`` and decouples caller futures from
    executor futures: :meth:`submit` returns an *outer* future that
    survives pool death. When a worker dies, every in-flight task is
    requeued and a single supervisor thread respawns the executor (capped
    exponential backoff) and resubmits them through a fresh invoker —
    safe because points are idempotent by content hash. After
    ``max_restarts`` consecutive no-progress breaks the pool is declared
    dead: queued tasks fail with :class:`~repro.errors.PoolBrokenError`
    and further submits raise it too, until :meth:`revive` (the scenario
    service's recovery probe calls it) grants a fresh executor.

    Liveness is observable: :attr:`restarts`, :attr:`resubmitted`, and
    :attr:`alive` feed ``/healthz`` and the serve bench.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        invoker: Callable[[Callable[[Any], Any]], Callable[[Any], Any]],
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ) -> None:
        if workers is None or workers == 0:
            workers = default_workers()
        if workers < 1:
            raise ConfigurationError(
                f"persistent pool workers must be >= 1 (or 0 for one per "
                f"CPU), got {workers}"
            )
        self.workers = min(workers, default_workers())
        self.restarts = 0
        self.resubmitted = 0
        self._invoker = invoker
        self._max_restarts = max_restarts
        self._lock = threading.RLock()
        self._consecutive = 0
        self._closed = False
        self._dead = False
        self._recovering = False
        self._retry: list[_Task] = []
        self._mp_context = multiprocessing.get_context("spawn")
        self._executor: ProcessPoolExecutor | None = self._make_executor()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._mp_context
        )

    @property
    def alive(self) -> bool:
        """Whether submissions currently have a live executor to land on."""
        return not (self._closed or self._dead)

    def submit(
        self, run: Callable[[Any], Any], point: Any
    ) -> "Future[tuple[bool, Any]]":
        """Ship ``run(point)`` to a live worker; never blocks on compute."""
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    "persistent pool is shut down; create a new one"
                )
            if self._dead:
                raise PoolBrokenError(
                    "worker pool is dead after repeated failures; revive() "
                    "it or create a new pool",
                    restarts=self.restarts,
                )
        task = _Task(run, point)
        self._dispatch(task)
        return task.outer

    @staticmethod
    def unwrap(point: Any, outcome: tuple[bool, Any]) -> Any:
        """Return a submitted call's value, re-raising worker failures."""
        ok, value = outcome
        if not ok:
            raise SimulationError(describe_worker_failure(point, *value))
        return value

    def revive(self) -> bool:
        """Grant a dead pool one fresh executor; True when now alive."""
        with self._lock:
            if self._closed:
                return False
            if not self._dead:
                return True
            old, self._executor = self._executor, self._make_executor()
            self._dead = False
            self._consecutive = 0
            self.restarts += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        _LOG.warning("worker pool revived (restart %d)", self.restarts)
        return True

    def shutdown(self, *, wait: bool = True) -> None:
        """Drain (``wait=True``) or abandon the workers; idempotent."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
            tasks, self._retry = self._retry, []
        for task in tasks:
            task.outer.cancel()
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- internals -------------------------------------------------------------

    def _dispatch(self, task: _Task) -> None:
        invoker = self._invoker(task.run)
        with self._lock:
            executor = self._executor
        if executor is None:
            if not task.outer.done():
                task.outer.set_exception(
                    ConfigurationError(
                        "persistent pool is shut down; create a new one"
                    )
                )
            return
        try:
            inner = executor.submit(invoker, task.point)
        except BrokenExecutor as exc:
            self._requeue(task, exc)
            return
        except RuntimeError as exc:
            # The executor was shut down between the lock and the submit.
            if not task.outer.done():
                task.outer.set_exception(
                    ConfigurationError(
                        f"persistent pool is shut down; create a new one "
                        f"({exc})"
                    )
                )
            return
        inner.add_done_callback(
            lambda inner_future, task=task: self._on_done(task, inner_future)
        )

    def _on_done(self, task: _Task, inner: "Future[Any]") -> None:
        if inner.cancelled():
            task.outer.cancel()
            return
        exc = inner.exception()
        if exc is None:
            with self._lock:
                self._consecutive = 0
            if not task.outer.done():
                task.outer.set_result(inner.result())
            return
        if is_pool_break(exc):
            self._requeue(task, exc)
            return
        # Anything else came out of the worker itself; the invoker
        # protocol already turned simulation exceptions into data, so
        # this is rare (e.g. an unpicklable point) and not retryable.
        if not task.outer.done():
            task.outer.set_exception(exc)

    def _requeue(self, task: _Task, cause: BaseException) -> None:
        task.attempts += 1
        with self._lock:
            if self._closed:
                task.outer.cancel()
                return
            if self._dead or task.attempts > self._max_restarts + 1:
                failure = PoolBrokenError(
                    f"worker pool broke while running this point ({cause}); "
                    f"gave up after {task.attempts - 1} resubmissions",
                    restarts=self.restarts,
                )
                if not task.outer.done():
                    task.outer.set_exception(failure)
                return
            self._retry.append(task)
            start = not self._recovering
            self._recovering = True
        if start:
            threading.Thread(
                target=self._recover,
                args=(cause,),
                name="repro-pool-supervisor",
                daemon=True,
            ).start()

    def _recover(self, cause: BaseException) -> None:
        # Spend one injected crash fault (if a chaos plan is armed) so
        # the respawned workers' fresh invoker snapshot makes progress.
        _chaos.on_pool_break()
        with self._lock:
            self._consecutive += 1
            attempt = self._consecutive
            give_up = attempt > self._max_restarts
            if give_up:
                self._dead = True
                tasks, self._retry = self._retry, []
                self._recovering = False
        if give_up:
            failure = PoolBrokenError(
                f"worker pool died {attempt} consecutive times ({cause}); "
                f"giving up after {self.restarts} restarts — points must be "
                "picklable and the run function importable by spawned "
                "workers",
                restarts=self.restarts,
            )
            _LOG.error("%s", failure)
            for task in tasks:
                if not task.outer.done():
                    task.outer.set_exception(failure)
            return
        delay = backoff_delay(attempt)
        time.sleep(delay)
        with self._lock:
            closed = self._closed
            old = self._executor
            if not closed:
                self._executor = self._make_executor()
                self.restarts += 1
            tasks, self._retry = self._retry, []
            self._recovering = False
        if old is not None and not closed:
            old.shutdown(wait=False, cancel_futures=True)
        if closed:
            for task in tasks:
                task.outer.cancel()
            return
        _LOG.warning(
            "worker pool respawned (restart %d, backoff %.2fs) after: %s",
            self.restarts,
            delay,
            cause,
        )
        for task in tasks:
            self.resubmitted += 1
            self._dispatch(task)
