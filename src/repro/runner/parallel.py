"""Parameter sweeps — serial or parallel — with deterministic results and
on-disk caching.

This is the execution substrate behind every experiment harness: it maps
a list of configuration points through a runner function, optionally
fanning the points out over a ``multiprocessing`` worker pool and
memoizing per-point results on disk. ``workers=1`` (the default) is the
plain serial loop — the historical separate serial sweep module
(``repro.runner.sweep``) is now just a deprecation alias for this one.

Design constraints, in order:

1. **Determinism.** A parallel sweep returns bit-for-bit the same
   :class:`SweepResult` as a serial one. Points are
   self-contained (a worker needs nothing but the point), results are
   collected in submission order, and per-point randomness comes from
   seed fields the point itself carries — never from worker identity or
   scheduling. Harnesses that want a seed without adding a field can
   derive one from the point's stable hash via :func:`point_seed`.
2. **Spawn safety.** Workers are started with the ``spawn`` method (the
   only method available everywhere), so ``run`` must be a module-level
   function and every point must be picklable. Closures and lambdas are
   fine for ``workers=1``, which falls back to a serial loop.
3. **Cheap re-runs.** An optional :class:`ResultCache` keys results by a
   stable SHA-256 hash of the canonical JSON form of the point, so
   re-running an experiment only computes points whose configuration
   changed. Corrupted or unreadable cache entries degrade to misses.

Worker failures never hang the sweep: any exception raised by ``run`` —
in a worker or in the serial path — surfaces as
:class:`~repro.errors.SimulationError` naming the offending point and
carrying the original traceback. *Infrastructure* failures (a worker
SIGKILLed mid-point, a full disk under the cache) are a different
species: :mod:`repro.runner.supervise` respawns broken pools and
resubmits in-flight points (idempotent by :func:`point_key`), and cache
stores degrade to log-and-continue — per the ROADMAP standing rule,
infrastructure faults may cost latency, never bytes. Both recovery paths
are exercised deterministically by :mod:`repro.chaos` through the
injection points registered at the bottom of this module.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import logging
import os
import sys
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.chaos import inject as _chaos
from repro.errors import ConfigurationError, PoolBrokenError, SimulationError
from repro.runner.supervise import (
    DEFAULT_MAX_RESTARTS,
    SupervisedPool,
    default_workers,
    describe_worker_failure as _describe_failure,
    supervised_map,
)
from repro.sim.rng import derive_seed

#: Cache-corruption warnings go here (log-and-recompute, never raise).
_LOG = logging.getLogger("repro.cache")

PointT = TypeVar("PointT")
ResultT = TypeVar("ResultT")

#: Sentinel marking a sweep slot whose result has not arrived yet.
_PENDING = object()


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """All (point, result) pairs of one sweep."""

    points: tuple[Any, ...]
    results: tuple[Any, ...]

    def rows(self, to_row: Callable[[Any, Any], Sequence[Any]]) -> list[Sequence[Any]]:
        return [to_row(p, r) for p, r in zip(self.points, self.results)]

    def __len__(self) -> int:
        return len(self.points)


# -- stable point identity -----------------------------------------------------


def canonical_point(point: Any) -> Any:
    """Reduce a config point to a canonical JSON-serializable form.

    Objects exposing ``__canonical_json__()`` (notably
    :class:`repro.scenario.ScenarioSpec`) define their own canonical form,
    so their cache key equals their content hash regardless of how they
    were constructed. Dataclasses become
    ``{"__dataclass__": qualified-name, **fields}``,
    mappings get sorted keys, and tuples/lists/sets become lists (sets are
    sorted by their canonical JSON encoding so iteration order cannot leak
    into the key). Unknown objects fall back to ``repr`` — stable for the
    frozen value-style dataclasses used as sweep points, and good enough
    to *distinguish* anything else.
    """
    canonical = getattr(point, "__canonical_json__", None)
    if callable(canonical):
        return canonical_point(canonical())
    if dataclasses.is_dataclass(point) and not isinstance(point, type):
        encoded = {
            f.name: canonical_point(getattr(point, f.name))
            for f in dataclasses.fields(point)
        }
        encoded["__dataclass__"] = _qualified_name(type(point))
        return encoded
    if isinstance(point, dict):
        return {str(k): canonical_point(v) for k, v in sorted(point.items(), key=lambda kv: str(kv[0]))}
    if isinstance(point, (list, tuple)):
        return [canonical_point(item) for item in point]
    if isinstance(point, (set, frozenset)):
        items = [canonical_point(item) for item in point]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(point, (str, int, float, bool)) or point is None:
        return point
    return repr(point)


def point_key(point: Any) -> str:
    """Stable hex digest identifying a config point across processes/runs."""
    payload = json.dumps(
        canonical_point(point), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def point_seed(master_seed: int, point: Any) -> int:
    """Derive the per-point RNG seed for a sweep point.

    Pure function of ``(master_seed, point)`` — the same point gets the
    same seed whether it runs serially, in any worker, or from cache,
    and independently of its position in the point list.
    """
    return derive_seed(master_seed, "sweep-point", point_key(point))


# -- on-disk result cache ------------------------------------------------------


def _qualified_name(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def encode_result(value: Any) -> Any:
    """Encode a sweep result into JSON-serializable form.

    Handles the flat frozen dataclasses experiments use as per-point
    results (fields of primitives, tuples, or nested such dataclasses).
    Anything JSON already understands passes through.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _qualified_name(type(value)),
            "fields": {
                f.name: encode_result(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [encode_result(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                # JSON would stringify the key and a cache hit would hand
                # back a differently-typed result than a cache miss.
                raise TypeError(
                    f"cache results may only contain str-keyed dicts, "
                    f"got key {key!r}"
                )
        return {k: encode_result(v) for k, v in value.items()}
    return value


def decode_result(payload: Any) -> Any:
    """Inverse of :func:`encode_result`.

    Sequences inside a decoded dataclass become tuples (the experiments'
    result dataclasses are frozen and tuple-valued); top-level and
    dict-valued sequences stay lists.
    """
    if isinstance(payload, dict) and "__dataclass__" in payload:
        module_name, _, qualname = payload["__dataclass__"].partition(":")
        cls: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            cls = getattr(cls, part)
        fields = {
            name: _decode_field(value)
            for name, value in payload["fields"].items()
        }
        return cls(**fields)
    if isinstance(payload, list):
        return [decode_result(item) for item in payload]
    if isinstance(payload, dict):
        return {k: decode_result(v) for k, v in payload.items()}
    return payload


def _decode_field(value: Any) -> Any:
    decoded = decode_result(value)
    if isinstance(decoded, list):
        return tuple(decoded)
    return decoded


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance.

    ``corrupt`` counts misses caused by an unreadable/truncated/mismatched
    entry (a subset of ``misses``): the cache recovered by recomputing,
    but the on-disk file was bad and has been or will be overwritten.
    ``recovered`` counts the completions of that story — corrupt entries
    this instance later overwrote with a good result.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    recovered: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """On-disk JSON memo of sweep results, keyed by config-point hash.

    One file per point: ``<directory>/<namespace>-<sha256>.json`` holding
    the canonical point (for human inspection) and the encoded result. A
    point whose configuration changes hashes to a new key, so stale
    entries are never served — invalidation is structural, not temporal.
    Unreadable, truncated, or mismatched entries count as misses and are
    overwritten on the next store; a cache can never make a sweep fail.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        namespace: str = "sweep",
        encode: Callable[[Any], Any] = encode_result,
        decode: Callable[[Any], Any] = decode_result,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.namespace = namespace
        self._encode = encode
        self._decode = decode
        self.stats = CacheStats()
        self._corrupt_keys: set[str] = set()

    def path_for(self, point: Any) -> Path:
        return self.directory / f"{self.namespace}-{point_key(point)}.json"

    def get(self, point: Any) -> tuple[bool, Any]:
        """Return ``(hit, value)``; corrupted entries are logged misses."""
        path = self.path_for(point)
        key = point_key(point)
        _chaos.cache_read_fault(key, path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload["key"] != key:
                raise KeyError("key mismatch")
            value = self._decode(payload["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception as exc:
            # Corrupted/truncated/undecodable: recover as a miss (the next
            # store overwrites the bad file) but say so — silent recovery
            # hides a dying disk or a writer bug.
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._corrupt_keys.add(key)
            _LOG.warning(
                "corrupt cache entry %s (%s: %s); recomputing and "
                "overwriting",
                path.name,
                type(exc).__name__,
                exc,
            )
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, point: Any, value: Any) -> None:
        """Store a result atomically; non-serializable results are rejected."""
        key = point_key(point)
        try:
            body = json.dumps(
                {
                    "key": key,
                    "point": canonical_point(point),
                    "result": self._encode(value),
                },
                sort_keys=True,
            )
        except TypeError as exc:
            raise ConfigurationError(
                f"sweep result for point {point!r} is not JSON-serializable; "
                "cache results must be primitives, tuples, or dataclasses "
                f"of those: {exc}"
            ) from exc
        injected = _chaos.cache_write_fault(key)
        if injected is not None:
            raise injected
        path = self.path_for(point)
        # The tmp name must be unique per process: two workers caching
        # the same point concurrently would otherwise interleave writes
        # into one shared tmp file before either os.replace lands,
        # publishing a corrupted entry. A per-process name keeps every
        # write private until its atomic rename.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            # fsync before the rename: os.replace is atomic in the
            # namespace but says nothing about data reaching the disk; a
            # crash between rename and writeback would publish a
            # truncated entry that only the corrupt-entry counter
            # catches on some later read.
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.stats.stores += 1
        if key in self._corrupt_keys:
            self._corrupt_keys.discard(key)
            self.stats.recovered += 1


@dataclasses.dataclass(frozen=True)
class CacheDirStats:
    """What ``python -m repro cache stats`` reports about one cache dir.

    ``namespaces`` maps each namespace present in the directory to its
    ``(entries, bytes, corrupt)`` triple; the top-level fields are the
    totals. ``corrupt`` counts files that fail the same checks a
    :meth:`ResultCache.get` performs (JSON parse, ``key``/``result``
    presence, key-matches-filename), i.e. entries that would be recovered
    as misses and overwritten at the next store. ``stale_tmp`` counts
    leftover ``*.tmp`` staging files from interrupted stores — harmless
    by construction (the fsync + atomic-rename discipline means an
    interrupted write never published), but visible so a crashy writer
    doesn't silently fill the disk.
    """

    directory: str
    entries: int
    total_bytes: int
    corrupt: int
    namespaces: tuple[tuple[str, int, int, int], ...]
    stale_tmp: int = 0


def scan_cache_dir(directory: str | os.PathLike[str]) -> CacheDirStats:
    """Inventory a result-cache directory without touching its contents.

    Walks every ``<namespace>-<sha256>.json`` entry, sizes it, and probes
    it for the corruption modes :meth:`ResultCache.get` recovers from.
    Unreadable files count as corrupt rather than failing the scan — the
    stats helper must work precisely when the cache is damaged.
    """
    root = Path(directory)
    per_ns: dict[str, list[int]] = {}  # name -> [entries, bytes, corrupt]
    for path in sorted(root.glob("*.json")):
        stem = path.name[: -len(".json")]
        namespace, dash, key = stem.rpartition("-")
        if not dash:
            namespace, key = "(unnamed)", stem
        bucket = per_ns.setdefault(namespace, [0, 0, 0])
        bucket[0] += 1
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        bucket[1] += size
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload["key"] != key or "result" not in payload:
                raise KeyError("key mismatch")
        except Exception:
            bucket[2] += 1
    namespaces = tuple(
        (name, entries, size, corrupt)
        for name, (entries, size, corrupt) in sorted(per_ns.items())
    )
    return CacheDirStats(
        directory=str(root),
        entries=sum(ns[1] for ns in namespaces),
        total_bytes=sum(ns[2] for ns in namespaces),
        corrupt=sum(ns[3] for ns in namespaces),
        namespaces=namespaces,
        stale_tmp=sum(1 for _ in root.glob("*.json.*.tmp")),
    )


#: Staging files younger than this may belong to an in-flight store and
#: are never pruned; older ones are leftovers of an interrupted writer
#: (the fsync + atomic-rename discipline means they never published).
STALE_TMP_AGE_S = 60.0


@dataclasses.dataclass(frozen=True)
class PruneResult:
    """What ``python -m repro cache prune`` did (or would do, dry-run).

    ``removed``/``removed_bytes`` cover cache entries evicted by the age
    and size policies; ``removed_tmp`` counts abandoned ``*.tmp``
    staging files swept alongside. ``kept``/``kept_bytes`` describe the
    surviving cache.
    """

    directory: str
    examined: int
    removed: int
    removed_bytes: int
    removed_tmp: int
    kept: int
    kept_bytes: int
    dry_run: bool


def prune_cache_dir(
    directory: str | os.PathLike[str],
    *,
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    now: float | None = None,
    dry_run: bool = False,
) -> PruneResult:
    """Evict result-cache entries by age and/or total size, oldest first.

    The cache's invalidation is structural (content-hash keys), so any
    entry is safe to remove — a pruned point is simply recomputed on the
    next sweep that needs it. Two policies compose: entries older than
    ``max_age_s`` go first, then the oldest remaining entries until the
    directory fits in ``max_bytes``. Abandoned staging files (older than
    :data:`STALE_TMP_AGE_S`) are always swept. ``dry_run`` reports the
    same :class:`PruneResult` without unlinking anything; ``now``
    overrides the wall clock for tests.
    """
    if max_bytes is None and max_age_s is None:
        raise ConfigurationError(
            "cache prune needs a policy: pass max_bytes and/or max_age_s"
        )
    if max_bytes is not None and max_bytes < 0:
        raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
    if max_age_s is not None and max_age_s < 0:
        raise ConfigurationError(f"max_age_s must be >= 0, got {max_age_s}")
    root = Path(directory)
    if not root.is_dir():
        raise ConfigurationError(f"not a cache directory: {root}")
    clock = time.time() if now is None else now
    entries: list[tuple[float, str, int, Path]] = []
    for path in sorted(root.glob("*.json")):
        try:
            st = path.stat()
        except OSError:
            continue  # vanished mid-scan (a concurrent prune or writer)
        entries.append((st.st_mtime, path.name, st.st_size, path))
    doomed: list[tuple[int, Path]] = []
    survivors: list[tuple[float, str, int, Path]] = []
    for mtime, name, size, path in entries:
        if max_age_s is not None and clock - mtime > max_age_s:
            doomed.append((size, path))
        else:
            survivors.append((mtime, name, size, path))
    if max_bytes is not None:
        # Oldest first; file name breaks mtime ties so a dry run and the
        # real prune agree on coarse-timestamp filesystems.
        survivors.sort()
        total = sum(size for _mtime, _name, size, _path in survivors)
        while survivors and total > max_bytes:
            _mtime, _name, size, path = survivors.pop(0)
            doomed.append((size, path))
            total -= size
    removed_tmp = 0
    for tmp in sorted(root.glob("*.json.*.tmp")):
        try:
            age = clock - tmp.stat().st_mtime
        except OSError:
            continue
        if age > STALE_TMP_AGE_S:
            removed_tmp += 1
            if not dry_run:
                tmp.unlink(missing_ok=True)
    if not dry_run:
        for _size, path in doomed:
            path.unlink(missing_ok=True)
    return PruneResult(
        directory=str(root),
        examined=len(entries),
        removed=len(doomed),
        removed_bytes=sum(size for size, _path in doomed),
        removed_tmp=removed_tmp,
        kept=len(survivors),
        kept_bytes=sum(size for *_rest, size, _path in survivors),
        dry_run=dry_run,
    )


# -- process-local warm-object cache -------------------------------------------


class ProcessLocalCache:
    """A tiny keyed cache for expensive immutable-per-key objects.

    The scenario runner uses one to share warm ``Grid`` (CSR tables) /
    ``TdmaSchedule`` / ``Medium`` (delivery memo) instances across the
    sweep points a worker process executes, so a 500-point sweep builds
    each grid once per worker instead of once per point. Spawned workers
    each get their own copy of the module state, hence *process-local*:
    nothing here is shared or locked across processes.

    Entries are dropped wholesale when ``limit`` distinct keys
    accumulate — sweeps touch a handful of grid shapes, so eviction
    sophistication would buy nothing.
    """

    def __init__(self, limit: int = 8) -> None:
        if limit < 1:
            raise ConfigurationError(f"cache limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: dict[Any, Any] = {}

    def get_or_build(self, key: Any, factory: Callable[[], Any]) -> Any:
        try:
            return self._entries[key]
        except KeyError:
            pass
        value = factory()
        if len(self._entries) >= self.limit:
            self._entries.clear()
        self._entries[key] = value
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


# -- progress reporting --------------------------------------------------------


class SweepProgress:
    """Progress/ETA line printer for long sweeps (``\\r``-updating).

    Usable directly as the ``progress`` callback of :func:`sweep`. One
    instance may be threaded through several consecutive sweeps (an
    experiment like E9 runs more than one): the ETA re-anchors whenever
    the ``done`` counter stops increasing, so each sweep's estimate only
    reflects its own points.
    """

    def __init__(self, label: str, *, stream: Any = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._started = time.perf_counter()
        self._last_done: int | None = None
        self._done_at_start = 0

    def __call__(self, done: int, total: int) -> None:
        now = time.perf_counter()
        if self._last_done is None or done <= self._last_done:
            self._started = now  # a new sweep began (or cached prefill)
            self._done_at_start = done
        self._last_done = done
        elapsed = now - self._started
        computed = done - self._done_at_start
        if done >= total:
            suffix = f"took {elapsed:5.1f}s"
        elif computed > 0:
            eta = elapsed / computed * (total - done)
            suffix = f"eta {eta:5.1f}s"
        else:
            suffix = "eta ..."
        end = "\n" if done >= total else ""
        self.stream.write(
            f"\r  {self.label}: {done}/{total} points, {suffix}{end}"
        )
        self.stream.flush()


# -- the sweep itself ----------------------------------------------------------


def _report_interrupt(done: int, total: int) -> None:
    """One clean line on Ctrl-C/SIGTERM instead of a pool unwind splat.

    Cached points survive the interrupt (each is stored as it completes),
    so a re-run with the same ``--cache-dir`` resumes where this one
    stopped — worth saying at the moment the user most wants to know.
    """
    sys.stderr.write(
        f"\nsweep interrupted: {done}/{total} points completed; "
        "cached points are kept, re-run to resume\n"
    )
    sys.stderr.flush()


class _Invoker:
    """Picklable wrapper shipping ``run`` to spawn workers.

    Exceptions are returned as data (not raised) so the parent can
    terminate the pool and raise one coherent
    :class:`~repro.errors.SimulationError` instead of hanging or dying on
    an unpicklable exception object.
    """

    def __init__(self, run: Callable[[Any], Any]) -> None:
        self.run = run
        # Snapshot of the armed chaos plan's unspent worker faults; a
        # spawn worker cannot see the parent's plan, so the faults ride
        # the invoker's pickle. Empty (and free) when nothing is armed,
        # and re-taken per invoker so a fault spent after a pool break
        # stops shipping to the respawned workers.
        self.faults = _chaos.shipped_worker_faults()

    def __call__(self, point: Any) -> tuple[bool, Any]:
        if self.faults:
            keys = [point_key(point)]
            if isinstance(point, (list, tuple)):
                # Serve chunks are lists of specs; let a fault target an
                # individual spec's content hash, not just the chunk's.
                keys.extend(point_key(item) for item in point)
            _chaos.install_worker_faults(self.faults)
            _chaos.fire_worker_faults(keys)
        try:
            return True, self.run(point)
        except Exception as exc:
            # Not BaseException: a KeyboardInterrupt must kill the worker
            # (surfacing as BrokenExecutor) rather than masquerade as a
            # simulation failure on whatever point was in flight.
            return False, (
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
            )


class PersistentPool(SupervisedPool):
    """A long-lived spawn-safe worker pool for request-serving workloads.

    :func:`sweep` builds and tears down an executor per call — right for
    batch experiments, wrong for a daemon: every request batch would pay
    a full interpreter + import spawn. A ``PersistentPool`` keeps its
    spawn workers alive across submissions, so each worker's module
    state — notably the :class:`ProcessLocalCache` warm worlds the
    scenario runner keeps — persists from one chunk to the next, and a
    request to a grid any worker has seen skips world construction
    entirely. ``repro.serve`` dispatches its batched compute chunks here.

    Results use the same exception-as-data protocol as sweep workers
    (:class:`_Invoker`): :meth:`submit` returns a
    ``concurrent.futures.Future`` resolving to ``(ok, value)``, where a
    falsy ``ok`` carries ``(exc_type, message, traceback)``.
    :meth:`unwrap` converts that triple into the
    :class:`~repro.errors.SimulationError` a sweep would raise.

    The pool is supervised (:class:`~repro.runner.supervise.SupervisedPool`):
    a dead worker breaks the executor, the supervisor respawns it with
    capped backoff and resubmits the in-flight points, and callers only
    see :class:`~repro.errors.PoolBrokenError` once the restart budget is
    exhausted. ``restarts`` / ``resubmitted`` / ``alive`` expose the
    recovery history to ``/healthz`` and the serve bench.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ) -> None:
        super().__init__(workers, invoker=_Invoker, max_restarts=max_restarts)


def _store_result(cache: ResultCache, point: Any, value: Any) -> None:
    """Store a fresh result, tolerating infrastructure store failures.

    A cache can never make a sweep fail: the result is already in hand,
    so an ``OSError`` on store (full or read-only disk — also what
    :mod:`repro.chaos` injects for ``cache-write-fail``) costs a future
    recompute, not this run. Non-serializable results still raise
    :class:`~repro.errors.ConfigurationError` — a caller bug, not
    infrastructure.
    """
    try:
        cache.put(point, value)
    except OSError as exc:
        _LOG.warning(
            "result-cache store failed for %s (%s); continuing uncached",
            point_key(point)[:12],
            exc,
        )


def sweep(
    points: Iterable[PointT],
    run: Callable[[PointT], ResultT],
    *,
    workers: int | None = 1,
    cache: ResultCache | None = None,
    on_result: Callable[[PointT, ResultT], None] | None = None,
    chunksize: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> SweepResult:
    """Run ``run`` over every point and collect results in point order.

    ``workers=1`` (the default) is a serial loop; ``workers>1`` fans the
    uncached points out over a spawn-safe ``multiprocessing`` pool in
    chunks, preserving point order in the returned
    :class:`SweepResult`. ``workers=0`` or ``None``
    picks :func:`default_workers`.

    ``cache`` short-circuits points whose results are already on disk and
    stores fresh results as they arrive. ``on_result`` is always invoked
    in point order — under parallelism a finished point's callback waits
    until every earlier point has a result. ``progress`` is called as
    ``progress(done, total)`` after each completed point.

    Any exception from ``run`` is re-raised as
    :class:`~repro.errors.SimulationError` naming the point.
    """
    point_list = list(points)
    total = len(point_list)
    if workers is None or workers == 0:
        workers = default_workers()
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if total == 0:
        return SweepResult((), ())

    results: list[Any] = [_PENDING] * total
    pending: list[int] = []
    for index, point in enumerate(point_list):
        if cache is not None:
            hit, value = cache.get(point)
            if hit:
                results[index] = value
                continue
        pending.append(index)

    done_count = total - len(pending)
    cursor = 0  # next point index awaiting its in-order on_result call

    def flush() -> None:
        """Fire in-order callbacks for every contiguous finished slot."""
        nonlocal cursor
        while cursor < total and results[cursor] is not _PENDING:
            if on_result is not None:
                on_result(point_list[cursor], results[cursor])
            cursor += 1

    if progress is not None:
        # Initial call (possibly done=0) marks the start of this sweep so
        # reusable progress printers can re-anchor their clocks.
        try:
            progress(done_count, total)
        except KeyboardInterrupt:
            _report_interrupt(done_count, total)
            raise

    if workers == 1 or len(pending) <= 1:
        try:
            for index in pending:
                point = point_list[index]
                try:
                    value = run(point)
                except Exception as exc:
                    raise SimulationError(
                        _describe_failure(
                            point, type(exc).__name__, str(exc),
                            traceback.format_exc(),
                        )
                    ) from exc
                results[index] = value
                if cache is not None:
                    _store_result(cache, point, value)
                done_count += 1
                flush()
                if progress is not None:
                    progress(done_count, total)
        except KeyboardInterrupt:
            _report_interrupt(done_count, total)
            raise
        flush()
        return SweepResult(tuple(point_list), tuple(results))

    # The simulations are CPU-bound: worker processes beyond the core
    # count buy nothing and each costs a full interpreter + import on
    # spawn, so an explicit --workers N is capped to the machine (the
    # same bound workers=0 resolves to). The pool is kept even at one
    # process so spawn-safety is exercised identically everywhere.
    pool_workers = max(1, min(workers, len(pending), default_workers()))
    if chunksize is None:
        chunksize = max(1, len(pending) // (pool_workers * 4))
    outcomes = supervised_map(
        _Invoker,
        run,
        [point_list[index] for index in pending],
        workers=pool_workers,
        chunksize=chunksize,
    )
    try:
        for index, (ok, value) in zip(pending, outcomes):
            if not ok:
                raise SimulationError(
                    _describe_failure(point_list[index], *value)
                )
            results[index] = value
            if cache is not None:
                _store_result(cache, point_list[index], value)
            done_count += 1
            flush()
            if progress is not None:
                progress(done_count, total)
    except KeyboardInterrupt:
        # Ctrl-C/SIGTERM mid-sweep: cancel what hasn't started (closing
        # the supervised map below), report progress cleanly, and let
        # the interrupt propagate — instead of the executor's noisy
        # unwind.
        _report_interrupt(done_count, total)
        raise
    except PoolBrokenError as exc:
        # Supervision respawned and resubmitted up to its restart budget
        # and the pool stayed broken. Flush the in-order callbacks for
        # everything that did complete — each of those points was cached
        # as it arrived, so a re-run resumes — then surface one coherent
        # error carrying the progress counters.
        flush()
        raise PoolBrokenError(
            f"{exc} [{done_count}/{total} points completed and cached; "
            "re-run to resume]",
            completed=done_count,
            total=total,
            restarts=exc.restarts,
        ) from exc
    finally:
        outcomes.close()
    flush()
    return SweepResult(tuple(point_list), tuple(results))


# -- batched probes ------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ProbeBatch:
    """Results of one :func:`probe_batch` call, in submission order.

    ``computed + cached + deduped == len(results)``: every submitted
    point was either executed, served from the on-disk cache, or folded
    into an identical point earlier in the same batch.
    """

    results: tuple[Any, ...]
    computed: int
    cached: int
    deduped: int


def probe_batch(
    points: Iterable[PointT],
    run: Callable[[PointT], ResultT],
    *,
    workers: int | None = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ProbeBatch:
    """Run a batch of probe points through the sweep substrate, deduplicated.

    Adaptive drivers (:mod:`repro.analysis.search`, the scenario atlas)
    generate probe batches in which the same configuration can appear
    more than once — several axis searches share their base spec, and a
    bisection step may re-request an endpoint. A plain :func:`sweep`
    would burn a cache lookup (or worse, a compute) per duplicate;
    ``probe_batch`` folds duplicates by :func:`point_key` before
    sweeping and fans the shared result back out, so callers get one
    result per submitted point without caring about overlap.

    The returned counters make incremental behavior observable:
    ``cached`` counts unique points served from ``cache`` (misses caused
    by corrupt entries still count as computed), which is what the
    atlas's "re-runs are incremental" guarantee is asserted against.
    """
    point_list = list(points)
    unique_indexes: dict[str, int] = {}
    unique_points: list[Any] = []
    slot_of: list[int] = []
    for point in point_list:
        key = point_key(point)
        slot = unique_indexes.get(key)
        if slot is None:
            slot = len(unique_points)
            unique_indexes[key] = slot
            unique_points.append(point)
        slot_of.append(slot)
    hits_before = cache.stats.hits if cache is not None else 0
    result = sweep(
        unique_points, run, workers=workers, cache=cache, progress=progress
    )
    cached = (cache.stats.hits - hits_before) if cache is not None else 0
    return ProbeBatch(
        results=tuple(result.results[slot] for slot in slot_of),
        computed=len(unique_points) - cached,
        cached=cached,
        deduped=len(point_list) - len(unique_points),
    )


# -- chaos injection points ----------------------------------------------------
# Registered at module bottom, after the hooks they describe exist — the
# same self-registration idiom as the repro.seams.Seam sites. These are
# the compute substrate's fault surfaces; repro chaos enumerates them to
# prove every injectable kind has a recovery path under test.

from repro import seams as _seams  # noqa: E402

_seams.register_chaos(
    _seams.ChaosPoint(
        name="pool-worker",
        module="repro.runner.parallel",
        hook="repro.chaos.inject.fire_worker_faults",
        kinds=("worker-crash", "worker-slow"),
        description=(
            "spawn worker SIGKILL/delay as a matching point is picked up "
            "(_Invoker); recovered by supervised respawn + resubmission"
        ),
    )
)
_seams.register_chaos(
    _seams.ChaosPoint(
        name="result-cache",
        module="repro.runner.parallel",
        hook="repro.chaos.inject.cache_read_fault",
        kinds=("cache-corrupt", "cache-write-fail"),
        description=(
            "disk-cache entry mangled before a read / OSError on a store "
            "(ResultCache); recovered by recompute-and-overwrite"
        ),
    )
)
