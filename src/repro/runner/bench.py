"""Benchmark harnesses behind ``python -m repro bench``.

Four benchmarks, each with its own JSON *trajectory file* so
successive PRs can gate on regressions:

- ``python -m repro bench`` (or ``bench slot``) measures the
  slot-resolution hot loop — :meth:`repro.radio.medium.Medium.
  resolve_slot` — on the E2 Figure-2 scenario (36x36 torus, r=4), fast
  path vs the preserved dict-based reference path, appending to
  ``BENCH_slot_resolution.json``;
- ``python -m repro bench scenario`` measures the *end-to-end* scenario
  fast path — full :func:`repro.scenario.run` on the bundled presets
  (quickstart, theorem2, figure2, reactive) — with every scenario-level
  optimization enabled (batched round driver, flat protocol engines,
  warm world cache) vs all of them disabled (the slot-by-slot
  pre-fast-path shape), appending to ``BENCH_scenario_run.json``; when
  NumPy is present the entry also carries a ``vector`` section timing
  the whole-grid kernel on the 10^6-node ``megatorus`` preset;
- ``python -m repro bench serve`` measures the scenario service
  (:mod:`repro.serve.bench`): a repeated-preset request workload
  through a real daemon + persistent pool vs direct serial runs,
  asserting byte identity per response, appending to
  ``BENCH_serve.json``;
- ``python -m repro bench atlas`` measures the adaptive frontier
  search (:mod:`repro.analysis.atlas`) cold vs cache-warm against one
  fresh on-disk cache, asserting the two runs' artifacts stay
  byte-identical, appending to ``BENCH_atlas.json`` — the speedup is
  the probe cache's effectiveness.

Common flags::

    python -m repro bench [slot|scenario]   # full run, appends an entry
    python -m repro bench ... --quick       # CI smoke: fewer repetitions
    python -m repro bench ... --out PATH    # write the trajectory elsewhere

Slot workloads are lifted from the Figure-2 run's actual traffic
shapes: the repeated source broadcast, the clairvoyantly defended
source slot (one honest transmission plus the four defender jams), a
same-TDMA-class relay wave, and a silence-at-collision jam. Every
measurement first asserts the compared paths produce identical results
(delivery lists for slots; outcome/costs/stats reports for scenarios),
so the benchmarks cannot drift from the determinism suites.

Trajectory files hold ``{"benchmark": ..., "runs": [entry, ...]}``;
each entry records per-workload timings and the overall speedup (total
baseline time / total fast time). ``--quick`` exits nonzero when the
overall speedup regressed more than :data:`REGRESSION_FACTOR` versus
the trajectory's last entry — perf PRs are expected to extend a bench
*before* claiming wins, and CI uploads both trajectories as artifacts.
"""

from __future__ import annotations

import json
import sys
import time
import timeit
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.adversary.figure2 import LATTICE, MF, R, WIDTH
from repro.network.grid import Grid, GridSpec
from repro.radio.medium import Medium
from repro.radio.messages import BadTransmission, Transmission
from repro.types import VTRUE

#: Default trajectory files, relative to the working directory.
DEFAULT_OUT = "BENCH_slot_resolution.json"
DEFAULT_SCENARIO_OUT = "BENCH_scenario_run.json"
DEFAULT_ATLAS_OUT = "BENCH_atlas.json"

#: The four clairvoyant defender positions of the Figure-2 defense.
_DEFENDERS = ((4, 5), (-5, 5), (4, -4), (-5, -4))


@dataclass(frozen=True)
class ScenarioTiming:
    """One measured slot workload (times are seconds per slot).

    ``fast_s`` is the steady-state (memo-hit) time — what a run pays on
    the repeated slots that dominate real traffic. ``fast_cold_s``
    clears the slot memo before every call, timing the flat resolver
    itself, so a regression in the miss path cannot hide behind memo
    hits.
    """

    name: str
    transmissions: int
    deliveries: int
    reference_s: float
    fast_s: float
    fast_cold_s: float
    speedup: float
    cold_speedup: float


def figure2_grid() -> Grid:
    """The E2 Figure-2 grid (36x36 torus, r=4)."""
    return Grid(GridSpec(width=WIDTH, height=WIDTH, r=R, torus=True))


def figure2_slot_workloads(
    grid: Grid,
) -> list[tuple[str, list[Transmission], list[BadTransmission]]]:
    """Representative per-slot workloads of the Figure-2 scenario."""
    source = grid.id_of((0, 0))
    defenders = [grid.id_of(c) for c in _DEFENDERS]
    lattice_bad = grid.id_of(LATTICE)
    # A relay wave: distinct owners of one TDMA slot class (stride 2r+1)
    # draining their budgets concurrently, as in the post-decide phase.
    wave = [
        Transmission(grid.id_of((x, y)), VTRUE)
        for x in (0, 9, 18, 27)
        for y in (9, 18)
    ]
    return [
        ("source-broadcast", [Transmission(source, VTRUE)], []),
        (
            "defended-source",
            [Transmission(source, VTRUE)],
            [BadTransmission(d, 0, spoof_sender=source) for d in defenders],
        ),
        ("relay-wave", wave, []),
        (
            "silent-jam",
            [Transmission(grid.id_of((1, 5)), VTRUE)],
            [BadTransmission(lattice_bad, 0, silence_at_collision=True)],
        ),
    ]


def _time_per_call(fn, iterations: int) -> float:
    """Best-of-3 mean seconds per call (min damps scheduler noise)."""
    return min(timeit.repeat(fn, number=iterations, repeat=3)) / iterations


def run_slot_resolution_bench(
    *, iterations: int = 2000, quick: bool = False
) -> dict:
    """Measure fast vs reference slot resolution on the E2 scenario.

    Returns one trajectory entry (JSON-serializable dict). ``quick``
    cuts iterations for CI smoke runs; the speedup assertion downstream
    is unaffected because per-slot times are already stable at the
    reduced count.
    """
    if quick:
        iterations = min(iterations, 200)
    grid = figure2_grid()
    fast = Medium(grid, fast=True)
    reference = Medium(grid, fast=False)

    scenarios: list[ScenarioTiming] = []
    total_reference = 0.0
    total_fast = 0.0
    for name, honest, byzantine in figure2_slot_workloads(grid):
        got_fast = fast.resolve_slot(honest, byzantine)
        got_reference = reference.resolve_slot(honest, byzantine)
        if got_fast != got_reference:  # pragma: no cover - safety net
            raise AssertionError(
                f"fast/reference divergence in scenario {name!r}"
            )
        ref_s = _time_per_call(
            lambda: reference.resolve_slot(honest, byzantine), iterations
        )
        fast_s = _time_per_call(
            lambda: fast.resolve_slot(honest, byzantine), iterations
        )

        def cold_call():
            fast._slot_memo.clear()
            fast.resolve_slot(honest, byzantine)

        fast_cold_s = _time_per_call(cold_call, iterations)
        total_reference += ref_s
        total_fast += fast_s
        scenarios.append(
            ScenarioTiming(
                name=name,
                transmissions=len(honest) + len(byzantine),
                deliveries=len(got_reference),
                reference_s=ref_s,
                fast_s=fast_s,
                fast_cold_s=fast_cold_s,
                speedup=ref_s / fast_s,
                cold_speedup=ref_s / fast_cold_s,
            )
        )

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "grid": f"{WIDTH}x{WIDTH} r={R} torus",
        "mf": MF,
        "iterations": iterations,
        "quick": quick,
        "scenarios": [asdict(s) for s in scenarios],
        "overall_speedup": total_reference / total_fast,
    }


def append_trajectory(
    entry: dict, out_path: str | Path, *, benchmark: str = "slot_resolution"
) -> dict:
    """Append one entry to the trajectory file (created if missing)."""
    path = Path(out_path)
    payload = {"benchmark": benchmark, "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(existing, dict) and isinstance(
                existing.get("runs"), list
            ):
                payload = existing
        except (OSError, ValueError):
            pass  # unreadable trajectory: start fresh rather than fail
    payload["runs"].append(entry)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_entry(entry: dict) -> str:
    """Human-readable summary of one trajectory entry."""
    from repro.runner.report import format_table

    rows = [
        [
            s["name"],
            s["transmissions"],
            s["deliveries"],
            f"{s['reference_s'] * 1e6:.1f}",
            f"{s['fast_s'] * 1e6:.1f}",
            f"{s['fast_cold_s'] * 1e6:.1f}",
            f"{s['speedup']:.1f}x",
            f"{s['cold_speedup']:.2f}x",
        ]
        for s in entry["scenarios"]
    ]
    table = format_table(
        ["scenario", "txs", "deliveries", "reference us", "fast us",
         "cold us", "speedup", "cold speedup"],
        rows,
        title=(
            f"slot-resolution microbenchmark, E2 Figure-2 scenario "
            f"({entry['grid']}, {entry['iterations']} iterations)"
        ),
    )
    return f"{table}\noverall speedup: {entry['overall_speedup']:.1f}x"


#: Regression gate: fail when the overall speedup drops below the last
#: recorded trajectory entry's by more than this factor. The speedup is a
#: same-machine fast/reference ratio, so it is comparable across hosts in
#: a way raw per-slot times are not.
REGRESSION_FACTOR = 1.5


def check_regression(
    entry: dict,
    out_path: str | Path,
    *,
    factor: float = REGRESSION_FACTOR,
    label: str = "slot-resolution",
) -> str | None:
    """Compare ``entry`` against the last *like-for-like* entry on disk.

    Returns an error message when the new overall speedup regressed by
    more than ``factor`` versus the last recorded run of the same
    flavor, ``None`` otherwise (including when there is no usable
    trajectory yet). Quick and full runs use different repeat counts, so
    a quick entry only gates against the last quick entry and a full one
    against the last full one — a trajectory that interleaves both must
    not compare across flavors.
    """
    path = Path(out_path)
    try:
        runs = json.loads(path.read_text(encoding="utf-8"))["runs"]
        flavor = bool(entry.get("quick"))
        matching = [r for r in runs if bool(r.get("quick")) == flavor]
        last = matching[-1]
        baseline = float(last["overall_speedup"])
    except (OSError, ValueError, KeyError, IndexError, TypeError, AttributeError):
        return None
    current = entry["overall_speedup"]
    if current * factor < baseline:
        return (
            f"{label} speedup regressed >{factor}x: "
            f"{current:.1f}x now vs {baseline:.1f}x in the last "
            f"trajectory entry ({last.get('timestamp', '?')})"
        )
    return None


# -- end-to-end scenario benchmark ---------------------------------------------

#: Bundled presets the scenario benchmark times, in reporting order.
SCENARIO_BENCH_PRESETS = ("quickstart", "theorem2", "figure2", "reactive")

#: The vectorized-kernel showcase timed as the trajectory's ``vector``
#: section: the 10^6-node torus that only the NumPy backend can finish
#: in seconds.
VECTOR_BENCH_PRESET = "megatorus"

#: Side length of the scaled-down replica the vector section uses to
#: cross-check kernel-vs-flat equivalence before timing the full preset
#: (whose flat run would take minutes).
_VECTOR_CHECK_SIDE = 100


@dataclass(frozen=True)
class ScenarioRunTiming:
    """One preset's end-to-end ``run(spec)`` timing (seconds per run).

    ``legacy_s`` is the pre-fast-path shape — reference round loop,
    per-node protocol state, cold world per run — and ``fast_s`` the
    fully optimized one (batched driver + flat engines + warm world),
    measured warm because that is what every sweep point after the first
    pays inside a worker process.
    """

    name: str
    rounds: int
    deliveries: int
    legacy_s: float
    fast_s: float
    speedup: float


class _scenario_flags:
    """Temporarily force every scenario-level optimization on or off.

    ``vector`` overrides the NumPy whole-grid kernel flag independently
    (the vector bench section needs "everything fast *except* the
    kernel" for its flat cross-check leg); by default it follows
    ``enabled``.
    """

    def __init__(self, enabled: bool, *, vector: bool | None = None) -> None:
        self.enabled = enabled
        self.vector = enabled if vector is None else vector

    def __enter__(self) -> None:
        import repro.protocols.flat as flat
        import repro.protocols.vectorized as vectorized
        import repro.radio.mac as mac
        import repro.scenario.runner as scenario_runner

        self._saved = (
            mac.DEFAULT_FAST_DRIVER,
            flat.DEFAULT_FLAT,
            scenario_runner.DEFAULT_WARM_WORLD,
            vectorized.DEFAULT_VECTOR,
        )
        mac.DEFAULT_FAST_DRIVER = self.enabled
        flat.DEFAULT_FLAT = self.enabled
        scenario_runner.DEFAULT_WARM_WORLD = self.enabled
        vectorized.DEFAULT_VECTOR = self.vector

    def __exit__(self, *exc_info) -> None:
        import repro.protocols.flat as flat
        import repro.protocols.vectorized as vectorized
        import repro.radio.mac as mac
        import repro.scenario.runner as scenario_runner

        (
            mac.DEFAULT_FAST_DRIVER,
            flat.DEFAULT_FLAT,
            scenario_runner.DEFAULT_WARM_WORLD,
            vectorized.DEFAULT_VECTOR,
        ) = self._saved


def _best_run_time(run_fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        run_fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _vector_bench_section(preset_name: str, *, quick: bool) -> dict:
    """Time the vectorized kernel's showcase preset (trajectory ``vector`` key).

    Without NumPy the section records ``available: False`` and skips.
    With it, a scaled-down replica of the preset's grid is first run
    through the kernel and through the flat engines, and the reports
    compared field-for-field — the benchmark refuses to time a kernel
    that disagrees with its reference twin. The full preset is then
    timed with the kernel required to engage.
    """
    from repro.protocols import vectorized
    from repro.scenario import preset as load_preset
    from repro.scenario import run as run_scenario

    if not vectorized.available():
        return {"preset": preset_name, "available": False}
    spec = load_preset(preset_name)
    check_grid = GridSpec(
        width=_VECTOR_CHECK_SIDE,
        height=_VECTOR_CHECK_SIDE,
        r=spec.grid.r,
        torus=spec.grid.torus,
    )
    check_spec = spec.replace(grid=check_grid)
    with _scenario_flags(True, vector=False):
        flat_report = run_scenario(check_spec)
    with _scenario_flags(True):
        vector_report = run_scenario(check_spec)
        if not isinstance(
            vector_report.nodes, vectorized.LazyNodeMap
        ):  # pragma: no cover - safety net
            raise AssertionError(
                f"vector kernel did not engage on the {preset_name!r} "
                f"cross-check replica"
            )
        if (
            vector_report.outcome != flat_report.outcome
            or vector_report.costs != flat_report.costs
            or vector_report.stats != flat_report.stats
        ):  # pragma: no cover - safety net
            raise AssertionError(
                f"vector/flat scenario divergence on the {preset_name!r} "
                f"cross-check replica"
            )
        report = run_scenario(spec)
        if not isinstance(
            report.nodes, vectorized.LazyNodeMap
        ):  # pragma: no cover - safety net
            raise AssertionError(
                f"vector kernel did not engage on preset {preset_name!r}"
            )
        run_s = _best_run_time(
            lambda: run_scenario(spec), 1 if quick else 2
        )
    return {
        "preset": preset_name,
        "available": True,
        "n": spec.grid.width * spec.grid.height,
        "check_grid": f"{check_grid.width}x{check_grid.height}",
        "rounds": report.stats.rounds,
        "deliveries": report.stats.deliveries,
        "success": report.success,
        "run_s": run_s,
    }


def run_scenario_bench(
    *,
    quick: bool = False,
    presets: tuple[str, ...] = SCENARIO_BENCH_PRESETS,
    vector_preset: str | None = VECTOR_BENCH_PRESET,
) -> dict:
    """Measure end-to-end ``run(spec)`` fast vs legacy on bundled presets.

    Every preset is first run once through each path and the resulting
    reports compared field-for-field (outcome, costs, stats) — the
    benchmark refuses to time paths that disagree. Timings are
    best-of-N full runs; ``quick`` cuts N for CI smoke runs.
    ``vector_preset`` adds the NumPy kernel's showcase as the entry's
    ``vector`` section (``None`` skips it); it never feeds the overall
    speedup, whose legacy leg would take minutes at 10^6 nodes.
    """
    from repro.scenario import preset as load_preset
    from repro.scenario import run as run_scenario

    fast_repeats = 2 if quick else 5
    legacy_repeats = 1 if quick else 2
    scenarios: list[ScenarioRunTiming] = []
    total_legacy = 0.0
    total_fast = 0.0
    for name in presets:
        spec = load_preset(name)
        with _scenario_flags(True):
            fast_report = run_scenario(spec)
            fast_s = _best_run_time(lambda: run_scenario(spec), fast_repeats)
        with _scenario_flags(False):
            legacy_report = run_scenario(spec)
            legacy_s = _best_run_time(lambda: run_scenario(spec), legacy_repeats)
        if (
            fast_report.outcome != legacy_report.outcome
            or fast_report.costs != legacy_report.costs
            or fast_report.stats != legacy_report.stats
        ):  # pragma: no cover - safety net
            raise AssertionError(
                f"fast/legacy scenario divergence on preset {name!r}"
            )
        total_legacy += legacy_s
        total_fast += fast_s
        scenarios.append(
            ScenarioRunTiming(
                name=name,
                rounds=fast_report.stats.rounds,
                deliveries=fast_report.stats.deliveries,
                legacy_s=legacy_s,
                fast_s=fast_s,
                speedup=legacy_s / fast_s,
            )
        )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "quick": quick,
        "fast_repeats": fast_repeats,
        "legacy_repeats": legacy_repeats,
        "scenarios": [asdict(s) for s in scenarios],
        "overall_speedup": total_legacy / total_fast,
    }
    if vector_preset is not None:
        entry["vector"] = _vector_bench_section(vector_preset, quick=quick)
    return entry


def format_scenario_entry(entry: dict) -> str:
    """Human-readable summary of one scenario-trajectory entry."""
    from repro.runner.report import format_table

    rows = [
        [
            s["name"],
            s["rounds"],
            s["deliveries"],
            f"{s['legacy_s'] * 1e3:.1f}",
            f"{s['fast_s'] * 1e3:.1f}",
            f"{s['speedup']:.1f}x",
        ]
        for s in entry["scenarios"]
    ]
    table = format_table(
        ["preset", "rounds", "deliveries", "legacy ms", "fast ms", "speedup"],
        rows,
        title=(
            "end-to-end scenario benchmark, full run(spec) per preset "
            f"(best of {entry['fast_repeats']} fast / "
            f"{entry['legacy_repeats']} legacy runs)"
        ),
    )
    lines = [table, f"overall speedup: {entry['overall_speedup']:.1f}x"]
    vector = entry.get("vector")
    if vector is not None:
        if vector.get("available"):
            lines.append(
                f"vector kernel [{vector['preset']}]: {vector['n']} nodes in "
                f"{vector['run_s']:.2f}s ({vector['rounds']} rounds, "
                f"{vector['deliveries']} deliveries, "
                f"success={vector['success']})"
            )
        else:
            lines.append(
                f"vector kernel [{vector['preset']}]: skipped, NumPy "
                f"unavailable"
            )
    return "\n".join(lines)


# -- atlas benchmark -----------------------------------------------------------

#: The atlas entry's gated ``overall_speedup`` is the cold/warm ratio
#: clamped to this cap. The raw ratio is hundreds (the warm leg is pure
#: cache reads, a few ms) and fluctuates with disk noise far more than
#: :data:`REGRESSION_FACTOR`; clamping makes every healthy run record
#: the same value, so the gate trips only when caching genuinely stops
#: engaging (ratio below cap/1.5). The unclamped ratio is kept as
#: ``raw_speedup`` for inspection.
ATLAS_SPEEDUP_CAP = 50.0


def run_atlas_bench(*, quick: bool = False) -> dict:
    """Measure the atlas frontier search cold vs cache-warm.

    Builds the atlas twice against one fresh on-disk cache: the cold leg
    computes every probe, the warm leg re-runs the identical searches
    and must answer from the :class:`~repro.runner.parallel.ResultCache`.
    The trajectory's ``overall_speedup`` is cold/warm time — a collapse
    means probe caching stopped engaging (e.g. a nondeterministic spec
    axis broke content-hash stability). Both legs' artifacts are
    compared byte-for-byte first; the benchmark refuses to time a
    non-reproducible atlas.
    """
    import tempfile

    from repro.analysis import atlas as atlas_mod
    from repro.runner.parallel import ResultCache
    from repro.scenario import preset as load_preset

    names = (
        atlas_mod.QUICK_ATLAS_PRESETS
        if quick
        else atlas_mod.DEFAULT_ATLAS_PRESETS
    )
    scenarios = [(name, load_preset(name)) for name in names]
    with tempfile.TemporaryDirectory(prefix="repro-bench-atlas-") as tmp:
        cold_cache = ResultCache(tmp, namespace="scenario")
        cold = atlas_mod.build_atlas(scenarios, cache=cold_cache)
        warm_cache = ResultCache(tmp, namespace="scenario")
        warm = atlas_mod.build_atlas(scenarios, cache=warm_cache)
    if atlas_mod.render_json(cold) != atlas_mod.render_json(
        warm
    ):  # pragma: no cover - safety net
        raise AssertionError(
            "cold/warm atlas artifacts diverged; the atlas is expected to "
            "be byte-identical across re-runs"
        )
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "quick": quick,
        "presets": list(names),
        "probes": cold.probes,
        "generations": cold.generations,
        "warm_cached_fraction": warm.cached_fraction,
        "cold_s": cold.elapsed_s,
        "warm_s": warm.elapsed_s,
        "scenarios": [
            {
                "name": entry.name,
                "probes": sum(f.evaluations for f in entry.frontiers),
                "frontiers": {
                    f.axis: f.frontier for f in entry.frontiers
                },
            }
            for entry in cold.entries
        ],
        "raw_speedup": cold.elapsed_s / warm.elapsed_s,
        "overall_speedup": min(
            cold.elapsed_s / warm.elapsed_s, ATLAS_SPEEDUP_CAP
        ),
    }


def format_atlas_entry(entry: dict) -> str:
    """Human-readable summary of one atlas-trajectory entry."""
    from repro.runner.report import format_table

    rows = [
        [
            s["name"],
            s["probes"],
            *(
                "—" if s["frontiers"].get(axis) is None else s["frontiers"][axis]
                for axis in ("m", "t", "mf")
            ),
        ]
        for s in entry["scenarios"]
    ]
    table = format_table(
        ["preset", "probes", "m frontier", "t frontier", "mf frontier"],
        rows,
        title=(
            f"atlas frontier-search benchmark ({entry['probes']} probes, "
            f"{entry['generations']} generations)"
        ),
    )
    return (
        f"{table}\n"
        f"cold {entry['cold_s']:.1f}s, warm {entry['warm_s']:.2f}s "
        f"({entry['warm_cached_fraction']:.0%} cached); "
        f"overall speedup: {entry['overall_speedup']:.1f}x "
        f"(raw {entry['raw_speedup']:.0f}x, "
        f"gated at {ATLAS_SPEEDUP_CAP:.0f}x)"
    )


def _trajectory_kind_mismatch(out: str | Path, benchmark: str) -> str | None:
    """Reject appending one benchmark's entry into the other's trajectory.

    The two trajectories' speedups are incomparable (slot microbench vs
    end-to-end runs), so mixing them would both corrupt the file and
    gate against a meaningless baseline. Missing/unreadable files are
    fine — they start fresh.
    """
    try:
        existing = json.loads(Path(out).read_text(encoding="utf-8"))
        recorded = existing["benchmark"]
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if recorded != benchmark:
        return (
            f"trajectory {out} records benchmark {recorded!r}, refusing to "
            f"append a {benchmark!r} entry; pick the matching --out file"
        )
    return None


def main_bench(
    *,
    which: str = "slot",
    out: str | Path | None = None,
    quick: bool = False,
) -> int:
    """CLI body: run the chosen benchmark, gate, append, print.

    Returns a process exit code: nonzero when the run regressed more
    than :data:`REGRESSION_FACTOR` against the last recorded entry (the
    entry is still appended so the trajectory records the regression).
    """
    started = time.perf_counter()
    benchmark = {
        "scenario": "scenario_run",
        "serve": "serve",
        "atlas": "atlas",
    }.get(which, "slot_resolution")
    if out is not None:
        mismatch = _trajectory_kind_mismatch(out, benchmark)
        if mismatch is not None:
            print(f"error: {mismatch}", file=sys.stderr)
            return 2
    if which == "serve":
        from repro.serve import bench as serve_bench

        out = serve_bench.DEFAULT_SERVE_OUT if out is None else out
        entry = serve_bench.run_serve_bench(quick=quick)
        regression = check_regression(entry, out, label="serve")
        append_trajectory(entry, out, benchmark="serve")
        print(serve_bench.format_serve_entry(entry))
    elif which == "atlas":
        out = DEFAULT_ATLAS_OUT if out is None else out
        entry = run_atlas_bench(quick=quick)
        regression = check_regression(entry, out, label="atlas")
        append_trajectory(entry, out, benchmark="atlas")
        print(format_atlas_entry(entry))
    elif which == "scenario":
        out = DEFAULT_SCENARIO_OUT if out is None else out
        entry = run_scenario_bench(quick=quick)
        regression = check_regression(entry, out, label="scenario-run")
        append_trajectory(entry, out, benchmark="scenario_run")
        print(format_scenario_entry(entry))
    else:
        out = DEFAULT_OUT if out is None else out
        entry = run_slot_resolution_bench(quick=quick)
        regression = check_regression(entry, out)
        append_trajectory(entry, out)
        print(format_entry(entry))
    print(
        f"[bench finished in {time.perf_counter() - started:.1f}s; "
        f"trajectory: {out}]"
    )
    if regression is not None:
        print(f"error: {regression}", file=sys.stderr)
        return 2
    return 0
