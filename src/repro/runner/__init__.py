"""Scenario assembly, end-to-end runs, sweeps, and report formatting."""

from repro.runner.bench import run_slot_resolution_bench
from repro.runner.broadcast_run import (
    BroadcastReport,
    ReactiveRunConfig,
    ThresholdRunConfig,
    run_reactive_broadcast,
    run_threshold_broadcast,
)
from repro.runner.parallel import (
    ResultCache,
    SweepProgress,
    point_key,
    point_seed,
)
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.runner.sweep import SweepResult, sweep

__all__ = [
    "BroadcastReport",
    "ReactiveRunConfig",
    "ThresholdRunConfig",
    "run_reactive_broadcast",
    "run_threshold_broadcast",
    "format_table",
    "ResultCache",
    "SweepProgress",
    "SweepResult",
    "parallel_sweep",
    "point_key",
    "point_seed",
    "run_slot_resolution_bench",
    "sweep",
]
