"""End-to-end runs, sweeps, and report formatting.

Scenario *assembly* now lives in :mod:`repro.scenario` (the declarative
``ScenarioSpec`` + registry API); this package keeps the execution
substrate — the parallel sweep engine and result cache
(:mod:`repro.runner.parallel`), report formatting
(:mod:`repro.runner.report`), the benchmark harness
(:mod:`repro.runner.bench`) — plus the deprecated config shims
(:mod:`repro.runner.broadcast_run`).
"""

from repro.runner.report import BroadcastReport, format_table
from repro.runner.bench import run_slot_resolution_bench
from repro.runner.broadcast_run import (
    ReactiveRunConfig,
    ThresholdRunConfig,
    run_reactive_broadcast,
    run_threshold_broadcast,
)
from repro.runner.parallel import (
    ResultCache,
    SweepProgress,
    SweepResult,
    point_key,
    point_seed,
    sweep,
)
from repro.runner.parallel import sweep as parallel_sweep

__all__ = [
    "BroadcastReport",
    "ReactiveRunConfig",
    "ThresholdRunConfig",
    "run_reactive_broadcast",
    "run_threshold_broadcast",
    "format_table",
    "ResultCache",
    "SweepProgress",
    "SweepResult",
    "parallel_sweep",
    "point_key",
    "point_seed",
    "run_slot_resolution_bench",
    "sweep",
]
