"""Deterministic fault injection (``python -m repro chaos``).

The simulator's subject is tolerating adversarial faults *inside* the
protocol; this package applies the same discipline to the system around
it. A seeded, JSON-round-trip :class:`~repro.chaos.plan.FaultPlan`
describes infrastructure faults — worker crash/SIGKILL mid-point, slow
worker, corrupt or truncated disk-cache entry, cache-write failure
(ENOSPC/EPERM), connection reset at the serve HTTP layer — and
:mod:`repro.chaos.inject` arms it against the injection points the
compute substrate registers as :class:`repro.seams.ChaosPoint` records.

The standing invariant (ROADMAP): an injected infrastructure fault may
cost latency, never bytes. ``repro chaos run`` replays plans against the
bundled presets and asserts every report is byte-identical to a
fault-free run with no request dropped.
"""

from repro.chaos.plan import (  # noqa: F401
    CACHE_KINDS,
    WORKER_KINDS,
    Fault,
    FaultPlan,
    full_plan,
    sample_plan,
)
