"""Fault plans: seeded, JSON-round-trip descriptions of injectable faults.

A :class:`FaultPlan` is to chaos what :class:`repro.scenario.spec.ScenarioSpec`
is to simulation: a frozen value object with a canonical JSON form and a
content hash, so a fault schedule can be committed next to the repro
corpus, replayed byte-for-byte, and sampled deterministically from a
seed. Plans carry no behavior — :mod:`repro.chaos.inject` arms them.

Fault vocabulary (see :data:`repro.seams.CHAOS_KINDS`):

=================== ==========================================================
``worker-crash``    SIGKILL the spawn worker as it picks up a matching point.
``worker-slow``     sleep ``delay_s`` in the worker before running the point.
``cache-corrupt``   mangle the on-disk cache entry before a matching read
                    (``mode``: ``truncate`` | ``garbage``).
``cache-write-fail`` fail the cache store with an injected OSError
                    (``mode``: ``enospc`` | ``eperm``).
``connection-reset`` abort the client connection after computing a serve
                    response, before writing it.
=================== ==========================================================

``target`` scopes a fault to points whose content hash starts with the
given prefix; ``"*"`` (the default) matches every point. Each fault
fires at most once per arming.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import random
from typing import Any, Iterable, Mapping

from repro.errors import SpecValidationError
from repro.seams import CHAOS_KINDS

#: Kinds shipped into spawn workers (fired inside the worker process).
WORKER_KINDS = ("worker-crash", "worker-slow")

#: Kinds fired on the parent-side result-cache hooks.
CACHE_KINDS = ("cache-corrupt", "cache-write-fail")

#: Valid ``mode`` values per kind (empty string means "no mode").
_MODES = {
    "cache-corrupt": ("truncate", "garbage"),
    "cache-write-fail": ("enospc", "eperm"),
}

#: Sampled ``worker-slow`` delays stay small: latency is allowed, but a
#: chaos run should not stall CI.
_MAX_DELAY_S = 5.0


def _reject_unknown_keys(
    payload: Mapping[str, Any], known: tuple[str, ...], what: str
) -> None:
    for key in payload:
        if key not in known:
            suggestions = difflib.get_close_matches(str(key), known, n=3)
            hint = (
                f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            )
            raise SpecValidationError(
                f"unknown {what} key {key!r}{hint}",
                field=str(key),
                suggestions=tuple(suggestions),
            )


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injectable fault: what, where, and how hard."""

    kind: str
    target: str = "*"
    delay_s: float = 0.0
    mode: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            suggestions = difflib.get_close_matches(self.kind, CHAOS_KINDS, n=3)
            hint = (
                f"; did you mean {suggestions[0]!r}?" if suggestions else ""
            )
            raise SpecValidationError(
                f"unknown fault kind {self.kind!r}{hint}",
                field="kind",
                suggestions=tuple(suggestions),
            )
        if not self.target:
            raise SpecValidationError(
                "fault target must be '*' or a content-hash prefix",
                field="target",
            )
        if self.kind == "worker-slow":
            if not 0.0 < self.delay_s <= _MAX_DELAY_S:
                raise SpecValidationError(
                    f"worker-slow delay_s must be in (0, {_MAX_DELAY_S}], "
                    f"got {self.delay_s}",
                    field="delay_s",
                )
        elif self.delay_s:
            raise SpecValidationError(
                f"delay_s only applies to worker-slow, not {self.kind}",
                field="delay_s",
            )
        modes = _MODES.get(self.kind)
        if modes is not None:
            if not self.mode:
                object.__setattr__(self, "mode", modes[0])
            elif self.mode not in modes:
                raise SpecValidationError(
                    f"{self.kind} mode must be one of {', '.join(modes)}; "
                    f"got {self.mode!r}",
                    field="mode",
                    suggestions=modes,
                )
        elif self.mode:
            raise SpecValidationError(
                f"mode does not apply to {self.kind}", field="mode"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        if self.target != "*":
            out["target"] = self.target
        if self.delay_s:
            out["delay_s"] = self.delay_s
        if self.mode:
            out["mode"] = self.mode
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Fault":
        if not isinstance(payload, Mapping):
            raise SpecValidationError(
                f"a fault must be a JSON object, got {type(payload).__name__}"
            )
        _reject_unknown_keys(
            payload, ("kind", "target", "delay_s", "mode"), "fault"
        )
        return cls(
            kind=str(payload.get("kind", "")),
            target=str(payload.get("target", "*")),
            delay_s=float(payload.get("delay_s", 0.0)),
            mode=str(payload.get("mode", "")),
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered fault schedule, hashable and replayable like a spec."""

    seed: int = 0
    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def kinds(self) -> tuple[str, ...]:
        """The distinct fault kinds in this plan, sorted."""
        return tuple(sorted({fault.kind for fault in self.faults}))

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise SpecValidationError(
                f"a fault plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        _reject_unknown_keys(payload, ("seed", "faults"), "fault plan")
        faults = payload.get("faults", [])
        if not isinstance(faults, Iterable) or isinstance(faults, (str, bytes)):
            raise SpecValidationError(
                "fault plan 'faults' must be a list", field="faults"
            )
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=tuple(Fault.from_dict(item) for item in faults),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def __canonical_json__(self) -> dict[str, Any]:
        return self.to_dict()

    def content_hash(self) -> str:
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """``seed=3 [worker-crash, cache-corrupt]`` — for log lines."""
        kinds = ", ".join(self.kinds()) or "no faults"
        return f"seed={self.seed} [{kinds}]"


def sample_plan(
    seed: int,
    *,
    kinds: tuple[str, ...] = CHAOS_KINDS,
    max_faults: int = 3,
) -> FaultPlan:
    """A deterministic random plan: same seed, same plan, any machine."""
    rng = random.Random(f"repro-chaos-{seed}")
    faults = []
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(list(kinds))
        if kind == "worker-slow":
            faults.append(
                Fault(kind=kind, delay_s=round(rng.uniform(0.01, 0.05), 3))
            )
        elif kind in _MODES:
            faults.append(Fault(kind=kind, mode=rng.choice(_MODES[kind])))
        else:
            faults.append(Fault(kind=kind))
    return FaultPlan(seed=seed, faults=tuple(faults))


def full_plan() -> FaultPlan:
    """One fault of every kind and mode — the CI smoke plan.

    Guarantees ``repro chaos run`` exercises worker kill, slow worker,
    both corruption flavors, both store-failure flavors, and a
    connection reset on every run, independent of what sampling drew.
    """
    return FaultPlan(
        seed=0,
        faults=(
            Fault(kind="worker-crash"),
            Fault(kind="worker-slow", delay_s=0.05),
            Fault(kind="cache-corrupt", mode="truncate"),
            Fault(kind="cache-corrupt", mode="garbage"),
            Fault(kind="cache-write-fail", mode="enospc"),
            Fault(kind="cache-write-fail", mode="eperm"),
            Fault(kind="connection-reset"),
        ),
    )
