"""Arming and firing :class:`~repro.chaos.plan.FaultPlan` faults.

State lives in two places:

- **Parent-side**: the armed plan, the set of *spent* fault indices, and
  per-kind fired counters. Cache faults, connection resets, and the
  attribution of observed pool breaks to ``worker-crash`` faults all
  happen here, under a lock (the serve path fires hooks from the event
  loop and the pool-supervisor thread).
- **Worker-side**: spawn workers cannot see the parent's plan, so the
  invoker snapshots the unspent worker faults at construction
  (:func:`shipped_worker_faults`) and installs them inside the worker
  (:func:`install_worker_faults`) before each point.

Spend-once discipline is what makes recovery terminate: a
``worker-crash`` fault SIGKILLs one worker; when the parent observes the
resulting pool break it *spends* that fault (:func:`on_pool_break`), so
the respawned pool's fresh invoker snapshot no longer ships it and the
resubmitted points run to completion.

Every hook is a no-op costing one attribute read when nothing is armed,
so the injection points stay in production code permanently.
"""

from __future__ import annotations

import contextlib
import errno
import os
import signal
import threading
import time
from pathlib import Path
from typing import Iterator, Sequence

from repro.chaos.plan import WORKER_KINDS, Fault, FaultPlan

_LOCK = threading.RLock()
_PLAN: FaultPlan | None = None
_SPENT: set[int] = set()
_FIRED: dict[str, int] = {}

# Worker-side fault set: (plan index, fault) pairs installed by the
# invoker inside a spawn worker. Spent indices persist for the worker's
# lifetime so a once-fired slow fault does not sleep again.
_WORKER_FAULTS: tuple[tuple[int, Fault], ...] = ()
_WORKER_SPENT: set[int] = set()


def arm(plan: FaultPlan) -> None:
    """Arm ``plan``; resets spent faults and fired counters."""
    global _PLAN
    with _LOCK:
        _PLAN = plan
        _SPENT.clear()
        _FIRED.clear()


def disarm() -> None:
    """Disarm whatever is armed (idempotent); counters survive for reads."""
    global _PLAN
    with _LOCK:
        _PLAN = None
        _SPENT.clear()


def is_armed() -> bool:
    return _PLAN is not None


def active_plan() -> FaultPlan | None:
    return _PLAN


@contextlib.contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with armed(plan): ...`` — always disarms, even on failure."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def counters() -> dict[str, int]:
    """Per-kind fired counts since the last :func:`arm`."""
    with _LOCK:
        return dict(_FIRED)


def _count(kind: str) -> None:
    _FIRED[kind] = _FIRED.get(kind, 0) + 1


def _matches(fault: Fault, key: str | None) -> bool:
    if fault.target == "*":
        return True
    return key is not None and key.startswith(fault.target)


def _take(kind: str, key: str | None) -> Fault | None:
    """Spend and return the oldest unspent matching fault, if any."""
    if _PLAN is None:
        return None
    with _LOCK:
        if _PLAN is None:
            return None
        for index, fault in enumerate(_PLAN.faults):
            if index in _SPENT or fault.kind != kind:
                continue
            if _matches(fault, key):
                _SPENT.add(index)
                _count(kind)
                return fault
    return None


# -- parent-side hooks ---------------------------------------------------------


def cache_read_fault(key: str, path: Path) -> None:
    """Corrupt ``path`` before a matching cache read, per the armed plan.

    Called by :meth:`repro.runner.parallel.ResultCache.get` with the
    entry path *before* reading it. Only fires when the entry exists —
    corrupting a miss would test nothing.
    """
    if _PLAN is None:
        return
    if not path.exists():
        return
    fault = _take("cache-corrupt", key)
    if fault is None:
        return
    try:
        data = path.read_bytes()
    except OSError:
        return
    if fault.mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    else:
        path.write_bytes(b'{"key": "chaos-garbage", "result": [')


def cache_write_fault(key: str) -> OSError | None:
    """The OSError to raise for a matching cache store, or ``None``.

    The caller raises it from inside the store path so the failure is
    indistinguishable from a real full/read-only disk.
    """
    if _PLAN is None:
        return None
    fault = _take("cache-write-fail", key)
    if fault is None:
        return None
    if fault.mode == "eperm":
        return PermissionError(
            errno.EPERM, "chaos: injected EPERM on cache store"
        )
    return OSError(errno.ENOSPC, "chaos: injected ENOSPC on cache store")


def connection_reset() -> bool:
    """Whether to abort the current serve connection before responding."""
    if _PLAN is None:
        return False
    return _take("connection-reset", None) is not None


def on_pool_break() -> Fault | None:
    """Attribute an observed pool break to the oldest unspent crash fault.

    The supervisor calls this once per break it recovers from; spending
    the fault here keeps the respawned pool's worker snapshot clean so
    resubmission makes progress instead of crash-looping.
    """
    if _PLAN is None:
        return None
    return _take("worker-crash", None)


# -- worker-side ---------------------------------------------------------------


def shipped_worker_faults() -> tuple[tuple[int, Fault], ...]:
    """Unspent worker faults to snapshot into an invoker (parent side)."""
    if _PLAN is None:
        return ()
    with _LOCK:
        if _PLAN is None:
            return ()
        return tuple(
            (index, fault)
            for index, fault in enumerate(_PLAN.faults)
            if index not in _SPENT and fault.kind in WORKER_KINDS
        )


def install_worker_faults(
    faults: Sequence[tuple[int, Fault]],
) -> None:
    """Install a shipped fault snapshot inside a spawn worker."""
    global _WORKER_FAULTS
    _WORKER_FAULTS = tuple(faults)


def fire_worker_faults(keys: Sequence[str]) -> None:
    """Fire installed worker faults matching any of ``keys`` (worker side).

    ``worker-slow`` sleeps once; ``worker-crash`` SIGKILLs this worker —
    the real thing, not an exception, so the parent sees exactly what an
    OOM kill looks like: a broken pool.
    """
    for index, fault in _WORKER_FAULTS:
        if index in _WORKER_SPENT:
            continue
        if not any(_matches(fault, key) for key in keys):
            continue
        _WORKER_SPENT.add(index)
        if fault.kind == "worker-slow":
            time.sleep(fault.delay_s)
        elif fault.kind == "worker-crash":
            os.kill(os.getpid(), signal.SIGKILL)
