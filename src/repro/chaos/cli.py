"""The ``python -m repro chaos`` command: replay fault plans, assert bytes.

``chaos run`` is the executable form of the standing rule *infrastructure
faults may cost latency, never bytes*: for each target preset it computes
fault-free reference bytes (:func:`repro.serve.service.report_bytes`)
for a small seed-varied point set, then replays fault plans against the
two production surfaces —

- **sweep leg** — a parallel :func:`repro.runner.parallel.sweep` (twice,
  over a shared temp cache, so read-side corruption faults get a stored
  entry to mangle) with the plan armed; every outcome must serialize to
  the reference bytes.
- **serve leg** — a real in-process daemon over a
  :class:`~repro.runner.parallel.PersistentPool`; every ``POST /run``
  must answer 200 with the reference bytes, retrying on injected
  connection resets (the retry is the client's job; the server has
  already cached the result).

Plans come from ``--plan FILE`` (a committed :class:`FaultPlan` JSON),
or default to :func:`full_plan` (every kind and mode) plus ``--sample``
seed-derived random plans. Exit 0 means every byte matched and every
registered chaos kind is covered by a registered injection point.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import sys
import tempfile
from pathlib import Path
from typing import Sequence, TextIO

from repro import seams
from repro.chaos import inject as _chaos
from repro.chaos.plan import FaultPlan, full_plan, sample_plan
from repro.runner.parallel import PersistentPool, ResultCache, sweep
from repro.scenario import preset
from repro.scenario.runner import run_summary
from repro.scenario.spec import ScenarioSpec
from repro.serve.http import run_daemon
from repro.serve.service import (
    ScenarioService,
    report_bytes,
    serialize_outcome,
)

#: Presets exercised when no targets are given: the cheapest two.
DEFAULT_TARGETS = ("quickstart", "theorem2")

#: Injected connection resets surface client-side; this many fresh
#: connections per request bounds the retry loop well above any plan's
#: reset budget.
_SERVE_RETRIES = 5


def _format_fired(fired: dict[str, int]) -> str:
    if not fired:
        return "no faults fired"
    return ", ".join(f"{kind} x{count}" for kind, count in sorted(fired.items()))


def _sweep_leg(
    name: str,
    points: Sequence[ScenarioSpec],
    goldens: Sequence[bytes],
    plan: FaultPlan,
    *,
    workers: int,
) -> list[str]:
    """Two armed parallel sweeps over one temp cache; byte-check both."""
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as cache_dir:
        cache = ResultCache(cache_dir, namespace="scenario")
        with _chaos.armed(plan):
            for attempt in (1, 2):
                result = sweep(
                    list(points),
                    run_summary,
                    workers=workers,
                    cache=cache,
                    chunksize=1,
                )
                for spec, outcome, want in zip(
                    points, result.results, goldens
                ):
                    got = serialize_outcome(outcome)
                    if got != want:
                        failures.append(
                            f"{name} sweep attempt {attempt} under plan "
                            f"{plan.describe()}: point "
                            f"{spec.content_hash()[:12]} diverged from the "
                            "fault-free bytes"
                        )
    return failures


async def _request(port: int, body: bytes) -> tuple[int, bytes]:
    """One ``POST /run`` on a fresh connection; raises on a reset."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            (
                "POST /run HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()
        head = (await reader.readuntil(b"\r\n\r\n")).decode("ascii")
        status_line, *header_lines = head.split("\r\n")
        status = int(status_line.split(" ")[1])
        length = 0
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep and name.strip().lower() == "content-length":
                length = int(value.strip())
        return status, await reader.readexactly(length)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def _serve_leg(
    name: str,
    points: Sequence[ScenarioSpec],
    goldens: Sequence[bytes],
    plan: FaultPlan,
    *,
    workers: int,
) -> list[str]:
    """Armed requests against a real daemon; every body must match."""
    failures: list[str] = []
    ready = asyncio.Event()
    stop = asyncio.Event()
    log = io.StringIO()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-serve-") as cache_dir:
        service = ScenarioService(
            pool=PersistentPool(workers),
            cache=ResultCache(cache_dir, namespace="scenario"),
        )
        daemon = asyncio.ensure_future(
            run_daemon(
                service,
                host="127.0.0.1",
                port=0,
                out=log,
                ready=ready,
                stop=stop,
            )
        )
        await ready.wait()
        port = int(log.getvalue().strip().rsplit(":", 1)[1])
        try:
            with _chaos.armed(plan):
                for spec, want in zip(points, goldens):
                    body = spec.to_json(indent=None).encode("utf-8")
                    answer: "tuple[int, bytes] | None" = None
                    for _ in range(_SERVE_RETRIES):
                        try:
                            answer = await _request(port, body)
                            break
                        except (
                            ConnectionError,
                            asyncio.IncompleteReadError,
                            OSError,
                        ):
                            continue  # injected reset; retry fresh
                    key = spec.content_hash()[:12]
                    if answer is None:
                        failures.append(
                            f"{name} serve under plan {plan.describe()}: "
                            f"request {key} never answered within "
                            f"{_SERVE_RETRIES} connections"
                        )
                    elif answer[0] != 200 or answer[1] != want:
                        failures.append(
                            f"{name} serve under plan {plan.describe()}: "
                            f"request {key} answered {answer[0]} with "
                            "non-reference bytes"
                        )
        finally:
            stop.set()
            await daemon
    return failures


def chaos_run_command(
    targets: Sequence[str] | None = None,
    *,
    plan_file: str | None = None,
    sample: int = 2,
    seed: int = 0,
    workers: int = 2,
    serve_leg: bool = True,
    points: int = 3,
    out: TextIO | None = None,
) -> int:
    """Entry point behind ``python -m repro chaos run``."""
    out = out if out is not None else sys.stdout
    names = tuple(targets) if targets else DEFAULT_TARGETS

    missing = set(seams.CHAOS_KINDS) - set(seams.chaos_kinds_covered())
    if missing:
        print(
            "chaos: fault kinds with no registered injection point: "
            + ", ".join(sorted(missing)),
            file=out,
        )
        return 1

    if plan_file is not None:
        plans = [FaultPlan.from_json(Path(plan_file).read_text("utf-8"))]
    else:
        plans = [full_plan()]
        plans.extend(sample_plan(seed + i) for i in range(sample))

    failures: list[str] = []
    for name in names:
        base = preset(name)
        specs = [base.replace(seed=base.seed + off) for off in range(points)]
        goldens = [report_bytes(spec) for spec in specs]
        for plan in plans:
            failures.extend(
                _sweep_leg(name, specs, goldens, plan, workers=workers)
            )
            print(
                f"chaos: {name} sweep under {plan.describe()}: "
                f"{_format_fired(_chaos.counters())}",
                file=out,
            )
        if serve_leg:
            # The serve leg replays the first plan only (the file plan,
            # or full_plan — which always includes the worker kill and
            # the connection reset); sampled plans keep the sweep side
            # varied without multiplying daemon spawns.
            failures.extend(
                asyncio.run(
                    _serve_leg(name, specs, goldens, plans[0], workers=workers)
                )
            )
            print(
                f"chaos: {name} serve under {plans[0].describe()}: "
                f"{_format_fired(_chaos.counters())}",
                file=out,
            )
    if failures:
        for failure in failures:
            print(f"chaos: FAIL {failure}", file=out)
        print(f"chaos: {len(failures)} divergence(s)", file=out)
        return 1
    legs = len(names) * (len(plans) + (1 if serve_leg else 0))
    print(
        f"chaos: OK — {legs} leg(s) over {len(names)} preset(s) and "
        f"{len(plans)} plan(s), every response byte-identical to the "
        "fault-free run",
        file=out,
    )
    return 0


def chaos_sample_command(
    *, seed: int = 0, count: int = 1, out: TextIO | None = None
) -> int:
    """Entry point behind ``python -m repro chaos sample``."""
    out = out if out is not None else sys.stdout
    for offset in range(count):
        print(sample_plan(seed + offset).to_json(), file=out)
    return 0


__all__ = ["chaos_run_command", "chaos_sample_command", "DEFAULT_TARGETS"]
