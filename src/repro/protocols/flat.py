"""Flat-array protocol state: batched delivery distribution engines.

The per-delivery cost of a scenario run is dominated not by slot
resolution (memoized since the slot fast path) but by *distribution*:
one ``on_receive`` call per delivery, each updating a per-node
``Counter`` / dict-of-sets. These engines move the hottest protocol
state onto flat id-indexed arrays shared by all nodes of a run:

- :class:`FlatThresholdEngine` — the ``t*mf + 1``-copies acceptance rule
  of :class:`~repro.protocols.base.ThresholdNode` (protocols B, Koo,
  B_heter) as per-value ``counts`` integer arrays plus a ``decided``
  bitmap;
- :class:`FlatCpaEngine` — certified propagation's distinct-endorser
  rule (:class:`~repro.protocols.cpa.CpaNode`) as per-value endorsement
  *count* arrays, a ``decided`` bitmap, and a packed ``(receiver,
  sender)`` seen-set for the distinctness constraint.

The node classes keep their historical dict/Counter implementations as
the reference path (``DEFAULT_FLAT = False`` routes whole scenarios
through them; the equivalence suite asserts identical reports, mirroring
``resolve_slot_reference``). After a run, :meth:`sync_nodes` writes the
flat state back into each node's ``value_counts`` / ``endorsements`` /
``received_total`` so reports and tests observe exactly the state the
reference path would have produced.

Batched distribution
--------------------

``distribute(batch, round_index, repeat)`` consumes one resolved slot.
Because the medium's memo returns identity-stable
:class:`~repro.radio.medium.DeliveryBatch` objects, each engine caches a
per-batch *plan* — the deliveries regrouped by value, restricted to
managed honest receivers — keyed by ``id(batch)`` while holding the
batch alive (so the id cannot be recycled). Steady-state slots then cost
one dict hit plus one tight loop over an int array per value group.
``repeat > 1`` applies one batch several times at once (the driver's
burst dedup): counts advance by ``repeat`` and a threshold crossing is
detected as ``old < threshold <= old + repeat``, which is exactly where
per-copy processing would have decided.

Equivalence constraints the engines rely on (and the drivers preserve):
a receiver hears at most one delivery per resolved slot, decisions are
monotone, and ``ThresholdNode``/``CpaNode`` pending sends only ever
appear at decide time — which is why ``newly_pending`` (drained by the
driver's candidate tracker) is complete.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Mapping

from repro.protocols.base import BroadcastParams, ThresholdNode
from repro.protocols.cpa import CpaNode
from repro.radio.medium import shared_plan_cache
from repro.radio.messages import MessageKind
from repro.types import NodeId, Value

#: Process-wide default for routing scenario runs through the flat
#: engines. Tests monkeypatch this to drive whole experiments through
#: the per-node reference implementations when checking equivalence.
DEFAULT_FLAT = True


class FlatThresholdEngine:
    """Shared flat state for a run of :class:`ThresholdNode` instances.

    The live loop maintains only what decisions depend on: per-value
    counts for *undecided* receivers. Everything else — per-node
    ``received_total`` and the final ``value_counts`` — is pure
    accounting, recomputed exactly at :meth:`sync_nodes` from per-batch
    hit counters (each ``distribute`` call is one O(1) increment), so a
    decided node costs one bitmap read per delivery instead of three
    array updates.
    """

    def __init__(
        self, nodes: Mapping[NodeId, ThresholdNode], n: int, threshold: int
    ) -> None:
        self.n = n
        self.threshold = threshold
        self._nodes = nodes
        self.decided = bytearray(n)
        self._is_node = bytearray(n)
        self._counts: dict[Value, list[int]] = {}
        # id(batch) -> [total hits, batch]; the strong reference keeps
        # the id stable. Accounting, not a cache: never dropped mid-run.
        self._batch_hits: dict[int, list] = {}
        # Plans depend only on (n, managed receiver set) and the batch
        # content: share them across a sweep's runs of one shape.
        self._plans = shared_plan_cache(("threshold", n, tuple(nodes)))
        self.newly_pending: list[NodeId] = []
        for nid, node in nodes.items():
            self._is_node[nid] = 1
            if node.decided:
                self.decided[nid] = 1

    def _plan(self, batch) -> list[tuple[Value, list[NodeId]]]:
        plan = self._plans.get(batch)
        if plan is None:
            groups: dict[Value, list[NodeId]] = {}
            is_node = self._is_node
            data = MessageKind.DATA
            for d in batch:
                if d.kind is data and is_node[d.receiver]:
                    groups.setdefault(d.value, []).append(d.receiver)
            plan = list(groups.items())
            self._plans.put(batch, plan)
        return plan

    def distribute(self, batch, round_index: int, repeat: int = 1) -> None:
        entry = self._batch_hits.get(id(batch))
        if entry is not None and entry[1] is batch:
            entry[0] += repeat
        else:
            self._batch_hits[id(batch)] = [repeat, batch]
        decided = self.decided
        threshold = self.threshold
        counts_by_value = self._counts
        for value, receivers in self._plan(batch):
            counts = counts_by_value.get(value)
            if counts is None:
                counts = counts_by_value[value] = [0] * self.n
            if repeat == 1:
                for rec in receivers:
                    if decided[rec]:
                        continue
                    c = counts[rec] + 1
                    counts[rec] = c
                    if c == threshold:
                        self._decide(rec, value, round_index)
            else:
                for rec in receivers:
                    if decided[rec]:
                        continue
                    c = counts[rec]
                    counts[rec] = c + repeat
                    if c < threshold <= c + repeat:
                        self._decide(rec, value, round_index)

    def _decide(self, rec: NodeId, value: Value, round_index: int) -> None:
        node = self._nodes[rec]
        # The reference path keeps _current_round fresh via on_round_end;
        # the engine stamps it at the only moment it is observable.
        node._current_round = round_index
        node._decide(value)
        self.decided[rec] = 1
        if node.has_pending():
            self.newly_pending.append(rec)

    def sync_nodes(self) -> None:
        """Write the reference-shape state back into the nodes.

        Replays the per-batch hit counters through the (cached) plans,
        which reproduces exactly the ``received_total`` / ``value_counts``
        the per-delivery reference path accumulates.
        """
        n = self.n
        received = [0] * n
        totals: dict[Value, list[int]] = {}
        for hits, batch in self._batch_hits.values():
            for value, receivers in self._plan(batch):
                counts = totals.get(value)
                if counts is None:
                    counts = totals[value] = [0] * n
                for rec in receivers:
                    received[rec] += hits
                    counts[rec] += hits
        for nid, node in self._nodes.items():
            node.received_total = received[nid]
            counter: Counter[Value] = Counter()
            for value, counts in totals.items():
                if counts[nid]:
                    counter[value] = counts[nid]
            node.value_counts = counter


class FlatCpaEngine:
    """Shared flat state for a run of :class:`CpaNode` instances."""

    def __init__(
        self,
        nodes: Mapping[NodeId, CpaNode],
        n: int,
        source: NodeId,
        threshold: int,
    ) -> None:
        self.n = n
        self.source = source
        self.threshold = threshold  # t + 1 distinct endorsers
        self._nodes = nodes
        self.decided = bytearray(n)
        self._is_node = bytearray(n)
        # value -> distinct-endorser counts; value -> {rec * n + sender}.
        self._counts: dict[Value, list[int]] = {}
        self._seen: dict[Value, set[int]] = {}
        # id(batch) -> [total hits, batch] (see FlatThresholdEngine).
        self._batch_hits: dict[int, list] = {}
        self._plans = shared_plan_cache(("cpa", n, tuple(nodes)))
        self.newly_pending: list[NodeId] = []
        for nid, node in nodes.items():
            self._is_node[nid] = 1
            if node.decided:
                self.decided[nid] = 1

    def _plan(self, batch) -> list[tuple[Value, list[tuple[NodeId, NodeId]]]]:
        plan = self._plans.get(batch)
        if plan is None:
            groups: dict[Value, list[tuple[NodeId, NodeId]]] = {}
            is_node = self._is_node
            data = MessageKind.DATA
            for d in batch:
                if d.kind is data and is_node[d.receiver]:
                    groups.setdefault(d.value, []).append((d.receiver, d.sender))
            plan = list(groups.items())
            self._plans.put(batch, plan)
        return plan

    def distribute(self, batch, round_index: int, repeat: int = 1) -> None:
        entry = self._batch_hits.get(id(batch))
        if entry is not None and entry[1] is batch:
            entry[0] += repeat
        else:
            self._batch_hits[id(batch)] = [repeat, batch]
        decided = self.decided
        threshold = self.threshold
        source = self.source
        n = self.n
        for value, pairs in self._plan(batch):
            counts = self._counts.get(value)
            if counts is None:
                counts = self._counts[value] = [0] * n
                self._seen[value] = set()
            seen = self._seen[value]
            for rec, sender in pairs:
                if decided[rec]:
                    continue
                if sender == source:
                    self._decide(rec, value, round_index)
                    continue
                key = rec * n + sender
                if key in seen:
                    continue
                seen.add(key)
                c = counts[rec] + 1
                counts[rec] = c
                if c >= threshold:
                    self._decide(rec, value, round_index)

    def _decide(self, rec: NodeId, value: Value, round_index: int) -> None:
        node = self._nodes[rec]
        node._current_round = round_index
        node._decide(value)
        self.decided[rec] = 1
        if node.has_pending():
            self.newly_pending.append(rec)

    def sync_nodes(self) -> None:
        """Rebuild each node's dict-of-sets endorsements from flat state."""
        n = self.n
        received = [0] * n
        for hits, batch in self._batch_hits.values():
            for _value, pairs in self._plan(batch):
                for rec, _sender in pairs:
                    received[rec] += hits
        per_node: dict[NodeId, dict[Value, set[NodeId]]] = {}
        for value, seen in self._seen.items():
            for key in seen:
                rec, sender = divmod(key, n)
                per_node.setdefault(rec, {}).setdefault(value, set()).add(sender)
        for nid, node in self._nodes.items():
            node.received_total = received[nid]
            endorsements: defaultdict[Value, set[NodeId]] = defaultdict(set)
            for value, senders in per_node.get(nid, {}).items():
                endorsements[value] = senders
            node.endorsements = endorsements


def build_flat_engine(
    nodes: Mapping[NodeId, object],
    n: int,
    params: BroadcastParams,
    source: NodeId,
):
    """The flat engine matching a run's node population, or ``None``.

    Engines replicate the exact acceptance logic of one concrete node
    class, so eligibility is deliberately strict: every node must be an
    *exact* instance (subclasses may override ``on_value`` and silently
    diverge). Ineligible populations — reactive nodes, custom test
    nodes, mixed sets — simply run the per-node reference path.
    """
    if not nodes:
        return None
    classes = {type(node) for node in nodes.values()}
    if classes == {ThresholdNode}:
        return FlatThresholdEngine(nodes, n, params.threshold)
    if classes == {CpaNode}:
        return FlatCpaEngine(nodes, n, source, params.t + 1)
    return None


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="flat-engines",
        flag_module="repro.protocols.flat",
        flag_attr="DEFAULT_FLAT",
        fast="repro.protocols.flat.FlatThresholdEngine",
        reference="repro.protocols.base.BroadcastNode.on_receive",
        differential_test="tests/test_scenario_fastpath.py",
        fuzz_leg="fast",
        description="flat array protocol engines vs per-node objects",
    )
)
