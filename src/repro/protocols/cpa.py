"""Certified Propagation (Koo [13] / Bhandari-Vaidya [3]).

The classic multi-hop protocol for the locally-bounded model *without*
message bounds: a node accepts a value heard directly from the source, or
vouched for by ``t + 1`` distinct neighbors; it then relays its accepted
value once. Tolerates ``t < r(2r+1)/2`` on the grid.

In this package CPA plays two roles:

- the multi-hop layer of ``B_reactive`` (§5), running on top of the
  reliable reactive local broadcast, and
- a baseline in ablations showing *why* the integrity code is needed:
  under collision spoofing (a jammer forging the apparent sender) naive
  CPA accepts wrong values, which the coded channel prevents.
"""

from __future__ import annotations

from collections import defaultdict

from repro.network.node import NodeTable
from repro.protocols.base import BroadcastNode, BroadcastParams
from repro.types import NodeId, Role, Value


class CpaNode(BroadcastNode):
    """Certified-propagation node.

    ``relay_repeats`` lets the same logic run over an unreliable medium
    (repeat the single logical relay several times); the reactive protocol
    uses its own retransmission loop and keeps this at 1.
    """

    __slots__ = ("source_id", "endorsements", "_relay_repeats")

    def __init__(
        self,
        node_id: NodeId,
        role: Role,
        params: BroadcastParams,
        source_id: NodeId,
        relay_repeats: int = 1,
    ) -> None:
        self.source_id = source_id
        self._relay_repeats = relay_repeats
        self.endorsements: dict[Value, set[NodeId]] = defaultdict(set)
        super().__init__(node_id, role, params)

    def initial_source_sends(self) -> int:
        # In the collision-free / reliable-local-broadcast setting the
        # source speaks once; its neighbors accept directly.
        return self._relay_repeats

    def relay_count(self) -> int:
        return self._relay_repeats

    def on_value(self, sender: NodeId, value: Value) -> None:
        if self._decided:
            return
        if sender == self.source_id:
            self._decide(value)
            return
        self.endorsements[value].add(sender)
        if len(self.endorsements[value]) >= self.params.t + 1:
            self._decide(value)


def make_cpa_nodes(
    table: NodeTable, params: BroadcastParams, relay_repeats: int = 1
) -> dict[NodeId, CpaNode]:
    """One CPA node per honest grid node."""
    nodes: dict[NodeId, CpaNode] = {}
    for nid in table.good_ids:
        role = Role.SOURCE if nid == table.source else Role.GOOD
        nodes[nid] = CpaNode(
            nid, role, params, source_id=table.source, relay_repeats=relay_repeats
        )
    return nodes


def _build_cpa(ctx):
    """Registered "cpa" scenario assembly (certified propagation)."""
    from repro.analysis.budgets import homogeneous_assignment
    from repro.scenario.registries import ProtocolBuild, default_threshold_max_rounds

    spec, params = ctx.spec, ctx.params
    nodes = make_cpa_nodes(ctx.table, params)
    good_budget = spec.m if spec.m is not None else 1
    assignment = homogeneous_assignment(ctx.grid, ctx.source, good_budget)
    return ProtocolBuild(
        nodes=nodes,
        assignment=assignment,
        max_rounds=default_threshold_max_rounds(
            spec.grid, params.source_sends, max(assignment.maximum, 1)
        ),
    )


from repro.scenario.registries import ProtocolEntry, protocols as _protocols  # noqa: E402

_protocols.register(
    "cpa",
    ProtocolEntry(
        "cpa",
        _build_cpa,
        default_behavior="jam",
        description="certified propagation [13]/[3]: t+1 endorsements",
    ),
)
