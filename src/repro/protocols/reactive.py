"""B_reactive (paper §5): reliable broadcast with unknown ``mf``.

Composition of three pieces:

1. the two-level integrity code (:mod:`repro.coding`), which turns
   arbitrary jamming into *detectable* corruption except with probability
   ``~2^-L`` per attack;
2. a **reactive local broadcast** primitive: receivers NACK detected
   corruption; senders retransmit on any (even corrupted) NACK and stop
   after ``(2r+1)^2 - 1`` consecutive quiet message rounds;
3. certified propagation (Bhandari-Vaidya [3]) as the multi-hop layer,
   tolerating ``t < r(2r+1)/2``.

Simulation layering (see DESIGN.md): network-scale runs model each coded
local broadcast at message granularity. A jammed transmission delivers,
to every common neighbor of jammer and sender, either the distinguished
:data:`CORRUPT_MARKER` (verification failed — probability ``1 - p_forge``)
or an adversary-chosen *valid-looking* value with a spoofed sender
(probability ``p_forge = 1/(2^L - 1)``). The sub-bit physics behind those
two outcomes is simulated faithfully in :mod:`repro.coding.channel` and
exercised by experiment E6; ``p_forge`` is taken from the same formulas.
"""

from __future__ import annotations

import enum
import random
from collections import defaultdict, deque

from repro.coding.params import attack_success_probability, quiet_window, subbit_length
from repro.errors import ConfigurationError
from repro.network.grid import Grid
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.medium import Delivery
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.types import VFALSE, NodeId, Role, Value

#: Sentinel value for "the integrity code rejected this reception".
#: Receivers treat it as the paper's 'detected an error in the message'.
CORRUPT_MARKER: Value = -1

#: Sentinel payload of a (valid) NACK message.
NACK_PAYLOAD: Value = -2

#: The queued NACK entry. One shared immutable tuple: NACKs are all
#: identical, so queueing one must not allocate in the hot loop.
_NACK_MSG: tuple[Value, MessageKind] = (NACK_PAYLOAD, MessageKind.NACK)


class ReactivePhase(enum.Enum):
    IDLE = "idle"  # undecided; listening
    BROADCASTING = "broadcasting"  # decided; running reliable local bcast
    DONE = "done"  # quiet window elapsed; no more retransmissions


class ReactiveNode:
    """Honest node of B_reactive (drives on the slotted MAC).

    ``PEEK_STABILITY = "head"``: only the queue's head is stable across
    mid-round receives (they may append NACKs/data behind it), so the
    driver's predictable-round path engages only at
    ``batch_per_slot == 1`` — which is what reactive scenarios use.
    """

    PEEK_STABILITY = "head"

    __slots__ = (
        "node_id",
        "role",
        "source_id",
        "t",
        "quiet_limit",
        "vtrue",
        "endorsements",
        "phase",
        "_accepted",
        "_decide_round",
        "_current_round",
        "_queue",
        "_data_msg",
        "_quiet_rounds",
        "_failure_heard_this_round",
        "_retransmit_queued",
        "data_sent",
        "nacks_sent",
    )

    def __init__(
        self,
        node_id: NodeId,
        role: Role,
        source_id: NodeId,
        t: int,
        r: int,
        vtrue: Value,
        quiet_limit: int | None = None,
    ) -> None:
        if role is Role.BAD:
            raise ConfigurationError("ReactiveNode models honest behavior only")
        self.node_id = node_id
        self.role = role
        self.source_id = source_id
        self.t = t
        self.quiet_limit = quiet_window(r) if quiet_limit is None else quiet_limit
        self.vtrue = vtrue
        self.endorsements: dict[Value, set[NodeId]] = defaultdict(set)
        self.phase = ReactivePhase.IDLE
        self._accepted: Value | None = None
        self._decide_round: int | None = None
        self._current_round = 0
        self._queue: deque[tuple[Value, MessageKind]] = deque()
        # Cached (value, DATA) entry, built once at decide time so every
        # retransmission enqueues the same immutable tuple.
        self._data_msg: tuple[Value, MessageKind] | None = None
        self._quiet_rounds = 0
        self._failure_heard_this_round = False
        self._retransmit_queued = False
        self.data_sent = 0
        self.nacks_sent = 0
        if role is Role.SOURCE:
            self._decide(vtrue)

    # -- decision state (DecidingNode protocol) --------------------------------

    @property
    def decided(self) -> bool:
        return self._accepted is not None

    @property
    def accepted_value(self) -> Value | None:
        return self._accepted

    @property
    def decide_round(self) -> int | None:
        return self._decide_round

    def _decide(self, value: Value) -> None:
        if self.decided:
            return
        self._accepted = value
        self._decide_round = self._current_round
        self.phase = ReactivePhase.BROADCASTING
        self._quiet_rounds = 0
        self._data_msg = (value, MessageKind.DATA)
        self._queue_data()

    def _queue_data(self) -> None:
        if not self._retransmit_queued:
            self._queue.append(self._data_msg)
            self._retransmit_queued = True

    # -- driver interface (ProtocolNodeLike) ------------------------------------

    def has_pending(self) -> bool:
        return bool(self._queue)

    def peek_burst(self, limit: int) -> tuple[Value, MessageKind, int]:
        """The next send, without dequeueing (head-stable only; see class)."""
        if not self._queue or limit < 1:
            return (0, MessageKind.DATA, 0)
        value, kind = self._queue[0]
        return (value, kind, 1)

    def pop_send(self) -> tuple[Value, MessageKind]:
        if not self._queue:
            raise ConfigurationError(f"node {self.node_id} has nothing to send")
        value, kind = self._queue.popleft()
        if kind is MessageKind.DATA:
            self.data_sent += 1
            self._retransmit_queued = False
            self._quiet_rounds = 0  # the window counts from the last send
        else:
            self.nacks_sent += 1
        return value, kind

    def on_receive(self, sender: NodeId, value: Value, kind: MessageKind) -> None:
        if value == CORRUPT_MARKER:
            # Verification failed; indistinguishable whether the mangled
            # message round carried data or a NACK. Per §5 it counts as a
            # transmission-failure indication AND prompts our own NACK.
            self._failure_heard_this_round = True
            self._queue.append(_NACK_MSG)
            return
        if kind is MessageKind.NACK:
            # A well-formed NACK: failure indication only.
            self._failure_heard_this_round = True
            return
        # A data message that passed integrity verification.
        self._on_valid_data(sender, value)

    def _on_valid_data(self, sender: NodeId, value: Value) -> None:
        if self.decided:
            return
        if sender == self.source_id:
            self._decide(value)
            return
        self.endorsements[value].add(sender)
        if len(self.endorsements[value]) >= self.t + 1:
            self._decide(value)

    def on_round_end(self, round_index: int) -> None:
        self._current_round = round_index + 1
        if self.phase is ReactivePhase.BROADCASTING:
            if self._failure_heard_this_round:
                self._quiet_rounds = 0
                self._queue_data()  # retransmit on any failure indication
            else:
                self._quiet_rounds += 1
                if self._quiet_rounds >= self.quiet_limit and not self._retransmit_queued:
                    self.phase = ReactivePhase.DONE
        self._failure_heard_this_round = False


class CodedJammerAdversary:
    """Worst-case jammer against coded transmissions.

    Attacks honest transmissions greedily while budget lasts. Each attack
    costs the attacking bad node one message and produces, at every common
    neighbor of attacker and victim:

    - with probability ``p_forge``: a forged *valid* data message carrying
      ``forge_value`` that appears to come from the victim sender (the
      code was defeated — the ``2^-L`` event);
    - otherwise: a :data:`CORRUPT_MARKER` reception (tampering detected).

    A coded transmission cannot be silently canceled, which is exactly the
    property the sub-bit layer buys (see :mod:`repro.coding.channel`).

    Driver fast-path capabilities (see
    :class:`~repro.radio.mac.AdversaryLike`): purely reactive
    (``spontaneous = False`` — ``on_slot`` with no honest traffic is an
    effect-free ``[]``) and ``observe_stateless`` (``observe`` is a
    no-op and ``on_slot`` reads only its arguments, the ledger, and its
    own RNG).
    """

    spontaneous = False
    observe_stateless = True

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        ledger: BudgetLedger,
        rng: random.Random,
        *,
        p_forge: float,
        forge_value: Value = VFALSE,
        attack_nacks: bool = True,
        attackers_per_victim: int = 1,
    ) -> None:
        if not 0.0 <= p_forge <= 1.0:
            raise ConfigurationError(f"p_forge must be a probability, got {p_forge}")
        self.grid = grid
        self.table = table
        self.ledger = ledger
        self.rng = rng
        self.p_forge = p_forge
        self.forge_value = forge_value
        self.attack_nacks = attack_nacks
        self.attackers_per_victim = attackers_per_victim
        self.attacks = 0
        self.successful_forgeries = 0
        # Bad nodes able to interfere with a sender: within 2r (share a receiver).
        self._jammers_near: dict[NodeId, list[NodeId]] = {}

    @classmethod
    def with_recommended_code(
        cls,
        grid: Grid,
        table: NodeTable,
        ledger: BudgetLedger,
        rng: random.Random,
        *,
        t: int,
        mmax: int,
        **kwargs,
    ) -> "CodedJammerAdversary":
        """Use ``p_forge`` implied by ``L = 2log n + log t + log mmax``."""
        length = subbit_length(grid.n, max(t, 1), mmax)
        return cls(
            grid, table, ledger, rng,
            p_forge=attack_success_probability(length), **kwargs,
        )

    def _jammers_for(self, sender: NodeId) -> list[NodeId]:
        cached = self._jammers_near.get(sender)
        if cached is None:
            reach = 2 * self.grid.r
            # Farthest-first: a jammer beyond distance r is inaudible to
            # the victim sender itself, so the sender gets no same-round
            # hint that its transmission was mangled — it must rely on
            # NACKs, which is the worst case for the quiet-window logic.
            cached = sorted(
                (
                    bad
                    for bad in self.table.bad_ids
                    if self.grid.distance(bad, sender) <= reach
                ),
                key=lambda bad: (-self.grid.distance(bad, sender), bad),
            )
            self._jammers_near[sender] = cached
        return cached

    # -- AdversaryLike -----------------------------------------------------------

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        actions: list[BadTransmission] = []
        used_this_slot: set[NodeId] = set()  # a node transmits once per slot
        for victim in honest:
            if victim.kind is MessageKind.NACK and not self.attack_nacks:
                continue
            used = 0
            for jammer in self._jammers_for(victim.sender):
                if used >= self.attackers_per_victim:
                    break
                if jammer in used_this_slot or not self.ledger.can_send(jammer):
                    continue
                used_this_slot.add(jammer)
                actions.append(self._attack(jammer, victim))
                used += 1
        return actions

    def _attack(self, jammer: NodeId, victim: Transmission) -> BadTransmission:
        self.attacks += 1
        if self.rng.random() < self.p_forge:
            self.successful_forgeries += 1
            return BadTransmission(
                sender=jammer,
                value=self.forge_value,
                kind=MessageKind.DATA,
                spoof_sender=victim.sender,
            )
        return BadTransmission(
            sender=jammer,
            value=CORRUPT_MARKER,
            kind=victim.kind,
            spoof_sender=victim.sender,
        )

    def observe(self, deliveries: list[Delivery]) -> None:  # omniscient, stateless
        return

    def has_pending(self) -> bool:
        return False  # purely reactive


def make_reactive_nodes(
    table: NodeTable,
    t: int,
    r: int,
    vtrue: Value,
    quiet_limit: int | None = None,
) -> dict[NodeId, ReactiveNode]:
    """One B_reactive node per honest grid node.

    ``quiet_limit`` overrides the paper's ``(2r+1)^2 - 1`` NACK-free
    window (ablation E9c only).
    """
    nodes: dict[NodeId, ReactiveNode] = {}
    for nid in table.good_ids:
        role = Role.SOURCE if nid == table.source else Role.GOOD
        nodes[nid] = ReactiveNode(
            nid, role, table.source, t, r, vtrue, quiet_limit=quiet_limit
        )
    return nodes


def _build_reactive(ctx):
    """Registered "reactive" scenario assembly (§5, unknown mf).

    The source is unbounded (base station) and good nodes carry no ledger
    budget at all — B_reactive's cost bound comes from the protocol's own
    retransmission discipline, not from the ledger.
    ``protocol_params["quiet_limit"]`` overrides the paper's
    ``(2r+1)^2 - 1`` NACK-free window (ablation E9c only).
    """
    from repro.scenario.registries import ProtocolBuild

    spec = ctx.spec
    nodes = make_reactive_nodes(
        ctx.table,
        spec.t,
        spec.grid.r,
        spec.vtrue,
        quiet_limit=spec.protocol_params.get("quiet_limit"),
    )
    # Every local broadcast waits out a (2r+1)^2-1 quiet window; attacks
    # prolong it by at most one window per bad message.
    window = (2 * spec.grid.r + 1) ** 2
    hops = (max(spec.grid.width, spec.grid.height) // 2) // spec.grid.r + 2
    attack_budget = len(ctx.table.bad_ids) * spec.mf
    return ProtocolBuild(
        nodes=nodes,
        assignment=None,
        ledger_overrides={ctx.source: None},
        max_rounds=hops * window + attack_budget * window + 50,
    )


def _build_coded_jammer(ctx):
    """Registered "coded" behavior: the coded-channel jammer of §5.

    ``behavior_params``: ``p_forge`` forces a (large) forgery probability
    so tests can exercise the failure path deterministically;
    ``attack_nacks`` (default True) lets the jammer also attack NACKs.
    The recommended-code path needs ``spec.mmax`` (the loose budget bound
    that sets the integrity-code length).
    """
    params = ctx.behavior_params
    rng = ctx.rngs.stream("reactive-adversary")
    attack_nacks = params.get("attack_nacks", True)
    p_forge = params.get("p_forge")
    if p_forge is not None:
        return CodedJammerAdversary(
            ctx.grid,
            ctx.table,
            ctx.ledger,
            rng,
            p_forge=p_forge,
            attack_nacks=attack_nacks,
        )
    if ctx.spec.mmax is None:
        raise ConfigurationError(
            "behavior 'coded' needs spec.mmax (the loose bound on mf that "
            "sets the integrity-code length) unless behavior_params "
            "pins 'p_forge'"
        )
    return CodedJammerAdversary.with_recommended_code(
        ctx.grid,
        ctx.table,
        ctx.ledger,
        rng,
        t=ctx.spec.t,
        mmax=ctx.spec.mmax,
        attack_nacks=attack_nacks,
    )


from repro.scenario.registries import (  # noqa: E402
    BehaviorEntry,
    ProtocolEntry,
    behaviors as _behaviors,
    protocols as _protocols,
)

_protocols.register(
    "reactive",
    ProtocolEntry(
        "reactive",
        _build_reactive,
        default_behavior="coded",
        description="B_reactive (§5): integrity code + NACK loop + CPA",
    ),
)
_behaviors.register(
    "coded",
    BehaviorEntry(
        "coded",
        _build_coded_jammer,
        "coded-channel jammer (forgeries succeed with probability ~2^-L)",
    ),
)
