"""Protocol B (paper §3.1) — homogeneous budgets, ``m >= 2*m0``.

1. The source locally broadcasts the message ``2*t*mf + 1`` times.
2. Every other good node, upon *accepting* a value, relays it
   ``m' = ceil((2tmf+1) / ceil((r(2r+1)-t)/2))`` times. A node accepts a
   value once received at least ``t*mf + 1`` times.

The key idea (vs the Koo et al. baseline) is *concerted action*: a
receiver pools the relays of the ``>= ceil((r(2r+1)-t)/2)`` good decided
nodes in a half-neighborhood, so each of them only needs ``~2*m0``
messages rather than individually out-shouting all possible collisions
with ``2tmf+1``.
"""

from __future__ import annotations

from repro.analysis.bounds import m0, protocol_b_relay_count
from repro.network.node import NodeTable
from repro.protocols.base import BroadcastParams, ThresholdNode
from repro.types import NodeId, Role


def protocol_b_required_budget(r: int, t: int, mf: int) -> int:
    """Theorem 2's sufficient homogeneous budget: ``2 * m0``."""
    return 2 * m0(r, t, mf)


def make_protocol_b_nodes(
    table: NodeTable, params: BroadcastParams
) -> dict[NodeId, ThresholdNode]:
    """One protocol-B node per honest grid node."""
    relay = protocol_b_relay_count(params.r, params.t, params.mf)
    nodes: dict[NodeId, ThresholdNode] = {}
    for nid in table.good_ids:
        role = Role.SOURCE if nid == table.source else Role.GOOD
        nodes[nid] = ThresholdNode(nid, role, params, relay_count=relay)
    return nodes


def _build_protocol_b(ctx):
    """Registered "b" scenario assembly.

    ``protocol_params["relay_override"]`` replaces the relay count —
    used by ablation E9a to sweep the relay knob independently of the
    acceptance rule.
    """
    from repro.analysis.budgets import homogeneous_assignment
    from repro.scenario.registries import ProtocolBuild, default_threshold_max_rounds

    spec, params = ctx.spec, ctx.params
    relay_override = spec.protocol_params.get("relay_override")
    if relay_override is not None:
        nodes = {
            nid: ThresholdNode(
                nid,
                Role.SOURCE if nid == ctx.source else Role.GOOD,
                params,
                relay_count=relay_override,
            )
            for nid in ctx.table.good_ids
        }
    else:
        nodes = make_protocol_b_nodes(ctx.table, params)
    good_budget = (
        spec.m
        if spec.m is not None
        else protocol_b_required_budget(spec.grid.r, spec.t, spec.mf)
    )
    assignment = homogeneous_assignment(ctx.grid, ctx.source, good_budget)
    return ProtocolBuild(
        nodes=nodes,
        assignment=assignment,
        max_rounds=default_threshold_max_rounds(
            spec.grid, params.source_sends, max(assignment.maximum, 1)
        ),
    )


def _vector_protocol_b(ctx):
    """Array program for the whole-grid kernel — same formulas as
    :func:`_build_protocol_b` (the triple-differential suite pins the
    two against each other, so any drift fails loudly)."""
    from repro.protocols import vectorized

    spec, params = ctx.spec, ctx.params
    relay = spec.protocol_params.get("relay_override")
    if relay is None:
        relay = protocol_b_relay_count(params.r, params.t, params.mf)
    good_budget = (
        spec.m
        if spec.m is not None
        else protocol_b_required_budget(spec.grid.r, spec.t, spec.mf)
    )
    return vectorized.homogeneous_program(ctx, relay=relay, good_budget=good_budget)


from repro.scenario.registries import ProtocolEntry, protocols as _protocols  # noqa: E402

_protocols.register(
    "b",
    ProtocolEntry(
        "b",
        _build_protocol_b,
        default_behavior="jam",
        description="protocol B (§3): homogeneous budgets, pooled relays",
        vector_build=_vector_protocol_b,
    ),
)
