"""Baseline scheme suggested by Koo et al. [14] (paper §1.3, §3).

Every good node individually simulates a collision-free transmission by
repeating its message ``2*t*mf + 1`` times, so that even if all ``t`` bad
neighbors of a receiver spend their whole budget corrupting its copies,
correct copies still outnumber wrong ones. Acceptance is the same
``t*mf + 1`` threshold.

This works but costs each node ``2tmf+1`` messages —
``~(r(2r+1)-t)/2`` times protocol B's budget; the paper uses it as the
message-efficiency baseline (experiment E4).
"""

from __future__ import annotations

from repro.analysis.bounds import koo_budget
from repro.network.node import NodeTable
from repro.protocols.base import BroadcastParams, ThresholdNode
from repro.types import NodeId, Role


def koo_required_budget(t: int, mf: int) -> int:
    """Per-node budget the baseline needs: ``2*t*mf + 1``."""
    return koo_budget(t, mf)


def make_koo_nodes(
    table: NodeTable, params: BroadcastParams
) -> dict[NodeId, ThresholdNode]:
    """One baseline node per honest grid node."""
    relay = koo_budget(params.t, params.mf)
    nodes: dict[NodeId, ThresholdNode] = {}
    for nid in table.good_ids:
        role = Role.SOURCE if nid == table.source else Role.GOOD
        nodes[nid] = ThresholdNode(nid, role, params, relay_count=relay)
    return nodes


def _build_koo(ctx):
    """Registered "koo" scenario assembly."""
    from repro.analysis.budgets import homogeneous_assignment
    from repro.scenario.registries import ProtocolBuild, default_threshold_max_rounds

    spec, params = ctx.spec, ctx.params
    nodes = make_koo_nodes(ctx.table, params)
    good_budget = spec.m if spec.m is not None else params.source_sends
    assignment = homogeneous_assignment(ctx.grid, ctx.source, good_budget)
    return ProtocolBuild(
        nodes=nodes,
        assignment=assignment,
        max_rounds=default_threshold_max_rounds(
            spec.grid, params.source_sends, max(assignment.maximum, 1)
        ),
    )


def _vector_koo(ctx):
    """Array program for the whole-grid kernel (same formulas as
    :func:`_build_koo`)."""
    from repro.protocols import vectorized

    spec, params = ctx.spec, ctx.params
    good_budget = spec.m if spec.m is not None else params.source_sends
    return vectorized.homogeneous_program(
        ctx, relay=koo_budget(params.t, params.mf), good_budget=good_budget
    )


from repro.scenario.registries import ProtocolEntry, protocols as _protocols  # noqa: E402

_protocols.register(
    "koo",
    ProtocolEntry(
        "koo",
        _build_koo,
        default_behavior="jam",
        description="Koo et al. repetition baseline [14]: 2tmf+1 per node",
        vector_build=_vector_koo,
    ),
)
