"""Shared protocol-node machinery.

All protocols in the paper share a simple node shape: receive values,
decide once (commit to a value), then relay the accepted value a
protocol-specific number of times. :class:`BroadcastNode` implements the
driver-facing plumbing (pending-send queue, round tracking, decision
recording) and :class:`ThresholdNode` the ``t*mf + 1``-copies acceptance
rule shared by protocol B, B_heter, and the Koo baseline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass

from repro.analysis.bounds import accept_threshold, source_send_count, validate_t
from repro.errors import ConfigurationError
from repro.radio.messages import MessageKind
from repro.types import VTRUE, NodeId, Role, Value


@dataclass(frozen=True)
class BroadcastParams:
    """Scenario-wide protocol parameters (paper §1.2)."""

    r: int
    t: int
    mf: int
    vtrue: Value = VTRUE

    def __post_init__(self) -> None:
        validate_t(self.r, self.t)
        if self.mf < 0:
            raise ConfigurationError(f"mf must be non-negative, got {self.mf}")

    @property
    def threshold(self) -> int:
        """Copies needed to accept: ``t*mf + 1``."""
        return accept_threshold(self.t, self.mf)

    @property
    def source_sends(self) -> int:
        """Local broadcasts performed by the source: ``2*t*mf + 1``."""
        return source_send_count(self.t, self.mf)


class BroadcastNode(ABC):
    """Base class for honest protocol nodes driven by the MAC round loop.

    Two class-level capability flags feed the driver's batched fast path
    (:mod:`repro.radio.mac`):

    - ``PEEK_STABILITY = "all"`` promises that :meth:`peek_burst` exactly
      predicts the next ``pop_send`` results for a whole slot burst, and
      that no ``on_receive`` between the peek and the pops can change
      them. True here because the pending message/count only change at
      decide time, and a node with pending sends has already decided.
    - ``round_end_noop = True`` declares that :meth:`on_round_end` does
      nothing but advance the round counter, so the driver may skip the
      per-node round-end sweep whenever a flat engine stamps rounds at
      decide time instead.
    """

    PEEK_STABILITY = "all"
    round_end_noop = True

    __slots__ = (
        "node_id",
        "role",
        "params",
        "_decided",
        "_accepted",
        "_decide_round",
        "_pending_msg",
        "_pending_count",
        "_current_round",
        "received_total",
    )

    def __init__(self, node_id: NodeId, role: Role, params: BroadcastParams) -> None:
        if role is Role.BAD:
            raise ConfigurationError("protocol nodes model honest behavior only")
        self.node_id = node_id
        self.role = role
        self.params = params
        self._decided = False
        self._accepted: Value | None = None
        self._decide_round: int | None = None
        # The (value, kind) pair handed to the driver. Rebuilt only when
        # the pending value changes, so steady-state sends allocate
        # nothing (tuples are immutable and safe to hand out repeatedly).
        self._pending_msg: tuple[Value, MessageKind] = (
            params.vtrue,
            MessageKind.DATA,
        )
        self._pending_count = 0
        self._current_round = 0
        self.received_total = 0
        if role is Role.SOURCE:
            self._decide(params.vtrue)
            self._pending_count = self.initial_source_sends()

    # -- protocol-specific policy ------------------------------------------

    def initial_source_sends(self) -> int:
        """How many local broadcasts the source performs (paper: 2tmf+1)."""
        return self.params.source_sends

    @abstractmethod
    def relay_count(self) -> int:
        """How many times a non-source node relays its accepted value."""

    @abstractmethod
    def on_value(self, sender: NodeId, value: Value) -> None:
        """Protocol-specific handling of a received DATA value."""

    # -- decision ----------------------------------------------------------

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def accepted_value(self) -> Value | None:
        return self._accepted

    @property
    def decide_round(self) -> int | None:
        return self._decide_round

    def _decide(self, value: Value) -> None:
        """Commit to a value (once) and queue the protocol's relays."""
        if self._decided:
            return
        self._decided = True
        self._accepted = value
        self._decide_round = self._current_round
        if self.role is not Role.SOURCE:
            self._pending_msg = (value, MessageKind.DATA)
            self._pending_count = self.relay_count()

    # -- driver interface (ProtocolNodeLike) --------------------------------

    def has_pending(self) -> bool:
        return self._pending_count > 0

    def pop_send(self) -> tuple[Value, MessageKind]:
        if self._pending_count <= 0:
            raise ConfigurationError(f"node {self.node_id} has nothing to send")
        self._pending_count -= 1
        return self._pending_msg

    def peek_burst(self, limit: int) -> tuple[Value, MessageKind, int]:
        """What up to ``limit`` consecutive ``pop_send`` calls would yield.

        Returns ``(value, kind, count)``; the driver's predictable-round
        path uses it to sign a whole round's traffic without mutating
        node state (see ``PEEK_STABILITY``).
        """
        value, kind = self._pending_msg
        count = self._pending_count
        return (value, kind, count if count < limit else limit)

    def on_receive(self, sender: NodeId, value: Value, kind: MessageKind) -> None:
        if kind is not MessageKind.DATA:
            return
        self.received_total += 1
        self.on_value(sender, value)

    def on_round_end(self, round_index: int) -> None:
        self._current_round = round_index + 1


class ThresholdNode(BroadcastNode):
    """The ``t*mf + 1``-copies acceptance rule (§3.1 step 2).

    A node accepts a value once it has received it at least ``t*mf + 1``
    times; by Lemma 1 this can only ever fire for ``Vtrue``, because the
    ``t`` bad neighbors can plant at most ``t * mf`` copies of any wrong
    value. The relay count is injected per protocol (and per node, for the
    heterogeneous configuration).
    """

    __slots__ = ("_relay_count", "_threshold", "value_counts")

    def __init__(
        self,
        node_id: NodeId,
        role: Role,
        params: BroadcastParams,
        relay_count: int,
    ) -> None:
        if relay_count < 0:
            raise ConfigurationError(f"negative relay count: {relay_count}")
        self._relay_count = relay_count
        # Cached once: the t*mf+1 threshold is consulted on every receive,
        # and the property recomputes it from scratch.
        self._threshold = params.threshold
        self.value_counts: Counter[Value] = Counter()
        super().__init__(node_id, role, params)

    def relay_count(self) -> int:
        return self._relay_count

    def on_value(self, sender: NodeId, value: Value) -> None:
        self.value_counts[value] += 1
        if not self._decided and self.value_counts[value] >= self._threshold:
            self._decide(value)

    def count_of(self, value: Value) -> int:
        """How many copies of ``value`` this node has received (for reports)."""
        return self.value_counts[value]
