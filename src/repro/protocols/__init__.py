"""Broadcast protocols: the paper's contributions plus baselines."""

from repro.protocols.base import BroadcastParams, BroadcastNode, ThresholdNode
from repro.protocols.cpa import CpaNode, make_cpa_nodes
from repro.protocols.koo_baseline import koo_required_budget, make_koo_nodes
from repro.protocols.protocol_b import make_protocol_b_nodes, protocol_b_required_budget
from repro.protocols.protocol_heter import make_protocol_heter_nodes
from repro.protocols.reactive import (
    CORRUPT_MARKER,
    CodedJammerAdversary,
    ReactiveNode,
    make_reactive_nodes,
)

__all__ = [
    "BroadcastParams",
    "BroadcastNode",
    "ThresholdNode",
    "CpaNode",
    "make_cpa_nodes",
    "koo_required_budget",
    "make_koo_nodes",
    "make_protocol_b_nodes",
    "protocol_b_required_budget",
    "make_protocol_heter_nodes",
    "CORRUPT_MARKER",
    "CodedJammerAdversary",
    "ReactiveNode",
    "make_reactive_nodes",
]
