"""NumPy whole-grid round kernel for the threshold protocols.

The flat engines (:mod:`repro.protocols.flat`) removed per-delivery
dispatch but still step Python per sender and per slot. This module
removes the per-node loop entirely: one :class:`VectorThresholdKernel`
round is a handful of array operations over the grid's CSR neighbor
table — gather each sender's neighbor segment, ``bincount`` the copies
per receiver, compare against the ``t*mf + 1`` threshold, and flip the
decided bitmap — which is what lets a 10^6-node torus broadcast finish
in seconds (``python -m repro bench scenario`` tracks it).

Engagement rules (:func:`try_vector_run`)
-----------------------------------------

NumPy stays an *optional accelerator*: the kernel only takes a run it
can reproduce bit-for-bit, and everything else falls through to the
flat/reference path untouched. A run is eligible when

- NumPy is importable and :data:`DEFAULT_VECTOR` is on, alongside the
  fast-driver/flat-engine flags (reference mode must stay canonical);
- the protocol registered a ``vector_build`` hook (the threshold family:
  ``b``, ``koo``, ``heter`` — CPA's endorsement sets are slot-order
  dependent, so it keeps the flat engine);
- no tracing and no ``adversary_override`` (both are observation hooks
  into per-slot execution, which the kernel does not perform);
- the adversary can never transmit (``mf == 0`` or no bad nodes) *and*
  skipping its ``observe`` is unobservable (``observe_stateless``,
  ``observe_inert_when_broke``, or an un-overridden ``observe``).

Under those rules every message in the run carries ``vtrue`` (nobody
else can inject values), so within-round slot order is irrelevant:
per-receiver copy counts commute, and a threshold crossing in round k
enables relays starting in round k+1 exactly like the slotted driver's
bucket construction. The triple-differential suite
(``tests/test_scenario_fastpath.py``, ``repro.fuzz``) pins kernel runs
against both the flat and reference engines, node state included.

Reports come back with a :class:`LazyNodeMap`: per-node
:class:`~repro.protocols.base.ThresholdNode` views materialized from the
kernel's arrays on first access, so a million-node run never builds a
million node objects just to be thrown away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

try:  # optional accelerator; kernel paths are gated on availability
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from repro.errors import ConfigurationError
from repro.protocols.base import BroadcastParams, ThresholdNode
from repro.radio.budget import BudgetLedger
from repro.radio.messages import MessageKind
from repro.scenario.registries import default_threshold_max_rounds
from repro.types import NodeId, Role, Value

#: Engine seam flag, mirroring ``mac.DEFAULT_FAST_DRIVER`` /
#: ``flat.DEFAULT_FLAT``: the differential suites flip it to force the
#: kernel on or off for one run.
DEFAULT_VECTOR = True


def available() -> bool:
    """Whether the NumPy backend can run at all in this process."""
    return np is not None


@dataclass(frozen=True)
class ThresholdProgram:
    """A threshold protocol compiled to arrays for the kernel.

    ``relay``/``honest_budget`` are per-node int64 arrays carrying what
    the protocol's ``build`` would have handed each
    :class:`~repro.protocols.base.ThresholdNode` and the ledger; the
    kernel applies source/bad overrides itself. ``assignment`` rides
    along for the report and for rebuilding the exact ledger.
    """

    relay: Any
    honest_budget: Any
    assignment: Any
    max_rounds: int


def homogeneous_program(ctx: Any, *, relay: int, good_budget: int) -> ThresholdProgram | None:
    """Program for a uniform-relay, uniform-budget threshold protocol."""
    if np is None:
        return None
    if relay < 0:
        # The per-node build rejects this in the ThresholdNode
        # constructor; fail identically before the kernel engages.
        raise ConfigurationError(f"negative relay count: {relay}")
    from repro.analysis.budgets import homogeneous_assignment

    n = ctx.grid.n
    assignment = homogeneous_assignment(ctx.grid, ctx.source, good_budget)
    return ThresholdProgram(
        relay=np.full(n, relay, dtype=np.int64),
        honest_budget=np.full(n, good_budget, dtype=np.int64),
        assignment=assignment,
        # assignment.maximum == good_budget for a homogeneous assignment;
        # using the scalar avoids its O(n) scan.
        max_rounds=default_threshold_max_rounds(
            ctx.spec.grid, ctx.params.source_sends, max(good_budget, 1)
        ),
    )


def assignment_program(ctx: Any, assignment: Any) -> ThresholdProgram | None:
    """Program for per-node relay == per-node budget (protocol B_heter)."""
    if np is None:
        return None
    budgets = np.asarray(assignment.budgets, dtype=np.int64)
    if budgets.size and int(budgets.min()) < 0:
        raise ConfigurationError(f"negative relay count: {int(budgets.min())}")
    return ThresholdProgram(
        relay=budgets,
        honest_budget=budgets,
        assignment=assignment,
        max_rounds=default_threshold_max_rounds(
            ctx.spec.grid, ctx.params.source_sends, max(assignment.maximum, 1)
        ),
    )


def _ledger_for(assignment: Any, table: Any, mf: int) -> BudgetLedger:
    """The exact ledger the normal path builds, without the dict pass.

    The scenario runner folds ``assignment.overrides()`` (every node's
    budget, source unbounded) plus per-bad ``mf`` caps into a
    :class:`BudgetLedger`; at 10^6 nodes that dict costs more than the
    run, so the resolved budget list is written directly.
    """
    ledger = BudgetLedger(len(assignment.budgets), default_budget=None)
    budget: list[int | None] = list(assignment.budgets)
    budget[assignment.source] = None  # the source is never budget-limited
    for bad in table.bad_ids:
        budget[bad] = mf
    ledger._budget = budget
    return ledger


def _observe_safe(adversary: Any) -> bool:
    """True when skipping ``observe`` is unobservable for a broke adversary."""
    cls = type(adversary)
    if getattr(cls, "observe_stateless", False):
        return True
    if getattr(cls, "observe_inert_when_broke", False):
        return True
    from repro.adversary.base import Adversary

    return getattr(cls, "observe", None) is Adversary.observe


class VectorThresholdKernel:
    """Whole-grid array execution of the threshold broadcast round loop.

    State is one int64/bool array per node attribute (pending sends,
    remaining budget, receive counts per value, decided bitmap). Each
    round:

    1. ``active = pending > 0 and budget > 0`` — the senders;
    2. every sender emits ``k = min(pending, budget, batch_per_slot)``
       copies (slot order within the round is irrelevant: only honest
       ``vtrue`` traffic exists under the eligibility rules);
    3. one CSR gather + ``bincount`` accumulates copies per receiver;
    4. undecided receivers crossing ``t*mf + 1`` decide this round and
       arm their relay quota — visible to step 1 of the *next* round,
       exactly like the slotted driver's start-of-round buckets.

    Multiple concurrent values are handled per-value for defense in
    depth, but under the eligibility rules only ``vtrue`` ever
    circulates (nobody can inject anything else), so the per-value loop
    runs exactly once per round.
    """

    def __init__(
        self,
        grid: Any,
        table: Any,
        params: BroadcastParams,
        source: NodeId,
        program: ThresholdProgram,
        adversary: Any,
        *,
        batch_per_slot: int,
    ) -> None:
        n = grid.n
        self.grid = grid
        self.table = table
        self.params = params
        self.source = source
        self.adversary = adversary
        self.n = n
        self.batch = batch_per_slot
        self.threshold = params.threshold
        starts, ids = grid.csr_arrays()
        self.indptr = starts
        self.indices = ids
        self.deg = starts[1:] - starts[:-1]
        honest = np.ones(n, dtype=bool)
        bad_ids = table.bad_ids
        if bad_ids:
            honest[np.asarray(bad_ids, dtype=np.int64)] = False
        self.honest = honest
        self.has_bad = bool(bad_ids)
        budget = program.honest_budget.copy()
        budget[source] = 1 << 62  # effectively unbounded (ledger: None)
        if bad_ids:
            budget[~honest] = 0  # bad nodes never transmit in the kernel
        self.budget = budget
        self.relay = program.relay
        self.pending = np.zeros(n, dtype=np.int64)
        self.decided = np.zeros(n, dtype=bool)
        self.decide_round = np.full(n, -1, dtype=np.int64)
        self.received = np.zeros(n, dtype=np.int64)
        self.sent = np.zeros(n, dtype=np.int64)
        # Value interning: counts live in one array per distinct value;
        # accepted_idx indexes _values where decided.
        self._values: list[Value] = [params.vtrue]
        self._counts: dict[int, Any] = {}
        self.accepted_idx = np.zeros(n, dtype=np.int64)
        # The source decides at construction time, round 0, and owes the
        # paper's 2*t*mf + 1 source broadcasts.
        self.decided[source] = True
        self.decide_round[source] = 0
        self.pending[source] = params.source_sends
        self._data_total = 0
        # Sparse frontier: the ids with pending > 0 and budget > 0,
        # maintained incrementally so each round costs O(frontier * deg)
        # instead of O(n). Invariant: pending only becomes positive at
        # construction (the source) or when a node decides, and budget
        # never increases, so membership can only be gained by newly
        # decided nodes and lost by exhaustion.
        self._active = np.nonzero((self.pending > 0) & (self.budget > 0))[0]
        self._newly_armed: list[Any] = []

    # -- round execution -----------------------------------------------------

    def run(self, max_rounds: int, stats: Any) -> Any:
        """Replicates ``RoundDriver.run`` termination exactly."""
        adversary = self.adversary
        for round_index in range(max_rounds):
            transmitted = self._step(round_index, stats)
            stats.rounds = round_index + 1
            if not transmitted:
                stats.idle_rounds += 1
            honest_active = self._active.size > 0
            if not honest_active and not adversary.has_pending():
                stats.quiescent = True
                break
            if not transmitted and not honest_active:
                stats.quiescent = True
                break
        stats.per_kind_honest[MessageKind.DATA] += self._data_total
        return stats

    def _step(self, round_index: int, stats: Any) -> bool:
        senders = self._active
        if senders.size == 0:
            return False
        k = np.minimum(self.pending[senders], self.batch)
        np.minimum(k, self.budget[senders], out=k)
        self.pending[senders] -= k
        self.budget[senders] -= k
        self.sent[senders] += k
        total_sent = int(k.sum())
        stats.honest_transmissions += total_sent
        self._data_total += total_sent
        # The driver counts every receiver of a delivery batch — bad
        # ones included — so deliveries is tallied before masking.
        stats.deliveries += int((k * self.deg[senders]).sum())
        sender_values = self.accepted_idx[senders]
        self._newly_armed = []
        for value_index in np.unique(sender_values):
            sel = sender_values == value_index
            self._scatter(int(value_index), senders[sel], k[sel], round_index)
        # Next round's frontier: this round's survivors plus nodes armed
        # by a decision (always disjoint — senders are already decided).
        still = (self.pending[senders] > 0) & (self.budget[senders] > 0)
        parts = [senders[still], *self._newly_armed]
        self._active = np.concatenate(parts) if len(parts) > 1 else parts[0]
        return True

    def _scatter(self, value_index: int, senders: Any, k: Any, round_index: int) -> None:
        """Deliver ``k[i]`` copies of one value from each ``senders[i]``."""
        lens = self.deg[senders]
        total = int(lens.sum())
        if total == 0:
            return  # degenerate shapes: a 1x1 bounded grid has no edges
        ends = np.cumsum(lens)
        receivers = self.indices[
            np.repeat(self.indptr[senders], lens)
            + np.arange(total, dtype=np.int64)
            - np.repeat(ends - lens, lens)
        ]
        weights = np.repeat(k, lens)
        if self.has_bad:
            keep = self.honest[receivers]
            receivers = receivers[keep]
            weights = weights[keep]
            if receivers.size == 0:
                return
        # Collapse to (unique receiver, copies delivered) pairs so every
        # update below is O(frontier), never O(n). float64 bincount is
        # exact here (counts stay far below 2^53).
        touched, inverse = np.unique(receivers, return_inverse=True)
        add = np.bincount(inverse, weights=weights).astype(np.int64)
        self.received[touched] += add
        counts = self._counts.get(value_index)
        if counts is None:
            counts = self._counts[value_index] = np.zeros(self.n, dtype=np.int64)
        before = counts[touched]
        crossing = (
            (~self.decided[touched])
            & (before < self.threshold)
            & (before + add >= self.threshold)
        )
        counts[touched] = before + add
        newly = touched[crossing]
        if newly.size:
            self.decided[newly] = True
            self.decide_round[newly] = round_index
            self.accepted_idx[newly] = value_index
            # Relays become visible to the next round's active mask —
            # the slotted driver builds its sender buckets at round
            # start, so a decision in round k first transmits in k+1.
            self.pending[newly] = self.relay[newly]
            armed = newly[(self.pending[newly] > 0) & (self.budget[newly] > 0)]
            if armed.size:
                self._newly_armed.append(armed)

    # -- report assembly -----------------------------------------------------

    def finalize_ledger(self, ledger: BudgetLedger) -> None:
        """Write the kernel's per-node send counts into the live ledger."""
        ledger._sent[:] = self.sent.tolist()

    def outcome(self, stats: Any, vtrue: Value) -> Any:
        """Twin of :func:`repro.analysis.verify.collect_outcome`."""
        from repro.analysis.metrics import BroadcastOutcome

        mask = self.honest.copy()
        mask[self.source] = False
        total_good = int(mask.sum())
        decided_mask = mask & self.decided
        decided_good = int(decided_mask.sum())
        correct_good = 0
        for idx, value in enumerate(self._values):
            if value == vtrue:
                correct_good += int((decided_mask & (self.accepted_idx == idx)).sum())
        return BroadcastOutcome(
            total_good=total_good,
            decided_good=decided_good,
            correct_good=correct_good,
            wrong_good=decided_good - correct_good,
            rounds=stats.rounds,
            quiescent=stats.quiescent,
        )

    def costs(self) -> Any:
        """Twin of :func:`repro.analysis.verify.collect_costs`."""
        from repro.analysis.metrics import MessageCosts

        mask = self.honest.copy()
        mask[self.source] = False
        good_sent = self.sent[mask]
        good_total = int(good_sent.sum())
        size = int(good_sent.size)
        return MessageCosts(
            good_total=good_total,
            good_max=int(good_sent.max()) if size else 0,
            good_avg=good_total / size if size else 0.0,
            source_sent=int(self.sent[self.source]),
            bad_total=0,  # eligibility: the adversary never transmits
        )


class LazyNodeMap(Mapping):
    """``report.nodes`` for kernel runs: ThresholdNode views on demand.

    Mapping-identical to the dict the per-node path builds (same keys,
    ascending honest ids; same node state, pinned by the differential
    suites) — but a node object only exists once something looks at it.
    """

    def __init__(self, kernel: VectorThresholdKernel, params: BroadcastParams) -> None:
        self._kernel = kernel
        self._params = params
        self._cache: dict[NodeId, ThresholdNode] = {}

    def __getitem__(self, node_id: NodeId) -> ThresholdNode:
        node = self._cache.get(node_id)
        if node is None:
            node = self._cache[node_id] = self._materialize(node_id)
        return node

    def __iter__(self) -> Iterator[NodeId]:
        kernel = self._kernel
        return iter(np.nonzero(kernel.honest)[0].tolist())

    def __len__(self) -> int:
        return int(self._kernel.honest.sum())

    def _materialize(self, node_id: NodeId) -> ThresholdNode:
        kernel = self._kernel
        try:
            # Negative ids would hit numpy's wraparound indexing; the
            # dict the per-node path builds raises KeyError for them.
            if node_id < 0 or not kernel.honest[node_id]:
                raise KeyError(node_id)
        except (IndexError, TypeError):
            raise KeyError(node_id) from None
        role = Role.SOURCE if node_id == kernel.source else Role.GOOD
        node = ThresholdNode(
            node_id, role, self._params, relay_count=int(kernel.relay[node_id])
        )
        node.received_total = int(kernel.received[node_id])
        for idx, counts in kernel._counts.items():
            copies = int(counts[node_id])
            if copies:
                node.value_counts[kernel._values[idx]] = copies
        if kernel.decided[node_id] and role is not Role.SOURCE:
            node._current_round = int(kernel.decide_round[node_id])
            node._decide(kernel._values[int(kernel.accepted_idx[node_id])])
        if node._decided:
            node._pending_count = int(kernel.pending[node_id])
        return node


def try_vector_run(
    spec: Any,
    protocol: Any,
    grid: Any,
    table: Any,
    source: NodeId,
    params: BroadcastParams,
    *,
    tracer: Any,
    adversary_override: Callable[..., Any] | None,
) -> Any | None:
    """Run the scenario on the whole-grid kernel, or ``None`` if ineligible.

    Called by :func:`repro.scenario.runner.run` before per-node protocol
    assembly; a ``None`` return falls through to the flat/reference path
    with nothing consumed (the adversary, if one was built to check
    observe-safety, is rebuilt there — constructors are cheap and
    deterministic in ``spec.seed``).
    """
    if np is None or not DEFAULT_VECTOR:
        return None
    import repro.radio.mac as mac
    from repro.protocols import flat

    if not mac.DEFAULT_FAST_DRIVER or not flat.DEFAULT_FLAT:
        return None
    if tracer.enabled or adversary_override is not None:
        return None
    vector_build = getattr(protocol, "vector_build", None)
    if vector_build is None:
        return None
    if spec.mf != 0 and table.bad_ids:
        return None  # the adversary could actually transmit
    from repro.scenario.registries import BehaviorContext, BuildContext, behaviors
    from repro.sim.rng import RngRegistry

    program = vector_build(
        BuildContext(spec=spec, grid=grid, table=table, source=source, params=params)
    )
    if program is None:
        return None
    ledger = _ledger_for(program.assignment, table, spec.mf)
    behavior = behaviors.get(spec.behavior or protocol.default_behavior)
    adversary = behavior.build(
        BehaviorContext(
            spec=spec,
            grid=grid,
            table=table,
            ledger=ledger,
            params=params,
            rngs=RngRegistry(spec.seed),
            tracer=tracer,
        )
    )
    if not _observe_safe(adversary):
        return None
    from repro.radio.mac import RunLimits, RunStats
    from repro.runner.report import BroadcastReport

    max_rounds = spec.max_rounds if spec.max_rounds is not None else program.max_rounds
    limits = RunLimits(max_rounds=max_rounds)  # same validation as the driver
    kernel = VectorThresholdKernel(
        grid,
        table,
        params,
        source,
        program,
        adversary,
        batch_per_slot=spec.batch_per_slot,
    )
    nodes = LazyNodeMap(kernel, params)
    binder = getattr(adversary, "bind_decided", None)
    if callable(binder):
        binder(nodes)
    bits_binder = getattr(adversary, "bind_decided_bits", None)
    if callable(bits_binder):
        bits_binder(kernel.decided)
    stats = kernel.run(limits.max_rounds, RunStats())
    kernel.finalize_ledger(ledger)
    return BroadcastReport(
        outcome=kernel.outcome(stats, spec.vtrue),
        costs=kernel.costs(),
        stats=stats,
        grid=grid,
        table=table,
        nodes=nodes,
        adversary=adversary,
        ledger=ledger,
        assignment=program.assignment,
    )


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="vector-kernel",
        flag_module="repro.protocols.vectorized",
        flag_attr="DEFAULT_VECTOR",
        fast="repro.protocols.vectorized.try_vector_run",
        reference="repro.protocols.flat.FlatThresholdEngine",
        differential_test="tests/test_vectorized.py",
        fuzz_leg="vector",
        description="NumPy whole-grid round kernel vs the flat/reference "
        "engines (third differential leg)",
    )
)
