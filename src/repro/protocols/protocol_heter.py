"""Protocol B_heter (paper §4.1) — heterogeneous budgets.

Identical message flow to protocol B, but the relay count is the node's
*assigned budget*: ``m' = ceil((2tmf+1)/ceil((r(2r+1)-t)/2))`` inside the
cross-shaped privileged region of Figure 5 and ``m0`` everywhere else.
Acceptance is unchanged (``t*mf + 1`` copies).

The cross lets ``Vtrue`` first fill a thin high-budget skeleton; the
committed region then grows as a *circle* (Lemmas 5-11), whose boundary
nodes see roughly half a neighborhood of decided suppliers instead of the
quarter a square's corner node would — that is what makes the cheap
``m0`` budget sufficient for the bulk of the network.
"""

from __future__ import annotations

from repro.analysis.budgets import BudgetAssignment
from repro.network.node import NodeTable
from repro.protocols.base import BroadcastParams, ThresholdNode
from repro.types import NodeId, Role


def make_protocol_heter_nodes(
    table: NodeTable,
    params: BroadcastParams,
    assignment: BudgetAssignment,
) -> dict[NodeId, ThresholdNode]:
    """One B_heter node per honest grid node; relay count = assigned budget."""
    nodes: dict[NodeId, ThresholdNode] = {}
    for nid in table.good_ids:
        role = Role.SOURCE if nid == table.source else Role.GOOD
        relay = assignment.budgets[nid]
        nodes[nid] = ThresholdNode(nid, role, params, relay_count=relay)
    return nodes


def _build_heter(ctx):
    """Registered "heter" scenario assembly (Figure-5 assignment)."""
    from repro.analysis.budgets import heterogeneous_assignment
    from repro.scenario.registries import ProtocolBuild, default_threshold_max_rounds

    spec, params = ctx.spec, ctx.params
    assignment = heterogeneous_assignment(ctx.grid, ctx.source, spec.t, spec.mf)
    nodes = make_protocol_heter_nodes(ctx.table, params, assignment)
    return ProtocolBuild(
        nodes=nodes,
        assignment=assignment,
        max_rounds=default_threshold_max_rounds(
            spec.grid, params.source_sends, max(assignment.maximum, 1)
        ),
    )


def _vector_heter(ctx):
    """Array program for the whole-grid kernel (same Figure-5 assignment
    as :func:`_build_heter`; relay count = assigned budget)."""
    from repro.analysis.budgets import heterogeneous_assignment
    from repro.protocols import vectorized

    assignment = heterogeneous_assignment(
        ctx.grid, ctx.source, ctx.spec.t, ctx.spec.mf
    )
    return vectorized.assignment_program(ctx, assignment)


from repro.scenario.registries import ProtocolEntry, protocols as _protocols  # noqa: E402

_protocols.register(
    "heter",
    ProtocolEntry(
        "heter",
        _build_heter,
        default_behavior="jam",
        description="protocol B_heter (§4): cross m', elsewhere m0",
        vector_build=_vector_heter,
    ),
)
