"""E12 (extension) — probabilistic node failures (paper §6 future work).

The paper's §6 names "allowing probabilistic placement of bad nodes in
the network as in [4]" as future work. Reference [4] (Bhandari-Vaidya,
INFOCOM 2007) studies *crash* failures: every node fails independently
with probability ``p`` and simply never transmits; reliable broadcast
then depends on the transmission radius ``r`` percolating the surviving
nodes.

This experiment ports the paper's flooding machinery to that model
(crash faults ⟹ mf = 0 ⟹ acceptance threshold 1, relay once — pure
certified flooding) and maps the decided fraction of surviving nodes as
a function of ``p`` for several radii. The qualitative claim of [4]
reproduces: coverage stays essentially complete up to a radius-dependent
critical ``p`` and collapses beyond it, with larger ``r`` tolerating
markedly higher failure probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import BernoulliPlacement
from repro.network.grid import GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


@dataclass(frozen=True)
class FailurePoint:
    r: int
    p: float
    trials: int
    mean_decided_fraction: float
    all_complete: bool


@dataclass(frozen=True)
class ProbabilisticFailureResult:
    width: int
    points: tuple[FailurePoint, ...]

    def fraction_at(self, r: int, p: float) -> float:
        for point in self.points:
            if point.r == r and point.p == p:
                return point.mean_decided_fraction
        raise KeyError((r, p))

    @property
    def larger_radius_tolerates_more(self) -> bool:
        """At every p, coverage is non-decreasing in r (the [4] trend)."""
        ps = sorted({point.p for point in self.points})
        rs = sorted({point.r for point in self.points})
        for p in ps:
            fractions = [self.fraction_at(r, p) for r in rs]
            if any(b < a - 0.02 for a, b in zip(fractions, fractions[1:])):
                return False
        return True


@dataclass(frozen=True)
class FailureSweepPoint:
    """One (r, p) crash-failure cell, all trials included (picklable)."""

    r: int
    p: float
    trials: int
    seed: int
    width: int

    def scenarios(self) -> tuple[ScenarioSpec, ...]:
        """One crash-fault scenario spec per trial of this cell."""
        side = 2 * self.r + 1
        grid_width = (self.width // side) * side
        spec = GridSpec(
            width=grid_width, height=grid_width, r=self.r, torus=True
        )
        return tuple(
            ScenarioSpec(
                grid=spec,
                t=0,  # crash faults only: no Byzantine values
                mf=0,
                placement=BernoulliPlacement(
                    p=self.p, seed=self.seed + 97 * trial
                ),
                protocol="b",
                behavior="none",
                validate_local_bound=False,
                batch_per_slot=4,
            )
            for trial in range(self.trials)
        )


def _run_failure_point(point: FailureSweepPoint) -> FailurePoint:
    """Run every trial of one (r, p) cell (worker-safe)."""
    r, p = point.r, point.p
    fractions = []
    complete = True
    for scenario in point.scenarios():
        report = run_scenario(scenario)
        fractions.append(report.outcome.decided_fraction)
        complete = complete and report.outcome.complete
    return FailurePoint(
        r=r,
        p=p,
        trials=point.trials,
        mean_decided_fraction=sum(fractions) / len(fractions),
        all_complete=complete,
    )


def run_probabilistic_failures(
    *,
    width: int = 30,
    rs: tuple[int, ...] = (1, 2),
    ps: tuple[float, ...] = (0.0, 0.1, 0.25, 0.4, 0.55, 0.7),
    trials: int = 3,
    seed: int = 23,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ProbabilisticFailureResult:
    sweep_points = [
        FailureSweepPoint(r=r, p=p, trials=trials, seed=seed, width=width)
        for r in rs
        for p in ps
    ]
    result = parallel_sweep(
        sweep_points,
        _run_failure_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return ProbabilisticFailureResult(width=width, points=tuple(result.results))


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ProbabilisticFailureResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_probabilistic_failures(
        workers=workers, cache=cache, progress=progress
    )


def table(result: ProbabilisticFailureResult) -> str:
    rows = [
        [p.r, p.p, p.trials, f"{p.mean_decided_fraction:.3f}", p.all_complete]
        for p in result.points
    ]
    return format_table(
        ["r", "p(fail)", "trials", "decided fraction (survivors)", "complete"],
        rows,
        title=(
            "E12 - crash failures with probability p (future work per §6, "
            "model of [4]): larger r percolates through higher p"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_probabilistic_failures()))


if __name__ == "__main__":  # pragma: no cover
    main()
