"""E6 — Figure 9 / §5 coding scheme: overhead and attack resistance.

Three regenerated artifacts:

1. **Overhead table** — exact chain-code length ``K`` vs the paper's
   bound ``k + 2 log2 k + 2`` vs the I-code's ``2k``, over message sizes.
2. **Unidirectional detection** — every 0→1 flip pattern against a coded
   message is detected (Monte-Carlo over random messages and patterns,
   plus the all-zero-forgery counterexample against the literal,
   sentinel-free construction).
3. **Sub-bit attack success** — Monte-Carlo cancellation attacks against
   1-blocks succeed at rate ``~1/(2^L - 1)``, matching
   ``attack_success_probability`` (the paper's ``2^-L``); injection
   attacks on 0-blocks always succeed at the sub-bit level and are then
   caught by the bit-level chain code.

A pure coding-level study (no grid, placement, or protocol): its sweep
points stay plain parameter dataclasses rather than
:class:`~repro.scenario.ScenarioSpec` instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.coding.bits import random_bits
from repro.coding.chain import ChainCode, demonstrate_all_zero_forgery
from repro.coding.channel import UnidirectionalChannel
from repro.coding.icode import ICode
from repro.coding.params import (
    attack_success_probability,
    coded_length,
    coded_length_upper_bound,
)
from repro.coding.subbit import SubbitCodec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class OverheadRow:
    k: int
    chain_K: int
    paper_bound: float
    icode_K: int
    chain_overhead: float
    icode_overhead: float


@dataclass(frozen=True)
class DetectionResult:
    trials: int
    flips_detected: int
    literal_allzero_forgery_passes: bool

    @property
    def detection_rate(self) -> float:
        return self.flips_detected / self.trials if self.trials else 1.0


@dataclass(frozen=True)
class CancellationRow:
    block_length: int
    trials: int
    successes: int
    measured_rate: float
    analytic_rate: float


@dataclass(frozen=True)
class CodingResult:
    overhead: tuple[OverheadRow, ...]
    detection: DetectionResult
    cancellation: tuple[CancellationRow, ...]


def overhead_rows(ks: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 1024)) -> tuple[OverheadRow, ...]:
    rows = []
    for k in ks:
        chain_k = coded_length(k)
        rows.append(
            OverheadRow(
                k=k,
                chain_K=chain_k,
                paper_bound=coded_length_upper_bound(k),
                icode_K=ICode(k).coded_length,
                chain_overhead=chain_k / k,
                icode_overhead=2.0,
            )
        )
    return tuple(rows)


def run_detection(*, k: int = 32, trials: int = 2000, seed: int = 3) -> DetectionResult:
    """Random 0→1 flip patterns against the sentinel chain code."""
    rng = RngRegistry(seed).stream("detection")
    code = ChainCode(k)
    detected = 0
    for _ in range(trials):
        message = random_bits(k, rng)
        word = list(code.encode(message))
        zero_positions = [i for i, bit in enumerate(word) if bit == 0]
        if not zero_positions:
            detected += 1  # nothing to flip; count as trivially detected
            continue
        flip_count = rng.randint(1, len(zero_positions))
        for position in rng.sample(zero_positions, flip_count):
            word[position] = 1
        if not code.verify(tuple(word)):
            detected += 1
    original, forged = demonstrate_all_zero_forgery(k)
    literal = ChainCode(k, sentinel=False)
    return DetectionResult(
        trials=trials,
        flips_detected=detected,
        literal_allzero_forgery_passes=literal.verify(forged) and forged != original,
    )


@dataclass(frozen=True)
class CancellationPoint:
    """One block length's Monte-Carlo cancellation study (picklable)."""

    block_length: int
    trials: int
    seed: int


def _run_cancellation_point(point: CancellationPoint) -> CancellationRow:
    """Monte-Carlo one block length (worker-safe).

    Streams are named exactly as the historical serial loop named them —
    ``("encode", L)`` and ``("attack", L)`` off ``RngRegistry(seed)`` — so
    results are bit-identical regardless of which worker runs the point.
    """
    length = point.block_length
    registry = RngRegistry(point.seed)
    codec = SubbitCodec(block_length=length, rng=registry.stream("encode", length))
    channel = UnidirectionalChannel(codec)
    attack_rng: random.Random = registry.stream("attack", length)
    successes = 0
    for _ in range(point.trials):
        signal = codec.encode_bit(1)
        attack = channel.cancel_attack(len(signal), 0, attack_rng)
        received = channel.transmit(signal, attack)
        if codec.decode_block(received) == 0:
            successes += 1
    return CancellationRow(
        block_length=length,
        trials=point.trials,
        successes=successes,
        measured_rate=successes / point.trials,
        analytic_rate=attack_success_probability(length),
    )


def run_cancellation(
    *,
    block_lengths: tuple[int, ...] = (2, 4, 6, 8),
    trials: int = 30000,
    seed: int = 9,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[CancellationRow, ...]:
    """Monte-Carlo 1→0 cancellation attacks vs the analytic rate."""
    points = [
        CancellationPoint(block_length=length, trials=trials, seed=seed)
        for length in block_lengths
    ]
    result = parallel_sweep(
        points,
        _run_cancellation_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return tuple(result.results)


def run_coding(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
    **kwargs,
) -> CodingResult:
    return CodingResult(
        overhead=overhead_rows(),
        detection=run_detection(),
        cancellation=run_cancellation(
            workers=workers, cache=cache, progress=progress, **kwargs
        ),
    )


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> CodingResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_coding(workers=workers, cache=cache, progress=progress)


def table(result: CodingResult) -> str:
    overhead = format_table(
        ["k", "chain K", "paper bound k+2logk+2", "I-code 2k",
         "chain K/k", "I-code K/k"],
        [
            [r.k, r.chain_K, r.paper_bound, r.icode_K,
             r.chain_overhead, r.icode_overhead]
            for r in result.overhead
        ],
        title="E6a - coding overhead: chain code k+O(log k) vs I-code 2k",
    )
    d = result.detection
    detection = format_table(
        ["quantity", "paper", "measured"],
        [
            ["random 0->1 tampering detected", "always", f"{d.flips_detected}/{d.trials}"],
            ["literal all-zero forgery passes verification",
             "(implicit gap)", d.literal_allzero_forgery_passes],
        ],
        title="E6b - unidirectional error detection (sentinel chain code)",
    )
    cancellation = format_table(
        ["L", "trials", "successes", "measured", "analytic 1/(2^L-1)"],
        [
            [r.block_length, r.trials, r.successes,
             r.measured_rate, r.analytic_rate]
            for r in result.cancellation
        ],
        title="E6c - sub-bit 1->0 cancellation attack success rate",
    )
    return "\n\n".join([overhead, detection, cancellation])


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_coding()))


if __name__ == "__main__":  # pragma: no cover
    main()
