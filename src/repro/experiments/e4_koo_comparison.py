"""E4 — message-efficiency comparison against the Koo et al. baseline [14].

The paper's headline efficiency claim (§1.3, §3): the baseline needs
``m = 2*t*mf + 1`` per node — ``(r(2r+1) - t)/2`` times protocol B's
budget. This experiment tabulates both budgets and the ratio across
(r, t, mf), then runs both protocols in the same scenario and compares
the *measured* maximum per-node spend (both must succeed; only the cost
differs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import RandomPlacement
from repro.analysis.bounds import (
    budget_ratio_vs_koo,
    half_neighborhood,
    koo_budget,
    protocol_b_relay_count,
)
from repro.network.grid import GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario

DEFAULT_CONFIGS: tuple[tuple[int, int, int], ...] = (
    (1, 1, 2),
    (1, 2, 2),
    (2, 2, 2),
    (2, 4, 3),
    (3, 5, 4),
    (4, 1, 1000),
    (4, 10, 10),
)


@dataclass(frozen=True)
class ComparisonRow:
    r: int
    t: int
    mf: int
    koo_m: int
    b_m: int
    ratio: float
    paper_ratio: float


@dataclass(frozen=True)
class MeasuredComparison:
    r: int
    t: int
    mf: int
    koo_success: bool
    koo_max_sent: int
    b_success: bool
    b_max_sent: int

    @property
    def measured_ratio(self) -> float:
        return self.koo_max_sent / self.b_max_sent if self.b_max_sent else 0.0


@dataclass(frozen=True)
class KooComparisonResult:
    rows: tuple[ComparisonRow, ...]
    measured: MeasuredComparison


def analytic_rows(
    configs: tuple[tuple[int, int, int], ...] = DEFAULT_CONFIGS
) -> tuple[ComparisonRow, ...]:
    rows = []
    for r, t, mf in configs:
        rows.append(
            ComparisonRow(
                r=r,
                t=t,
                mf=mf,
                koo_m=koo_budget(t, mf),
                b_m=protocol_b_relay_count(r, t, mf),
                ratio=budget_ratio_vs_koo(r, t, mf),
                paper_ratio=(half_neighborhood(r) - t) / 2,
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class ProtocolRunPoint:
    """One protocol's run on the shared scenario (picklable)."""

    protocol: str  # "koo" | "b"
    r: int
    t: int
    mf: int
    seed: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        side = 2 * self.r + 1
        return ScenarioSpec(
            grid=GridSpec(width=6 * side, height=6 * side, r=self.r, torus=True),
            t=self.t,
            mf=self.mf,
            placement=RandomPlacement(t=self.t, count=20, seed=self.seed),
            protocol=self.protocol,
            batch_per_slot=4,
        )


@dataclass(frozen=True)
class ProtocolRunOutcome:
    protocol: str
    success: bool
    max_good_sent: int


def _run_protocol_point(point: ProtocolRunPoint) -> ProtocolRunOutcome:
    """Run one protocol on the shared comparison scenario (worker-safe)."""
    report = run_scenario(point.scenario())
    return ProtocolRunOutcome(
        protocol=point.protocol,
        success=report.success,
        max_good_sent=report.costs.good_max,
    )


def run_comparison(
    *,
    r: int = 2,
    t: int = 2,
    mf: int = 3,
    seed: int = 11,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> KooComparisonResult:
    """Tabulate budgets and measure both protocols on one shared scenario."""
    points = [
        ProtocolRunPoint(protocol=name, r=r, t=t, mf=mf, seed=seed)
        for name in ("koo", "b")
    ]
    result = parallel_sweep(
        points,
        _run_protocol_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    by_name = {outcome.protocol: outcome for outcome in result.results}
    measured = MeasuredComparison(
        r=r,
        t=t,
        mf=mf,
        koo_success=by_name["koo"].success,
        koo_max_sent=by_name["koo"].max_good_sent,
        b_success=by_name["b"].success,
        b_max_sent=by_name["b"].max_good_sent,
    )
    return KooComparisonResult(rows=analytic_rows(), measured=measured)


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> KooComparisonResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_comparison(workers=workers, cache=cache, progress=progress)


def table(result: KooComparisonResult) -> str:
    rows = [
        [row.r, row.t, row.mf, row.koo_m, row.b_m, row.ratio, row.paper_ratio]
        for row in result.rows
    ]
    analytic = format_table(
        ["r", "t", "mf", "Koo 2tmf+1", "B relay m'", "ratio", "paper (r(2r+1)-t)/2"],
        rows,
        title="E4 - per-node budget: Koo et al. baseline vs protocol B",
    )
    m = result.measured
    measured = format_table(
        ["protocol", "success", "max good sent"],
        [
            ["koo baseline", m.koo_success, m.koo_max_sent],
            ["protocol B", m.b_success, m.b_max_sent],
            ["measured ratio", "-", f"{m.measured_ratio:.2f}"],
        ],
        title=f"measured on shared scenario (r={m.r}, t={m.t}, mf={m.mf})",
    )
    return analytic + "\n\n" + measured


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_comparison()))


if __name__ == "__main__":  # pragma: no cover
    main()
