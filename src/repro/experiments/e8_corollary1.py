"""E8 — Corollary 1: the feasibility boundary in the (t, m) plane.

For fixed (r, mf) we sweep the number of bad nodes per neighborhood ``t``
and the good budget ``m``, run the stripe-band scenario under the
threshold-guard jammer, and compare the empirical outcome with the two
analytic curves of Corollary 1:

- *breakable*:  ``t > (m*r(2r+1) - 1) / (2*mf + m)``  (equivalently
  ``m < m0``) — the adversary *can* cause failure;
- *tolerable*:  ``t <= (m*r(2r+1) - 2) / (4*mf + m)`` (≈ ``m >= 2*m0``)
  — some protocol always succeeds.

Between the curves lies the paper's open region. The empirical map shows
(a) every tolerable point succeeds, (b) breakable points fail wherever
the collision geometry lets the jammer realize the counting argument —
at razor-tight points (supply within one jam-coverage of ``2tmf+1``)
the shared-jam geometry cannot, which is the boundary-tightness
reproduction note from E1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import two_stripe_band
from repro.analysis.bounds import (
    corollary1_max_tolerable_t,
    corollary1_min_breakable_t,
    m0,
)
from repro.network.grid import Grid, GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


@dataclass(frozen=True)
class BoundaryPoint:
    t: int
    m: int
    m0: int
    success: bool
    breakable: bool  # Corollary 1 impossibility side applies
    tolerable: bool  # Corollary 1 possibility side applies

    @property
    def classification(self) -> str:
        if self.tolerable:
            return "tolerable"
        if self.breakable:
            return "breakable"
        return "open"

    @property
    def consistent(self) -> bool:
        """Empirical outcome never contradicts the possibility side."""
        return self.success if self.tolerable else True


@dataclass(frozen=True)
class BoundaryResult:
    r: int
    mf: int
    points: tuple[BoundaryPoint, ...]

    @property
    def all_consistent(self) -> bool:
        return all(p.consistent for p in self.points)

    @property
    def breakable_failure_rate(self) -> float:
        breakable = [p for p in self.points if p.breakable and not p.tolerable]
        if not breakable:
            return 1.0
        return sum(not p.success for p in breakable) / len(breakable)


@dataclass(frozen=True)
class BoundarySweepPoint:
    """One (t, m) cell of the feasibility map (picklable)."""

    r: int
    mf: int
    t: int
    m: int
    width: int
    height: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        spec = GridSpec(
            width=self.width, height=self.height, r=self.r, torus=True
        )
        grid = Grid(spec)
        placement, band_rows = two_stripe_band(
            grid, t=self.t, band_height=2 * self.r + 2, below_y0=3 * self.r
        )
        band_ids = tuple(
            grid.id_of((x, y)) for y in band_rows for x in range(self.width)
        )
        return ScenarioSpec(
            grid=spec,
            t=self.t,
            mf=self.mf,
            placement=placement,
            protocol="b",
            m=self.m,
            protected=band_ids,
            batch_per_slot=4,
        )


def _run_boundary_point(point: BoundarySweepPoint) -> BoundaryPoint:
    """Rebuild and run one feasibility-map cell (worker-safe)."""
    r, mf, t, m = point.r, point.mf, point.t, point.m
    report = run_scenario(point.scenario())
    return BoundaryPoint(
        t=t,
        m=m,
        m0=m0(r, t, mf),
        success=report.success,
        breakable=t >= corollary1_min_breakable_t(r, m, mf),
        tolerable=t <= corollary1_max_tolerable_t(r, m, mf),
    )


def run_boundary(
    *,
    r: int = 2,
    mf: int = 2,
    ts: tuple[int, ...] = (1, 2, 3, 4, 6),
    ms: tuple[int, ...] = (1, 2, 3, 4, 6),
    width: int = 30,
    height: int = 30,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> BoundaryResult:
    points = [
        BoundarySweepPoint(r=r, mf=mf, t=t, m=m, width=width, height=height)
        for t in ts
        for m in ms
    ]
    result = parallel_sweep(
        points,
        _run_boundary_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return BoundaryResult(r=r, mf=mf, points=tuple(result.results))


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> BoundaryResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_boundary(workers=workers, cache=cache, progress=progress)


def table(result: BoundaryResult) -> str:
    rows = [
        [p.t, p.m, p.m0, p.classification, p.success, p.consistent]
        for p in result.points
    ]
    return format_table(
        ["t", "m", "m0(t)", "Corollary 1", "success", "consistent"],
        rows,
        title=(
            f"E8 - Corollary 1 feasibility map (r={result.r}, mf={result.mf}); "
            "'tolerable' points must succeed, 'breakable' fail where the "
            "jam geometry permits"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_boundary()))


if __name__ == "__main__":  # pragma: no cover
    main()
