"""The experiment registry: one addressable entry per figure/theorem.

Maps experiment ids (``e1``–``e13``) to their harness modules and the
uniform run/format entry points every module exposes:

- ``run(*, workers=1, cache=None, progress=None)`` — regenerate the
  experiment through :func:`repro.runner.parallel.sweep`, optionally
  fanning points out over ``workers`` processes and memoizing per-point
  results in a :class:`~repro.runner.parallel.ResultCache`;
- ``table(result)`` — render the regenerated rows.

The CLI (``python -m repro run <exp...>``), the benchmark harnesses, and
the determinism test suite all resolve experiments through this registry
rather than importing harness modules ad hoc, so a new experiment is
registered exactly once.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.runner.parallel import ResultCache


@dataclass(frozen=True)
class Experiment:
    """One registered experiment harness.

    ``runner``/``formatter`` name the module attributes implementing the
    uniform entry points (``run``/``table`` unless a module needs
    distinct names, like E2 whose classic ``table`` renders the single
    paper instance).
    """

    exp_id: str
    module_name: str
    description: str
    runner: str = "run"
    formatter: str = "table"

    def module(self) -> ModuleType:
        return importlib.import_module(self.module_name)

    def run(
        self,
        *,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> Any:
        """Regenerate this experiment (parallel + cached when asked)."""
        run = getattr(self.module(), self.runner)
        return run(workers=workers, cache=cache, progress=progress)

    def format(self, result: Any) -> str:
        """Render a result from :meth:`run` as the experiment's table."""
        return getattr(self.module(), self.formatter)(result)


_EXPERIMENTS: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.exp_id in _EXPERIMENTS:
        raise ConfigurationError(
            f"experiment {experiment.exp_id!r} is already registered"
        )
    _EXPERIMENTS[experiment.exp_id] = experiment
    return experiment


for _exp in (
    Experiment("e1", "repro.experiments.e1_impossibility",
               "Thm 1 / Fig 1: stripe impossibility"),
    Experiment("e2", "repro.experiments.e2_figure2",
               "Fig 2 worked example + generalized sweep",
               runner="run_sweep", formatter="sweep_table"),
    Experiment("e3", "repro.experiments.e3_protocol_b",
               "Thm 2: protocol B at m = 2*m0"),
    Experiment("e4", "repro.experiments.e4_koo_comparison",
               "budget comparison vs Koo [14]"),
    Experiment("e5", "repro.experiments.e5_heterogeneous",
               "Thm 3 / Fig 5: heterogeneous budgets"),
    Experiment("e6", "repro.experiments.e6_coding",
               "Fig 9: coding overhead + attacks"),
    Experiment("e7", "repro.experiments.e7_reactive",
               "Thm 4: B_reactive, unknown mf"),
    Experiment("e8", "repro.experiments.e8_corollary1",
               "Cor 1 feasibility map"),
    Experiment("e9", "repro.experiments.e9_ablations",
               "design ablations"),
    Experiment("e10", "repro.experiments.e10_uncertain_region",
               "open region (m0, 2m0) [ext]"),
    Experiment("e11", "repro.experiments.e11_refined_coding_cost",
               "refined coding cost [ext]"),
    Experiment("e12", "repro.experiments.e12_probabilistic_failures",
               "crash failures [ext]"),
    Experiment("e13", "repro.experiments.e13_subbit_link",
               "sub-bit link validation [ext]"),
):
    register(_exp)


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids, in registration (paper) order."""
    return tuple(_EXPERIMENTS)


def get(exp_id: str) -> Experiment:
    """Look an experiment up by id; unknown ids fail with the known set."""
    try:
        return _EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(_EXPERIMENTS)
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {known}"
        ) from None


def all_experiments() -> tuple[Experiment, ...]:
    return tuple(_EXPERIMENTS.values())
