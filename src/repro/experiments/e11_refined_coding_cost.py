"""E11 (extension) — the refined chain-code vs I-code efficiency model.

The paper closes §5 with: *"Final comparison on message efficiency thus
calls for a refined model that takes into account message length and
per-message attack rate. This might be a subject of future study."*
This experiment builds that model and runs it, both analytically and by
Monte-Carlo simulation of the two retransmission disciplines.

Model. A sender must deliver a k-bit message over the coded channel; the
adversary flips ``a`` bits total (its budget), one per transmission
attempt, until exhausted.

- **chain code** — verification is per *message*: every attack forces a
  full retransmission of all ``K_chain(k) * L`` sub-bits. Total cost
  ``(a + 1) * K_chain * L``.
- **I-code** — verification is per *bit*: an attack invalidates one bit
  pair; only that bit is re-sent (plus protocol overhead of one bit pair
  to address it, charged here at ``c_addr`` coded bits). Total cost
  ``2k * L + a * (2 + c_addr) * L``.

The crossover attack rate — above which the I-code's per-bit repair wins
despite its 2x baseline cost — is

    a* = (2k - K_chain) / (K_chain - (2 + c_addr))   (in flips)

which the simulation confirms. For digest-sized messages and the attack
budgets the paper contemplates (a ≤ t*mf), the chain code wins up to
roughly one attack per ``K/k`` bits of payload — quantifying the trade
the paper left qualitative.

A pure coding-level study (no grid, placement, or protocol): its sweep
points stay plain parameter dataclasses rather than
:class:`~repro.scenario.ScenarioSpec` instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.coding.chain import ChainCode
from repro.coding.icode import ICode
from repro.coding.params import coded_length
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.sim.rng import RngRegistry

#: Coded bits charged to address/retransmit one repaired bit (header).
ADDR_OVERHEAD_BITS = 8


def chain_cost_bits(k: int, attacks: int) -> int:
    """Total coded bits sent by the chain-code discipline under ``attacks``."""
    return (attacks + 1) * coded_length(k)


def icode_cost_bits(k: int, attacks: int) -> int:
    """Total coded bits sent by the I-code discipline under ``attacks``."""
    return 2 * k + attacks * (2 + ADDR_OVERHEAD_BITS)


def crossover_attacks(k: int) -> float:
    """Attack count above which the I-code becomes cheaper."""
    chain_k = coded_length(k)
    return (2 * k - chain_k) / (chain_k - (2 + ADDR_OVERHEAD_BITS))


@dataclass(frozen=True)
class RefinedCostRow:
    k: int
    attacks: int
    chain_bits: int
    icode_bits: int
    chain_wins: bool
    simulated_chain_bits: float
    simulated_icode_bits: float


@dataclass(frozen=True)
class RefinedCostResult:
    rows: tuple[RefinedCostRow, ...]
    crossovers: tuple[tuple[int, float], ...]

    @property
    def model_matches_simulation(self) -> bool:
        return all(
            row.simulated_chain_bits == row.chain_bits
            and row.simulated_icode_bits == row.icode_bits
            for row in self.rows
        )


def _simulate_chain(k: int, attacks: int, rng: random.Random) -> int:
    """Simulate the whole-message retransmission loop."""
    code = ChainCode(k, sentinel=False)
    message = tuple(rng.getrandbits(1) for _ in range(k))
    sent = 0
    remaining = attacks
    while True:
        word = list(code.encode(message))
        sent += len(word)
        if remaining > 0:
            remaining -= 1
            zeros = [i for i, b in enumerate(word) if b == 0]
            if zeros:
                word[rng.choice(zeros)] = 1
        if code.verify(tuple(word)):
            received = code.decode(tuple(word))
            assert received == message
            return sent


def _simulate_icode(k: int, attacks: int, rng: random.Random) -> int:
    """Simulate the per-bit repair loop."""
    code = ICode(k)
    message = tuple(rng.getrandbits(1) for _ in range(k))
    word = list(code.encode(message))
    sent = len(word)
    remaining = attacks
    while True:
        if remaining > 0:
            remaining -= 1
            zeros = [i for i, b in enumerate(word) if b == 0]
            word[rng.choice(zeros)] = 1
        bad_bits = code.invalid_bit_positions(tuple(word))
        if not bad_bits:
            assert code.decode(tuple(word)) == message
            return sent
        for bit in bad_bits:  # repair only the flipped bits
            word[2 * bit : 2 * bit + 2] = code.encode(message)[2 * bit : 2 * bit + 2]
            sent += 2 + ADDR_OVERHEAD_BITS


@dataclass(frozen=True)
class RefinedCostPoint:
    """One (k, attacks) cell of the refined-cost study (picklable)."""

    k: int
    attacks: int
    seed: int


def _run_refined_cost_point(point: RefinedCostPoint) -> RefinedCostRow:
    """Simulate one (k, attacks) cell (worker-safe).

    Uses the historical stream name ``(k, attacks)`` off
    ``RngRegistry(seed)``, with the chain simulation drawing before the
    I-code simulation on the same stream — identical to the serial loop.
    """
    k, attacks = point.k, point.attacks
    chain_bits = chain_cost_bits(k, attacks)
    icode_bits = icode_cost_bits(k, attacks)
    rng = RngRegistry(point.seed).stream(k, attacks)
    return RefinedCostRow(
        k=k,
        attacks=attacks,
        chain_bits=chain_bits,
        icode_bits=icode_bits,
        chain_wins=chain_bits <= icode_bits,
        simulated_chain_bits=_simulate_chain(k, attacks, rng),
        simulated_icode_bits=_simulate_icode(k, attacks, rng),
    )


def run_refined_cost(
    *,
    ks: tuple[int, ...] = (32, 128, 512),
    attack_counts: tuple[int, ...] = (0, 1, 2, 5, 20),
    seed: int = 13,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> RefinedCostResult:
    points = [
        RefinedCostPoint(k=k, attacks=attacks, seed=seed)
        for k in ks
        for attacks in attack_counts
    ]
    result = parallel_sweep(
        points,
        _run_refined_cost_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    crossovers = tuple((k, crossover_attacks(k)) for k in ks)
    return RefinedCostResult(rows=tuple(result.results), crossovers=crossovers)


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> RefinedCostResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_refined_cost(workers=workers, cache=cache, progress=progress)


def table(result: RefinedCostResult) -> str:
    main_table = format_table(
        ["k", "attacks", "chain bits", "I-code bits", "chain wins",
         "sim chain", "sim I-code"],
        [
            [r.k, r.attacks, r.chain_bits, r.icode_bits, r.chain_wins,
             r.simulated_chain_bits, r.simulated_icode_bits]
            for r in result.rows
        ],
        title=(
            "E11 - refined message-efficiency model (paper §5 future work): "
            "whole-message vs per-bit retransmission"
        ),
    )
    cross = format_table(
        ["k", "crossover attacks a*"],
        [[k, f"{a:.2f}"] for k, a in result.crossovers],
        title="I-code becomes cheaper above a* attacks per message",
    )
    return main_table + "\n\n" + cross


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_refined_cost()))


if __name__ == "__main__":  # pragma: no cover
    main()
