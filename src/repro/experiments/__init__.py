"""Experiment harnesses regenerating every figure/theorem of the paper.

One module per experiment (see DESIGN.md §5 and EXPERIMENTS.md):

- E1 — Theorem 1 / Figure 1: stripe impossibility vs budget ``m``;
- E2 — Figure 2: the exact ``r=4, t=1, mf=1000, m=m0+1=59`` stall, plus
  a generalized ``(m, mf)`` sweep of the corner-starvation construction;
- E3 — Theorem 2: protocol B succeeds at ``m = 2*m0``;
- E4 — §3 comparison against the Koo et al. repetition baseline;
- E5 — Theorem 3 / Figure 5: heterogeneous budgets;
- E6 — §5 / Figure 9: coding overhead and attack success rates;
- E7 — Theorem 4: B_reactive reliability and message cost;
- E8 — Corollary 1: empirical feasibility boundary in (t, m);
- E9 — design ablations (concerted relays, growth shape, quiet window);
- E10–E13 — extensions: open region, refined coding cost, crash
  failures, sub-bit link validation.

Every module is addressable through :mod:`repro.experiments.registry`
and exposes the uniform entry points the registry expects —
``run(*, workers=1, cache=None, progress=None)`` returning a result
dataclass and ``table(result)`` rendering the regenerated rows. Point
lists execute on :func:`repro.runner.parallel.sweep`, so any experiment
fans out over worker processes and memoizes per-point results without
harness-specific code; the classic ``run_*`` functions remain for tests
and programmatic use. The ``benchmarks/`` tree drives the same registry
entries under pytest-benchmark.
"""
