"""Experiment harnesses regenerating every figure/theorem of the paper.

One module per experiment (see DESIGN.md §5 and EXPERIMENTS.md):

- E1 — Theorem 1 / Figure 1: stripe impossibility vs budget ``m``;
- E2 — Figure 2: the exact ``r=4, t=1, mf=1000, m=m0+1=59`` stall;
- E3 — Theorem 2: protocol B succeeds at ``m = 2*m0``;
- E4 — §3 comparison against the Koo et al. repetition baseline;
- E5 — Theorem 3 / Figure 5: heterogeneous budgets;
- E6 — §5 / Figure 9: coding overhead and attack success rates;
- E7 — Theorem 4: B_reactive reliability and message cost;
- E8 — Corollary 1: empirical feasibility boundary in (t, m);
- E9 — design ablations (concerted relays, growth shape, quiet window).

Each module exposes a ``run_*`` function returning a result dataclass and
a ``table()``/``main()`` entry printing the regenerated rows; the
``benchmarks/`` tree calls the same functions under pytest-benchmark.
"""
