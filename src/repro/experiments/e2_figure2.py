"""E2 — Figure 2's worked example, with the paper's exact numbers.

Scenario (paper §2): ``r=4, t=1, mf=1000`` so ``m0 = ceil(2001/35) = 58``;
good nodes get ``m = m0 + 1 = 59``. Bad nodes sit on a ``(2r+1)``-period
lattice ("every neighborhood has exactly one bad node"), offset so the
starved node ``p`` has exactly 33 good decided suppliers.

Paper's claims, all checked here:

- the 81-node source neighborhood accepts (source repeats 2tmf+1 = 2001
  times);
- exactly four more nodes — the mid-side nodes ``(0,±5), (±5,0)`` — can
  accept, each with ``(r(2r+1)-t) * m = 35*59 = 2065`` potential supply;
- every other node stalls: ``p = (1,5)`` has ``33 * 59 = 1947`` potential
  correct messages, of which the in-range defender can corrupt enough to
  leave at most ``tmf = 1000 < 1001`` — the paper counts 1000 altered and
  947 correct delivered;
- hence broadcast fails even though ``m > m0`` (the ``(m0, 2m0)`` gap).

The defense is *clairvoyant* (see :mod:`repro.adversary.figure2`, the
registered ``"figure2-defense"`` behavior): each of the four defenders
adjacent to the source square jams the whole ``4x4`` supplier quadrant
between its two frontier arms (16 nodes * 59 transmissions = 944) plus 3
transmissions of each of its two mid-side suppliers — 950 of its 1000
budget — pinning every second-wave receiver to exactly 1000 clean copies.

The whole instance family is declarative: :func:`scenario_spec` builds
the one :class:`~repro.scenario.ScenarioSpec` (grid, lattice placement,
protocol B, the registered defense behavior) that every entry point here
— classic run, generalized sweep, walkthrough — executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.figure2 import (
    LATTICE,
    M,
    MF,
    MIDSIDE,
    P_COORD,
    R,
    T,
    WIDTH,
    figure2_midside_quota,
    figure2_plan,
)
from repro.adversary.placement import LatticePlacement
from repro.analysis.bounds import m0
from repro.errors import ConfigurationError
from repro.network.grid import GridSpec
from repro.runner.parallel import ResultCache, SweepResult
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import BroadcastReport, format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario

#: Deprecated alias (the plan builder moved to :mod:`repro.adversary.figure2`).
_figure2_plan = figure2_plan

HEIGHT = WIDTH


@dataclass(frozen=True)
class Figure2Result:
    m0: int
    decided_good: int
    expected_decided: int
    p_potential: int
    p_clean: int
    p_suppliers: int
    midside_potential: int
    defender_spend: int
    broadcast_failed: bool
    report: BroadcastReport


def validate_figure2_attack(m: int, mf: int, t: int = T) -> None:
    """Check the clairvoyant defense is fundable and effective.

    Raises :class:`ConfigurationError` when the construction cannot win:
    - the defender budget must cover quadrant jams plus two quotas
      (``16*m + 2*q <= mf``);
    - the quota cannot exceed the mid-side node's own send count;
    - the mid-side nodes must still decide (``20*m >= t*mf + 1``), else
      the decided set differs from the figure.
    """
    quota = figure2_midside_quota(m, mf, t)
    if quota > m:
        raise ConfigurationError(
            f"quota {quota} exceeds mid-side send count {m}: p cannot be pinned"
        )
    if 16 * m + 2 * quota > mf:
        raise ConfigurationError(
            f"defense needs {16 * m + 2 * quota} jams > budget mf={mf}"
        )
    if 20 * m < t * mf + 1:
        raise ConfigurationError(
            f"mid-side supply {20 * m} < threshold {t * mf + 1}: "
            "the decided set would differ from Figure 2"
        )


def scenario_spec(
    *,
    m: int,
    mf: int,
    max_rounds: int = 130,
    batch_per_slot: int = 25,
) -> ScenarioSpec:
    """The Figure-2 construction as one declarative scenario.

    Validates feasibility first (see :func:`validate_figure2_attack`);
    the paper's instance is ``m=59, mf=1000``.
    """
    validate_figure2_attack(m, mf)
    return ScenarioSpec(
        grid=GridSpec(width=WIDTH, height=HEIGHT, r=R, torus=True),
        t=T,
        mf=mf,
        placement=LatticePlacement(x0=LATTICE[0], y0=LATTICE[1], cluster=1),
        protocol="b",
        behavior="figure2-defense",
        behavior_params={"midside_quota": figure2_midside_quota(m, mf)},
        m=m,
        max_rounds=max_rounds,
        batch_per_slot=batch_per_slot,
    )


def paper_spec() -> ScenarioSpec:
    """The paper's exact instance (m=59, mf=1000) as a scenario."""
    return scenario_spec(m=M, mf=MF)


def run_figure2_generalized(
    *,
    m: int,
    mf: int,
    max_rounds: int = 130,
    batch_per_slot: int = 25,
) -> Figure2Result:
    """Figure-2 construction for arbitrary ``(m, mf)`` at r=4, t=1."""
    spec = scenario_spec(
        m=m, mf=mf, max_rounds=max_rounds, batch_per_slot=batch_per_slot
    )
    report = run_scenario(spec)
    return _collect(report, spec)


def run_figure2(max_rounds: int = 130, batch_per_slot: int = 25) -> Figure2Result:
    """Run the Figure 2 scenario at the paper's exact parameters."""
    return run_figure2_generalized(
        m=M, mf=MF, max_rounds=max_rounds, batch_per_slot=batch_per_slot
    )


def _collect(report: BroadcastReport, spec: ScenarioSpec) -> Figure2Result:
    grid = report.grid
    m, mf = spec.m, spec.mf

    source = grid.id_of((0, 0))
    square = {
        grid.id_of((x, y)) for x in range(-R, R + 1) for y in range(-R, R + 1)
    }
    expected_decided = {nid for nid in square if report.table.is_honest(nid)}
    expected_decided |= {grid.id_of(c) for c in MIDSIDE}
    expected_decided.discard(source)

    p_id = grid.id_of(P_COORD)
    p_node = report.nodes[p_id]
    # p's suppliers: decided good neighbors (what the paper counts as 33).
    p_suppliers = sum(
        1
        for nb in grid.neighbors(p_id)
        if report.table.is_honest(nb)
        and nb != source
        and getattr(report.nodes.get(nb), "decided", False)
    )
    defender = grid.id_of((4, 5))

    return Figure2Result(
        m0=m0(R, T, mf),
        decided_good=report.outcome.decided_good,
        expected_decided=len(expected_decided),
        p_potential=p_suppliers * m,
        p_clean=p_node.count_of(spec.vtrue),
        p_suppliers=p_suppliers,
        midside_potential=(grid.spec.half_neighborhood - T) * m,
        defender_spend=report.ledger.sent(defender),
        broadcast_failed=not report.outcome.complete,
        report=report,
    )


@dataclass(frozen=True)
class Figure2SweepPoint:
    """One generalized Figure-2 instance (picklable sweep point)."""

    m: int
    mf: int
    max_rounds: int = 130
    batch_per_slot: int = 25

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        return scenario_spec(
            m=self.m,
            mf=self.mf,
            max_rounds=self.max_rounds,
            batch_per_slot=self.batch_per_slot,
        )


@dataclass(frozen=True)
class Figure2Summary:
    """Comparison-friendly projection of :class:`Figure2Result`.

    Carries the outcome bits, paper quantities, and message counts —
    everything the determinism suite compares point-for-point — but not
    the live :class:`BroadcastReport` (worker results must be picklable
    and cacheable).
    """

    m: int
    mf: int
    m0: int
    decided_good: int
    expected_decided: int
    p_potential: int
    p_clean: int
    p_suppliers: int
    midside_potential: int
    defender_spend: int
    broadcast_failed: bool
    good_total_sent: int
    good_max_sent: int
    bad_total_sent: int
    rounds: int


#: Default sweep: the paper instance m = m0 + 1 = 59 plus neighbors inside
#: the fundable window 51 <= m <= 60 of validate_figure2_attack at mf=1000.
DEFAULT_SWEEP_POINTS: tuple[Figure2SweepPoint, ...] = (
    Figure2SweepPoint(m=57, mf=MF),
    Figure2SweepPoint(m=M, mf=MF),
    Figure2SweepPoint(m=60, mf=MF),
)


def _run_sweep_point(point: Figure2SweepPoint) -> Figure2Summary:
    """Run one generalized Figure-2 scenario and summarize (worker-safe)."""
    spec = point.scenario()
    result = _collect(run_scenario(spec), spec)
    report = result.report
    return Figure2Summary(
        m=point.m,
        mf=point.mf,
        m0=result.m0,
        decided_good=result.decided_good,
        expected_decided=result.expected_decided,
        p_potential=result.p_potential,
        p_clean=result.p_clean,
        p_suppliers=result.p_suppliers,
        midside_potential=result.midside_potential,
        defender_spend=result.defender_spend,
        broadcast_failed=result.broadcast_failed,
        good_total_sent=report.costs.good_total,
        good_max_sent=report.costs.good_max,
        bad_total_sent=report.costs.bad_total,
        rounds=report.outcome.rounds,
    )


def run_sweep(
    *,
    points: tuple[Figure2SweepPoint, ...] = DEFAULT_SWEEP_POINTS,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> SweepResult:
    """Sweep generalized Figure-2 instances (registry entry point)."""
    return parallel_sweep(
        points,
        _run_sweep_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )


def run_classic(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> Figure2Summary:
    """The classic single paper instance, riding the parallel substrate.

    One :class:`Figure2SweepPoint` (m=59, mf=1000) through
    :func:`repro.runner.parallel.sweep`, so the flagship run shares the
    result cache and worker plumbing with every other experiment instead
    of the historical ad-hoc serial call.
    """
    result = parallel_sweep(
        (Figure2SweepPoint(m=M, mf=MF),),
        _run_sweep_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return result.results[0]


def sweep_table(result: SweepResult) -> str:
    rows = result.rows(
        lambda point, s: [
            s.m,
            s.mf,
            s.m0,
            s.decided_good + 1,
            s.p_suppliers,
            s.p_clean,
            s.defender_spend,
            s.broadcast_failed,
            s.good_max_sent,
            s.rounds,
        ]
    )
    return format_table(
        ["m", "mf", "m0", "decided+src", "p suppliers", "p clean",
         "defender spent", "fails", "max good sent", "rounds"],
        rows,
        title=(
            "E2 - generalized Figure 2 corner-starvation sweep "
            f"(r={R}, t={T}; paper instance is m={M}, mf={MF})"
        ),
    )


def table(result: Figure2Result | Figure2Summary) -> str:
    """Render the classic worked example (live result or sweep summary)."""
    rows = [
        ["m0 = ceil(2*t*mf+1 / (r(2r+1)-t))", 58, result.m0],
        ["good budget m = m0 + 1", 59, M],
        [
            "decided nodes incl source (square + 4 mid-side)",
            84,
            result.decided_good + 1,
        ],
        ["p's decided good suppliers", 33, result.p_suppliers],
        ["p's potential correct messages (33 * 59)", 1947, result.p_potential],
        ["mid-side potential ((r(2r+1)-t) * m)", 2065, result.midside_potential],
        ["p's clean copies (must be <= t*mf = 1000)", "<=1000", result.p_clean],
        ["defender budget spent (<= mf = 1000)", "<=1000", result.defender_spend],
        ["broadcast fails despite m > m0", True, result.broadcast_failed],
    ]
    return format_table(
        ["quantity", "paper", "measured"],
        rows,
        title="E2 - Figure 2 worked example (r=4, t=1, mf=1000, m=59)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_classic()))


if __name__ == "__main__":  # pragma: no cover
    main()
