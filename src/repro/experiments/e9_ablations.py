"""E9 — ablations on the paper's design choices.

Three studies backing the claims DESIGN.md calls out:

- **(a) concerted relays** — sweep the per-node relay count at the fixed
  acceptance rule: protocol B's ``m' = ceil((2tmf+1)/ceil((N-t)/2))`` is
  the knee below which the stripe band starves; the baseline's
  ``2tmf+1`` buys nothing extra. This isolates the paper's key idea —
  pooling a half-neighborhood's relays instead of out-shouting collisions
  alone.
- **(b) growth shape** — in the Figure 2 corner-starvation scenario,
  homogeneous ``m0 + 1`` fails (E2) while the cross/circle configuration
  of Theorem 3 succeeds against the *same* clairvoyant defense, at a
  comparable average budget.
- **(c) NACK quiet window** — B_reactive with the paper's
  ``(2r+1)^2 - 1`` window always delivers; shrinking the window to 1
  round makes senders stop before straggling NACKs arrive and the
  broadcast can lose receivers under attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.figure2 import LATTICE, M, MF, R, T, WIDTH
from repro.adversary.placement import LatticePlacement, RandomPlacement, two_stripe_band
from repro.analysis.bounds import koo_budget, m0, protocol_b_relay_count
from repro.experiments.e2_figure2 import run_figure2
from repro.network.grid import Grid, GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


# -- (a) relay-count sweep -----------------------------------------------------


@dataclass(frozen=True)
class RelayPoint:
    relay_count: int
    label: str
    success: bool
    max_sent: int


@dataclass(frozen=True)
class RelaySweepPoint:
    """One relay-count candidate of the E9a ablation (picklable)."""

    r: int
    t: int
    mf: int
    width: int
    relay: int
    label: str

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        r, t, mf, width = self.r, self.t, self.mf, self.width
        spec = GridSpec(width=width, height=width, r=r, torus=True)
        grid = Grid(spec)
        placement, band_rows = two_stripe_band(
            grid, t=t, band_height=2 * r + 2, below_y0=3 * r
        )
        band_ids = tuple(
            grid.id_of((x, y)) for y in band_rows for x in range(width)
        )
        return ScenarioSpec(
            grid=spec,
            t=t,
            mf=mf,
            placement=placement,
            protocol="b",
            m=self.relay,  # budget == relay count: exactly `relay` sends each
            protocol_params={"relay_override": self.relay},
            protected=band_ids,
            batch_per_slot=4,
        )


def _run_relay_point(point: RelaySweepPoint) -> RelayPoint:
    """Rebuild and run one relay-count candidate (worker-safe)."""
    report = run_scenario(point.scenario())
    return RelayPoint(
        relay_count=point.relay,
        label=point.label,
        success=report.success,
        max_sent=report.costs.good_max,
    )


def run_relay_sweep(
    *,
    r: int = 2,
    t: int = 2,
    mf: int = 3,
    width: int = 30,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[RelayPoint, ...]:
    """Success vs relay count under the stripe adversary (budget = relay)."""
    m_prime = protocol_b_relay_count(r, t, mf)
    candidates: dict[int, str] = {}
    for relay, label in (
        (m0(r, t, mf) - 1, "m0 - 1"),
        (m_prime - 1, "m' - 1"),
        (m_prime, "m' (protocol B)"),
        (2 * m0(r, t, mf), "2*m0"),
        (koo_budget(t, mf), "2tmf+1 (Koo)"),
    ):
        # Distinct named points can coincide numerically (m' == 2*m0 for
        # some parameters); keep both names on one row.
        candidates[relay] = (
            f"{candidates[relay]} = {label}" if relay in candidates else label
        )
    points = [
        RelaySweepPoint(r=r, t=t, mf=mf, width=width, relay=relay, label=label)
        for relay, label in sorted(candidates.items())
        if relay >= 1
    ]
    result = parallel_sweep(
        points,
        _run_relay_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return tuple(result.results)


# -- (b) growth shape (Figure 2 scenario, homogeneous vs cross) ----------------


@dataclass(frozen=True)
class GrowthShapeResult:
    homogeneous_success: bool
    homogeneous_avg_budget: float
    heterogeneous_success: bool
    heterogeneous_avg_budget: float


@dataclass(frozen=True)
class GrowthShapePoint:
    """One growth-shape configuration of the E9b pair (picklable).

    ``shape`` is ``"square"`` (homogeneous m0+1, the Figure-2 instance)
    or ``"cross"`` (the heterogeneous Theorem-3 assignment).
    """

    shape: str
    max_rounds: int = 200

    def scenario(self) -> ScenarioSpec:
        """The cross configuration's scenario as a spec.

        The cross shape pairs Theorem 3's heterogeneous assignment with
        the same registered clairvoyant Figure-2 defense (historically an
        ad-hoc ``adversary_factory`` lambda — behavior ``"custom"``).
        The square shape is the E2 paper instance itself and runs through
        :func:`repro.experiments.e2_figure2.run_figure2`.
        """
        if self.shape != "cross":
            raise ValueError(f"no scenario spec for growth shape {self.shape!r}")
        return ScenarioSpec(
            grid=GridSpec(width=WIDTH, height=WIDTH, r=R, torus=True),
            t=T,
            mf=MF,
            placement=LatticePlacement(x0=LATTICE[0], y0=LATTICE[1], cluster=1),
            protocol="heter",
            behavior="figure2-defense",
            max_rounds=self.max_rounds,
            batch_per_slot=25,
        )


@dataclass(frozen=True)
class GrowthShapeRun:
    """Per-shape record aggregated into :class:`GrowthShapeResult`."""

    shape: str
    success: bool
    avg_budget: float


def _run_growth_point(point: GrowthShapePoint) -> GrowthShapeRun:
    """Rebuild and run one growth-shape configuration (worker-safe)."""
    if point.shape == "square":
        fig2 = run_figure2()
        return GrowthShapeRun(
            shape="square",
            success=not fig2.broadcast_failed,
            avg_budget=float(M),
        )
    if point.shape != "cross":
        raise ValueError(f"unknown growth shape {point.shape!r}")
    heter = run_scenario(point.scenario())
    return GrowthShapeRun(
        shape="cross",
        success=heter.success,
        avg_budget=heter.assignment.average,
    )


def run_growth_shape(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> GrowthShapeResult:
    """Same clairvoyant Figure-2 defense; square growth vs cross growth.

    The two configurations ride :func:`repro.runner.parallel.sweep` as
    picklable points, so they run in parallel workers and memoize like
    every other experiment (historically this pair was a serial spot).
    """
    result = parallel_sweep(
        (GrowthShapePoint(shape="square"), GrowthShapePoint(shape="cross")),
        _run_growth_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    square, cross = result.results
    return GrowthShapeResult(
        homogeneous_success=square.success,
        homogeneous_avg_budget=square.avg_budget,
        heterogeneous_success=cross.success,
        heterogeneous_avg_budget=cross.avg_budget,
    )


# -- (c) NACK quiet window ------------------------------------------------------


@dataclass(frozen=True)
class QuietWindowPoint:
    window: int
    success_rate: float
    avg_rounds: float
    avg_max_sent: float


@dataclass(frozen=True)
class QuietWindowSweepPoint:
    """One (window, seed) B_reactive run of the E9c ablation (picklable)."""

    window: int
    seed: int
    width: int
    mf: int
    bad_count: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        return ScenarioSpec(
            grid=GridSpec(width=self.width, height=self.width, r=1, torus=True),
            t=1,
            mf=self.mf,
            mmax=10**6,
            placement=RandomPlacement(
                t=1, count=self.bad_count, seed=500 + self.seed
            ),
            protocol="reactive",
            seed=self.seed,
            protocol_params={"quiet_limit": self.window},
        )


@dataclass(frozen=True)
class QuietWindowRun:
    """Per-run record aggregated into :class:`QuietWindowPoint`."""

    window: int
    seed: int
    success: bool
    rounds: int
    max_sent: int


def _run_quiet_window_point(point: QuietWindowSweepPoint) -> QuietWindowRun:
    """Rebuild and run one quiet-window scenario (worker-safe)."""
    report = run_scenario(point.scenario())
    return QuietWindowRun(
        window=point.window,
        seed=point.seed,
        success=report.success,
        rounds=report.stats.rounds,
        max_sent=max(
            node.data_sent + node.nacks_sent for node in report.nodes.values()
        ),
    )


def run_quiet_window(
    *,
    windows: tuple[int, ...] = (1, 8),
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
    width: int = 18,
    mf: int = 25,
    bad_count: int = 24,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[QuietWindowPoint, ...]:
    """B_reactive quiet-window sensitivity (r=1: paper window is 8).

    **Finding (documented in EXPERIMENTS.md):** even a 1-round window
    keeps the broadcast reliable in this model, because a jam is locally
    *audible garbage* — every node within range of the jammer (including,
    for near jams, the victim sender and alternative endorsers) registers
    a failure indication the same round and keeps retransmitting, and L∞
    geometry guarantees some endorser of every receiver sits next to any
    jammer. The paper's ``(2r+1)^2 - 1`` window is the conservative bound
    that covers a full TDMA period, ensuring every receiver's NACK slot
    occurs inside the window even under maximal schedule load; the
    measured cost difference between windows is what this ablation
    quantifies.
    """
    sweep_points = [
        QuietWindowSweepPoint(
            window=window, seed=seed, width=width, mf=mf, bad_count=bad_count
        )
        for window in windows
        for seed in seeds
    ]
    result = parallel_sweep(
        sweep_points,
        _run_quiet_window_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    points = []
    for window in windows:
        runs = [run_ for run_ in result.results if run_.window == window]
        points.append(
            QuietWindowPoint(
                window=window,
                success_rate=sum(run_.success for run_ in runs) / len(runs),
                avg_rounds=sum(run_.rounds for run_ in runs) / len(runs),
                avg_max_sent=sum(run_.max_sent for run_ in runs) / len(runs),
            )
        )
    return tuple(points)


def table_a(points: tuple[RelayPoint, ...]) -> str:
    return format_table(
        ["relay count", "label", "success", "max sent"],
        [[p.relay_count, p.label, p.success, p.max_sent] for p in points],
        title=(
            "E9a - relay-count ablation (stripe adversary): below m0 the band "
            "starves; m' is the paper-guaranteed sufficient count"
        ),
    )


def table_b(result: GrowthShapeResult) -> str:
    return format_table(
        ["configuration", "success", "avg good budget"],
        [
            ["homogeneous m0+1 (square growth, Fig 2)",
             result.homogeneous_success, result.homogeneous_avg_budget],
            ["heterogeneous cross (circular growth, Thm 3)",
             result.heterogeneous_success, result.heterogeneous_avg_budget],
        ],
        title="E9b - growth-shape ablation on the Figure 2 scenario",
    )


def table_c(points: tuple[QuietWindowPoint, ...]) -> str:
    return format_table(
        ["quiet window (rounds)", "success rate", "avg rounds", "avg max sent"],
        [[p.window, p.success_rate, p.avg_rounds, p.avg_max_sent] for p in points],
        title=(
            "E9c - NACK quiet-window ablation (paper: (2r+1)^2 - 1 = 8 for "
            "r=1); reliability is window-insensitive here, cost is not"
        ),
    )


@dataclass(frozen=True)
class AblationResult:
    """All three E9 studies, for the registry/CLI path."""

    relay: tuple[RelayPoint, ...]
    growth: GrowthShapeResult
    quiet: tuple[QuietWindowPoint, ...]


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> AblationResult:
    """Registry entry point: all three ablations.

    All three studies — including the growth-shape pair, historically a
    serial spot — fan out over the parallel substrate and memoize.
    """
    return AblationResult(
        relay=run_relay_sweep(workers=workers, cache=cache, progress=progress),
        growth=run_growth_shape(workers=workers, cache=cache, progress=progress),
        quiet=run_quiet_window(workers=workers, cache=cache, progress=progress),
    )


def table(result: AblationResult) -> str:
    return "\n\n".join(
        [table_a(result.relay), table_b(result.growth), table_c(result.quiet)]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table_a(run_relay_sweep()))
    print()
    print(table_b(run_growth_shape()))
    print()
    print(table_c(run_quiet_window()))


if __name__ == "__main__":  # pragma: no cover
    main()
