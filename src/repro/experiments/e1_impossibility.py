"""E1 — Theorem 1 / Figure 1: stripe impossibility as a function of ``m``.

A victim band of the torus is fenced by two Theorem-1 stripes (Figure 1's
construction; two stripes because a torus has no 'far side'). We sweep
the homogeneous good budget ``m`` and measure the fraction of the band
that accepts ``Vtrue`` under the threshold-guard jammer:

- ``m < m0``  — the band is fully starved (broadcast fails);
- ``m >= 2*m0`` — the band is fully covered (Theorem 2);
- ``m in [m0, 2*m0)`` — the paper's open region; with this placement the
  band survives already at ``m0`` (consistent with the paper, which shows
  a *different* placement — Figure 2 — beating ``m0 + 1``).

**Reproduction note (boundary tightness).** The paper's lower-bound
counting charges each receiver's ``t*mf`` corruption budget
independently. In a faithful collision geometry one jam is shared by all
common neighbors of jammer and victim, and for razor-tight parameter
points (``g*m`` within ~coverage-width of ``2*t*mf + 1``) the required
receiver-corruptions can exceed what any jam schedule supplies, so the
adversary cannot always realize ``m = m0 - 1`` failures (e.g. r=2, t=2,
mf=2). The default parameters here have the necessary slack; experiment
E8 maps the resulting empirical boundary against Corollary 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import two_stripe_band
from repro.analysis.bounds import m0
from repro.network.grid import Grid, GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario
from repro.types import NodeId


@dataclass(frozen=True)
class ImpossibilityPoint:
    m: int
    m_over_m0: float
    band_decided: int
    band_total: int
    success: bool
    jams_spent: int

    @property
    def band_fraction(self) -> float:
        return self.band_decided / self.band_total if self.band_total else 1.0


@dataclass(frozen=True)
class ImpossibilityResult:
    r: int
    t: int
    mf: int
    m0: int
    points: tuple[ImpossibilityPoint, ...]

    @property
    def fails_below_m0(self) -> bool:
        return all(not p.success for p in self.points if p.m < self.m0)

    @property
    def succeeds_at_2m0(self) -> bool:
        return all(p.success for p in self.points if p.m >= 2 * self.m0)


@dataclass(frozen=True)
class StripePoint:
    """One self-contained sweep point: everything a worker needs."""

    r: int
    t: int
    mf: int
    width: int
    height: int
    band_height: int
    below_y0: int
    m: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec.

        The protected set *is* the victim band, so the band ids the
        report analysis needs travel inside the spec.
        """
        grid_spec = GridSpec(
            width=self.width, height=self.height, r=self.r, torus=True
        )
        grid = Grid(grid_spec)
        placement, band_rows = two_stripe_band(
            grid, t=self.t, band_height=self.band_height, below_y0=self.below_y0
        )
        band_ids = tuple(
            grid.id_of((x, y)) for y in band_rows for x in range(self.width)
        )
        return ScenarioSpec(
            grid=grid_spec,
            t=self.t,
            mf=self.mf,
            placement=placement,
            protocol="b",
            m=self.m,
            protected=band_ids,
            batch_per_slot=4,
        )


def _run_stripe_point(point: StripePoint) -> ImpossibilityPoint:
    """Rebuild the stripe scenario from the point and run it (worker-safe)."""
    spec = point.scenario()
    report = run_scenario(spec)
    band_ids: tuple[NodeId, ...] = spec.protected
    band_good = [nid for nid in band_ids if nid in report.nodes]
    decided = sum(1 for nid in band_good if report.nodes[nid].decided)
    lower = m0(point.r, point.t, point.mf)
    return ImpossibilityPoint(
        m=point.m,
        m_over_m0=point.m / lower,
        band_decided=decided,
        band_total=len(band_good),
        success=report.success,
        jams_spent=report.costs.bad_total,
    )


def run_impossibility(
    *,
    r: int = 2,
    t: int = 2,
    mf: int = 3,
    width: int = 30,
    height: int = 30,
    band_height: int = 6,
    below_y0: int = 8,
    ms: tuple[int, ...] | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ImpossibilityResult:
    """Sweep ``m`` through the stripe scenario and record band coverage."""
    lower = m0(r, t, mf)
    if ms is None:
        ms = tuple(sorted({1, lower - 1, lower, lower + 1, 2 * lower, 2 * lower + 1}))
        ms = tuple(m for m in ms if m >= 1)
    points = [
        StripePoint(
            r=r, t=t, mf=mf, width=width, height=height,
            band_height=band_height, below_y0=below_y0, m=m,
        )
        for m in ms
    ]
    result = parallel_sweep(
        points,
        _run_stripe_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return ImpossibilityResult(
        r=r, t=t, mf=mf, m0=lower, points=tuple(result.results)
    )


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ImpossibilityResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_impossibility(workers=workers, cache=cache, progress=progress)


def table(result: ImpossibilityResult) -> str:
    rows = [
        [
            p.m,
            f"{p.m_over_m0:.2f}",
            f"{p.band_decided}/{p.band_total}",
            p.band_fraction,
            p.success,
            p.jams_spent,
            ("fail (Thm 1)" if p.m < result.m0
             else "succeed (Thm 2)" if p.m >= 2 * result.m0
             else "open region"),
        ]
        for p in result.points
    ]
    return format_table(
        ["m", "m/m0", "band decided", "fraction", "success", "jams", "paper"],
        rows,
        title=(
            f"E1 - stripe impossibility (r={result.r}, t={result.t}, "
            f"mf={result.mf}, m0={result.m0})"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_impossibility()))


if __name__ == "__main__":  # pragma: no cover
    main()
