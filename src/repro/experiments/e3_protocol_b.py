"""E3 — Theorem 2: protocol B achieves reliable broadcast at ``m = 2*m0``.

Sweeps (r, t, mf) configurations; for each, runs protocol B with the
theorem's sufficient budget against (a) the stripe adversary guarding a
victim band and (b) a random locally-bounded placement with the
threshold-guard jammer protecting everyone. Records success, the maximum
per-node spend (must be the relay count ``m' <= 2*m0``), and the cost
ratio to the lower bound ``m0`` (paper: within twice the lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.placement import RandomPlacement, two_stripe_band
from repro.analysis.bounds import m0, protocol_b_relay_count
from repro.network.grid import Grid, GridSpec
from repro.runner.broadcast_run import ThresholdRunConfig, run_threshold_broadcast
from repro.runner.report import format_table

#: Default sweep: (r, t, mf) triples exercising low/high collision budgets
#: and adversary densities.
DEFAULT_CONFIGS: tuple[tuple[int, int, int], ...] = (
    (1, 1, 1),
    (1, 1, 3),
    (1, 2, 2),
    (2, 2, 3),
    (2, 4, 2),
    (2, 6, 1),
    (2, 3, 4),
)


@dataclass(frozen=True)
class TheoremTwoPoint:
    r: int
    t: int
    mf: int
    m0: int
    m: int
    relay_count: int
    placement: str
    success: bool
    max_good_sent: int
    cost_over_lower_bound: float


@dataclass(frozen=True)
class TheoremTwoResult:
    points: tuple[TheoremTwoPoint, ...]

    @property
    def all_succeed(self) -> bool:
        return all(p.success for p in self.points)

    @property
    def cost_within_twice_lower_bound(self) -> bool:
        return all(p.max_good_sent <= 2 * p.m0 for p in self.points)


def _grid_for(r: int) -> GridSpec:
    side = 2 * r + 1
    dim = max(6 * side, 4 * side)  # comfortably larger than two stripes
    return GridSpec(width=dim, height=dim, r=r, torus=True)


def run_theorem2(
    configs: tuple[tuple[int, int, int], ...] = DEFAULT_CONFIGS,
    *,
    seed: int = 7,
) -> TheoremTwoResult:
    points: list[TheoremTwoPoint] = []
    for r, t, mf in configs:
        spec = _grid_for(r)
        grid = Grid(spec)
        lower = m0(r, t, mf)
        m = 2 * lower
        relay = protocol_b_relay_count(r, t, mf)

        stripe_placement, band_rows = two_stripe_band(
            grid, t=t, band_height=2 * r + 2, below_y0=3 * r
        )
        band_ids = [
            grid.id_of((x, y)) for y in band_rows for x in range(spec.width)
        ]
        random_placement = RandomPlacement(
            t=t, count=grid.n // (2 * (2 * r + 1) ** 2), seed=seed
        )

        for label, placement, protected in (
            ("stripe-band", stripe_placement, band_ids),
            ("random", random_placement, None),
        ):
            cfg = ThresholdRunConfig(
                spec=spec,
                t=t,
                mf=mf,
                placement=placement,
                protocol="b",
                m=m,
                protected=protected,
                batch_per_slot=4,
            )
            report = run_threshold_broadcast(cfg)
            points.append(
                TheoremTwoPoint(
                    r=r,
                    t=t,
                    mf=mf,
                    m0=lower,
                    m=m,
                    relay_count=relay,
                    placement=label,
                    success=report.success,
                    max_good_sent=report.costs.good_max,
                    cost_over_lower_bound=report.costs.good_max / lower,
                )
            )
    return TheoremTwoResult(points=tuple(points))


def table(result: TheoremTwoResult) -> str:
    rows = [
        [
            p.r,
            p.t,
            p.mf,
            p.m0,
            p.m,
            p.relay_count,
            p.placement,
            p.success,
            p.max_good_sent,
            p.cost_over_lower_bound,
        ]
        for p in result.points
    ]
    return format_table(
        ["r", "t", "mf", "m0", "m=2m0", "relay m'", "placement",
         "success", "max sent", "sent/m0"],
        rows,
        title="E3 - Theorem 2: protocol B with m = 2*m0 (cost within 2x lower bound)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_theorem2()))


if __name__ == "__main__":  # pragma: no cover
    main()
