"""E3 — Theorem 2: protocol B achieves reliable broadcast at ``m = 2*m0``.

Sweeps (r, t, mf) configurations; for each, runs protocol B with the
theorem's sufficient budget against (a) the stripe adversary guarding a
victim band and (b) a random locally-bounded placement with the
threshold-guard jammer protecting everyone. Records success, the maximum
per-node spend (must be the relay count ``m' <= 2*m0``), and the cost
ratio to the lower bound ``m0`` (paper: within twice the lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import RandomPlacement, two_stripe_band
from repro.analysis.bounds import m0, protocol_b_relay_count
from repro.network.grid import Grid, GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario

#: Default sweep: (r, t, mf) triples exercising low/high collision budgets
#: and adversary densities.
DEFAULT_CONFIGS: tuple[tuple[int, int, int], ...] = (
    (1, 1, 1),
    (1, 1, 3),
    (1, 2, 2),
    (2, 2, 3),
    (2, 4, 2),
    (2, 6, 1),
    (2, 3, 4),
)


@dataclass(frozen=True)
class TheoremTwoPoint:
    r: int
    t: int
    mf: int
    m0: int
    m: int
    relay_count: int
    placement: str
    success: bool
    max_good_sent: int
    cost_over_lower_bound: float


@dataclass(frozen=True)
class TheoremTwoResult:
    points: tuple[TheoremTwoPoint, ...]

    @property
    def all_succeed(self) -> bool:
        return all(p.success for p in self.points)

    @property
    def cost_within_twice_lower_bound(self) -> bool:
        return all(p.max_good_sent <= 2 * p.m0 for p in self.points)


def _grid_for(r: int) -> GridSpec:
    side = 2 * r + 1
    dim = max(6 * side, 4 * side)  # comfortably larger than two stripes
    return GridSpec(width=dim, height=dim, r=r, torus=True)


@dataclass(frozen=True)
class TheoremTwoSweepPoint:
    """One (r, t, mf, placement) scenario, self-contained for workers."""

    r: int
    t: int
    mf: int
    placement: str  # "stripe-band" | "random"
    seed: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        r, t, mf = self.r, self.t, self.mf
        spec = _grid_for(r)
        grid = Grid(spec)
        if self.placement == "stripe-band":
            placement, band_rows = two_stripe_band(
                grid, t=t, band_height=2 * r + 2, below_y0=3 * r
            )
            protected = tuple(
                grid.id_of((x, y)) for y in band_rows for x in range(spec.width)
            )
        else:
            placement = RandomPlacement(
                t=t, count=grid.n // (2 * (2 * r + 1) ** 2), seed=self.seed
            )
            protected = None
        return ScenarioSpec(
            grid=spec,
            t=t,
            mf=mf,
            placement=placement,
            protocol="b",
            m=2 * m0(r, t, mf),
            protected=protected,
            batch_per_slot=4,
        )


def _run_theorem2_point(point: TheoremTwoSweepPoint) -> TheoremTwoPoint:
    """Rebuild and run one Theorem-2 scenario (worker-safe)."""
    r, t, mf = point.r, point.t, point.mf
    lower = m0(r, t, mf)
    m = 2 * lower
    report = run_scenario(point.scenario())
    return TheoremTwoPoint(
        r=r,
        t=t,
        mf=mf,
        m0=lower,
        m=m,
        relay_count=protocol_b_relay_count(r, t, mf),
        placement=point.placement,
        success=report.success,
        max_good_sent=report.costs.good_max,
        cost_over_lower_bound=report.costs.good_max / lower,
    )


def run_theorem2(
    configs: tuple[tuple[int, int, int], ...] = DEFAULT_CONFIGS,
    *,
    seed: int = 7,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> TheoremTwoResult:
    points = [
        TheoremTwoSweepPoint(r=r, t=t, mf=mf, placement=label, seed=seed)
        for r, t, mf in configs
        for label in ("stripe-band", "random")
    ]
    result = parallel_sweep(
        points,
        _run_theorem2_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return TheoremTwoResult(points=tuple(result.results))


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> TheoremTwoResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_theorem2(workers=workers, cache=cache, progress=progress)


def table(result: TheoremTwoResult) -> str:
    rows = [
        [
            p.r,
            p.t,
            p.mf,
            p.m0,
            p.m,
            p.relay_count,
            p.placement,
            p.success,
            p.max_good_sent,
            p.cost_over_lower_bound,
        ]
        for p in result.points
    ]
    return format_table(
        ["r", "t", "mf", "m0", "m=2m0", "relay m'", "placement",
         "success", "max sent", "sent/m0"],
        rows,
        title="E3 - Theorem 2: protocol B with m = 2*m0 (cost within 2x lower bound)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_theorem2()))


if __name__ == "__main__":  # pragma: no cover
    main()
