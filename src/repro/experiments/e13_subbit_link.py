"""E13 (validation) — the sub-bit link layer vs the message-level model.

The network-scale B_reactive simulation (E7) abstracts every coded local
broadcast to message level: an attack yields detected corruption except
with probability ``1/(2^L - 1)``, and each attack costs the sender one
retransmission. This experiment validates that abstraction against the
*faithful* sub-bit simulation (:mod:`repro.coding.linklayer`): hundreds
of single-hop sessions with a budgeted sub-bit attacker, measuring

- data rounds per session vs the model's ``attacks + 1``;
- delivery rate vs the model's ``1 - O(2^-L)``;
- cancellation success rate vs ``1/(2^L - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.linklayer import run_link_session
from repro.coding.params import attack_success_probability
from repro.runner.report import format_table


@dataclass(frozen=True)
class LinkValidationResult:
    sessions: int
    block_length: int
    attacker_budget: int
    delivered_all: int
    exact_cost_matches: int
    total_cancellation_attempts: int
    total_cancellation_successes: int
    total_forgeries: int

    @property
    def delivery_rate(self) -> float:
        return self.delivered_all / self.sessions

    @property
    def cost_model_match_rate(self) -> float:
        return self.exact_cost_matches / self.sessions

    @property
    def measured_cancellation_rate(self) -> float:
        if not self.total_cancellation_attempts:
            return 0.0
        return self.total_cancellation_successes / self.total_cancellation_attempts

    @property
    def analytic_cancellation_rate(self) -> float:
        return attack_success_probability(self.block_length)


def run_link_validation(
    *,
    sessions: int = 300,
    k: int = 16,
    block_length: int = 8,
    n_receivers: int = 8,
    attacker_budget: int = 3,
    seed: int = 42,
) -> LinkValidationResult:
    delivered = 0
    exact_cost = 0
    cancel_attempts = 0
    cancel_successes = 0
    forgeries = 0
    for index in range(sessions):
        outcome = run_link_session(
            k=k,
            block_length=block_length,
            n_receivers=n_receivers,
            attacker_budget=attacker_budget,
            seed=seed + index,
        )
        delivered += outcome.all_delivered
        # Model: every attack on DATA costs one retransmission. Attacks on
        # NACKs don't change the data count, so the criterion is
        # data_rounds <= attacks + 1 (attacks counts NACK attacks too).
        if outcome.data_rounds <= outcome.attacks + 1:
            exact_cost += 1
        forgeries += outcome.undetected_forgeries

    # Second pass with explicit attacker objects (cancellations only) to
    # aggregate the 1->0 success-rate statistics.
    import random as _random

    from repro.coding.chain import ChainCode
    from repro.coding.channel import UnidirectionalChannel
    from repro.coding.linklayer import CodedLinkSession, LinkAttacker
    from repro.coding.subbit import SubbitCodec

    for index in range(sessions):
        rng = _random.Random(10_000 + seed + index)
        codec = SubbitCodec(block_length=block_length, rng=_random.Random(index))
        attacker = LinkAttacker(
            channel=UnidirectionalChannel(codec),
            rng=rng,
            budget=attacker_budget,
            inject_fraction=0.0,  # cancellations only, to measure the rate
        )
        session = CodedLinkSession(
            message=tuple(_random.Random(index + 1).getrandbits(1) for _ in range(k)),
            chain=ChainCode(k),
            codec=codec,
            attacker=attacker,
            n_receivers=n_receivers,
        )
        session.run()
        cancel_attempts += attacker.cancellations_attempted
        cancel_successes += attacker.cancellations_succeeded

    return LinkValidationResult(
        sessions=sessions,
        block_length=block_length,
        attacker_budget=attacker_budget,
        delivered_all=delivered,
        exact_cost_matches=exact_cost,
        total_cancellation_attempts=cancel_attempts,
        total_cancellation_successes=cancel_successes,
        total_forgeries=forgeries,
    )


def table(result: LinkValidationResult) -> str:
    rows = [
        ["sessions", result.sessions],
        ["sub-bit block length L", result.block_length],
        ["attacker budget per session", result.attacker_budget],
        ["delivery rate", f"{result.delivery_rate:.4f}"],
        ["sessions with data rounds <= attacks + 1",
         f"{result.cost_model_match_rate:.4f}"],
        ["undetected forgeries", result.total_forgeries],
        ["measured 1->0 cancellation rate",
         f"{result.measured_cancellation_rate:.4f}"],
        ["analytic 1/(2^L - 1)", f"{result.analytic_cancellation_rate:.4f}"],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=(
            "E13 - sub-bit link layer validates the message-level "
            "abstraction used by E7"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_link_validation()))


if __name__ == "__main__":  # pragma: no cover
    main()
