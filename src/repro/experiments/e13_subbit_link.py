"""E13 (validation) — the sub-bit link layer vs the message-level model.

The network-scale B_reactive simulation (E7) abstracts every coded local
broadcast to message level: an attack yields detected corruption except
with probability ``1/(2^L - 1)``, and each attack costs the sender one
retransmission. This experiment validates that abstraction against the
*faithful* sub-bit simulation (:mod:`repro.coding.linklayer`): hundreds
of single-hop sessions with a budgeted sub-bit attacker, measuring

- data rounds per session vs the model's ``attacks + 1``;
- delivery rate vs the model's ``1 - O(2^-L)``;
- cancellation success rate vs ``1/(2^L - 1)``.

A pure coding-level study (no grid, placement, or protocol): its sweep
points stay plain parameter dataclasses rather than
:class:`~repro.scenario.ScenarioSpec` instances.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Callable

from repro.coding.chain import ChainCode
from repro.coding.channel import UnidirectionalChannel
from repro.coding.linklayer import CodedLinkSession, LinkAttacker, run_link_session
from repro.coding.params import attack_success_probability
from repro.coding.subbit import SubbitCodec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table


@dataclass(frozen=True)
class LinkValidationResult:
    sessions: int
    block_length: int
    attacker_budget: int
    delivered_all: int
    exact_cost_matches: int
    total_cancellation_attempts: int
    total_cancellation_successes: int
    total_forgeries: int

    @property
    def delivery_rate(self) -> float:
        return self.delivered_all / self.sessions

    @property
    def cost_model_match_rate(self) -> float:
        return self.exact_cost_matches / self.sessions

    @property
    def measured_cancellation_rate(self) -> float:
        if not self.total_cancellation_attempts:
            return 0.0
        return self.total_cancellation_successes / self.total_cancellation_attempts

    @property
    def analytic_cancellation_rate(self) -> float:
        return attack_success_probability(self.block_length)


@dataclass(frozen=True)
class LinkSessionChunk:
    """A contiguous range of single-hop sessions (picklable sweep point).

    Per-session seeds derive from the absolute session index, so the
    partition into chunks cannot change any session's randomness.
    """

    start: int
    count: int
    k: int
    block_length: int
    n_receivers: int
    attacker_budget: int
    seed: int


@dataclass(frozen=True)
class LinkChunkStats:
    """Partial sums over one chunk, merged by :func:`run_link_validation`."""

    delivered_all: int
    exact_cost_matches: int
    forgeries: int
    cancellation_attempts: int
    cancellation_successes: int


def _run_link_chunk(chunk: LinkSessionChunk) -> LinkChunkStats:
    """Run both validation passes over one session range (worker-safe)."""
    delivered = 0
    exact_cost = 0
    forgeries = 0
    for index in range(chunk.start, chunk.start + chunk.count):
        outcome = run_link_session(
            k=chunk.k,
            block_length=chunk.block_length,
            n_receivers=chunk.n_receivers,
            attacker_budget=chunk.attacker_budget,
            seed=chunk.seed + index,
        )
        delivered += outcome.all_delivered
        # Model: every attack on DATA costs one retransmission. Attacks on
        # NACKs don't change the data count, so the criterion is
        # data_rounds <= attacks + 1 (attacks counts NACK attacks too).
        if outcome.data_rounds <= outcome.attacks + 1:
            exact_cost += 1
        forgeries += outcome.undetected_forgeries

    # Second pass with explicit attacker objects (cancellations only) to
    # aggregate the 1->0 success-rate statistics.
    cancel_attempts = 0
    cancel_successes = 0
    for index in range(chunk.start, chunk.start + chunk.count):
        rng = _random.Random(10_000 + chunk.seed + index)
        codec = SubbitCodec(
            block_length=chunk.block_length, rng=_random.Random(index)
        )
        attacker = LinkAttacker(
            channel=UnidirectionalChannel(codec),
            rng=rng,
            budget=chunk.attacker_budget,
            inject_fraction=0.0,  # cancellations only, to measure the rate
        )
        session = CodedLinkSession(
            message=tuple(
                _random.Random(index + 1).getrandbits(1) for _ in range(chunk.k)
            ),
            chain=ChainCode(chunk.k),
            codec=codec,
            attacker=attacker,
            n_receivers=chunk.n_receivers,
        )
        session.run()
        cancel_attempts += attacker.cancellations_attempted
        cancel_successes += attacker.cancellations_succeeded

    return LinkChunkStats(
        delivered_all=delivered,
        exact_cost_matches=exact_cost,
        forgeries=forgeries,
        cancellation_attempts=cancel_attempts,
        cancellation_successes=cancel_successes,
    )


def run_link_validation(
    *,
    sessions: int = 300,
    k: int = 16,
    block_length: int = 8,
    n_receivers: int = 8,
    attacker_budget: int = 3,
    seed: int = 42,
    chunk_sessions: int = 50,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> LinkValidationResult:
    chunks = [
        LinkSessionChunk(
            start=start,
            count=min(chunk_sessions, sessions - start),
            k=k,
            block_length=block_length,
            n_receivers=n_receivers,
            attacker_budget=attacker_budget,
            seed=seed,
        )
        for start in range(0, sessions, chunk_sessions)
    ]
    result = parallel_sweep(
        chunks,
        _run_link_chunk,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    stats = list(result.results)
    return LinkValidationResult(
        sessions=sessions,
        block_length=block_length,
        attacker_budget=attacker_budget,
        delivered_all=sum(s.delivered_all for s in stats),
        exact_cost_matches=sum(s.exact_cost_matches for s in stats),
        total_cancellation_attempts=sum(s.cancellation_attempts for s in stats),
        total_cancellation_successes=sum(s.cancellation_successes for s in stats),
        total_forgeries=sum(s.forgeries for s in stats),
    )


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> LinkValidationResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_link_validation(workers=workers, cache=cache, progress=progress)


def table(result: LinkValidationResult) -> str:
    rows = [
        ["sessions", result.sessions],
        ["sub-bit block length L", result.block_length],
        ["attacker budget per session", result.attacker_budget],
        ["delivery rate", f"{result.delivery_rate:.4f}"],
        ["sessions with data rounds <= attacks + 1",
         f"{result.cost_model_match_rate:.4f}"],
        ["undetected forgeries", result.total_forgeries],
        ["measured 1->0 cancellation rate",
         f"{result.measured_cancellation_rate:.4f}"],
        ["analytic 1/(2^L - 1)", f"{result.analytic_cancellation_rate:.4f}"],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=(
            "E13 - sub-bit link layer validates the message-level "
            "abstraction used by E7"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_link_validation()))


if __name__ == "__main__":  # pragma: no cover
    main()
