"""E10 (extension) — exploring the paper's open region ``m ∈ (m0, 2m0)``.

Section 6 leaves open whether broadcast is possible for homogeneous
budgets strictly between the lower bound ``m0`` and Theorem 2's ``2*m0``.
The paper's own evidence is one-sided: Figure 2 exhibits a placement
beating ``m0 + 1`` for one parameter set. This experiment maps the open
region empirically:

for each budget fraction, we attack with *both* worst-case constructions
(the stripe band and the Figure-2 style corner-starvation lattice with a
clairvoyant defense computed for the actual parameters) and record
whether any of them wins. A point is *empirically possible* only if every
implemented adversary fails.

Outcome (see EXPERIMENTS.md): the stripe never beats ``m >= m0``; the
Figure-2 corner construction is fundable exactly for
``m <= 3*t*mf/50`` (at r=4, t=1), i.e. a thin band
``m0 <= m <= 1.05*m0`` of the open region is breakable and everything
above it resists every implemented attack. This quantifies how the
answer to the paper's open question must depend on ``mf`` (through the
defense's budget arithmetic), not only on the ratio ``m/m0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.bounds import m0
from repro.errors import ReproError
from repro.experiments import e2_figure2
from repro.network.grid import Grid, GridSpec
from repro.adversary.placement import two_stripe_band
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


@dataclass(frozen=True)
class UncertainPoint:
    m: int
    m_over_m0: float
    stripe_wins: bool
    lattice_wins: bool

    @property
    def empirically_possible(self) -> bool:
        return not (self.stripe_wins or self.lattice_wins)


@dataclass(frozen=True)
class UncertainRegionResult:
    r: int
    t: int
    mf: int
    m0: int
    corner_suppliers: int
    lattice_breakable_until: int
    points: tuple[UncertainPoint, ...]


def lattice_breakable_max_m(mf: int, t: int = 1) -> int:
    """Largest ``m`` the Figure-2 construction can starve (r=4, t=1).

    From :func:`repro.experiments.e2_figure2.validate_figure2_attack`:
    the defender funds 16 quadrant suppliers (16*m jams) plus two
    mid-side quotas ``q = 17*m - t*mf`` each, within its budget ``mf``:
    ``16*m + 2*max(0, 17*m - t*mf) <= mf`` ⟹ ``m <= 3*t*mf / 50`` once
    the quota is active (and ``q <= m`` ⟹ ``m <= t*mf/16``, which is
    looser).
    """
    return (3 * t * mf) // 50


def stripe_scenario(spec: GridSpec, t: int, mf: int, m: int) -> ScenarioSpec:
    """The stripe-band attack on one budget point, as a spec."""
    grid = Grid(spec)
    placement, band_rows = two_stripe_band(
        grid, t=t, band_height=2 * spec.r + 2, below_y0=3 * spec.r
    )
    band = tuple(
        grid.id_of((x, y)) for y in band_rows for x in range(spec.width)
    )
    return ScenarioSpec(
        grid=spec,
        t=t,
        mf=mf,
        placement=placement,
        protocol="b",
        m=m,
        protected=band,
        batch_per_slot=8,
    )


def _stripe_attack_wins(spec: GridSpec, t: int, mf: int, m: int) -> bool:
    report = run_scenario(stripe_scenario(spec, t, mf, m))
    return not report.success


def _lattice_attack_wins(m: int, mf: int) -> bool:
    """Figure-2 style attack at r=4, t=1 with budget-scaled quotas."""
    if m * 16 > 2 * mf:  # quadrant jams alone exceed the defender budget
        # The clairvoyant defense cannot be funded; the attack cannot win.
        return False
    try:
        result = e2_figure2.run_figure2_generalized(m=m, mf=mf)
    except ReproError:
        return False
    return result.broadcast_failed


@dataclass(frozen=True)
class UncertainSweepPoint:
    """One budget fraction of the open-region map (picklable)."""

    r: int
    t: int
    mf: int
    m: int


def _run_uncertain_point(point: UncertainSweepPoint) -> UncertainPoint:
    """Attack one budget point with every implemented adversary (worker-safe)."""
    r, t, mf, m = point.r, point.t, point.mf, point.m
    stripe_spec = GridSpec(
        width=6 * (2 * r + 1), height=6 * (2 * r + 1), r=r, torus=True
    )
    stripe = _stripe_attack_wins(stripe_spec, t, mf, m) if r <= 2 else False
    if r == 4 and t == 1:
        lattice = _lattice_attack_wins(m, mf)
    else:
        lattice = False
    return UncertainPoint(
        m=m,
        m_over_m0=m / m0(r, t, mf),
        stripe_wins=stripe,
        lattice_wins=lattice,
    )


def run_uncertain_region(
    *,
    r: int = 4,
    t: int = 1,
    mf: int = 1000,
    fractions: tuple[float, ...] = (1.0, 1.02, 1.1, 1.3, 1.6, 2.0),
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> UncertainRegionResult:
    lower = m0(r, t, mf)
    corner_suppliers = 2 * (2 * r) * r + 1  # 32 square suppliers + 1 mid-side
    sweep_points = [
        UncertainSweepPoint(r=r, t=t, mf=mf, m=max(lower, round(lower * fraction)))
        for fraction in fractions
    ]
    result = parallel_sweep(
        sweep_points,
        _run_uncertain_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    points = list(result.results)
    return UncertainRegionResult(
        r=r,
        t=t,
        mf=mf,
        m0=lower,
        corner_suppliers=corner_suppliers,
        lattice_breakable_until=lattice_breakable_max_m(mf, t),
        points=tuple(points),
    )


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> UncertainRegionResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_uncertain_region(workers=workers, cache=cache, progress=progress)


def table(result: UncertainRegionResult) -> str:
    rows = [
        [
            p.m,
            f"{p.m_over_m0:.2f}",
            p.stripe_wins,
            p.lattice_wins,
            "breakable" if not p.empirically_possible else "no known attack",
        ]
        for p in result.points
    ]
    title = (
        f"E10 - the open region (m0, 2m0) for r={result.r}, t={result.t}, "
        f"mf={result.mf}: m0={result.m0}; corner construction fundable "
        f"up to m = 3*t*mf/50 = {result.lattice_breakable_until}"
    )
    return format_table(
        ["m", "m/m0", "stripe wins", "corner-lattice wins", "verdict"],
        rows,
        title=title,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_uncertain_region()))


if __name__ == "__main__":  # pragma: no cover
    main()
