"""E7 — Theorem 4: B_reactive with unknown ``mf``.

Runs the reactive protocol (integrity code + NACK local broadcast +
certified propagation) against the coded-channel jammer over many seeds
and checks the theorem's guarantees:

- reliability: with the recommended code length
  ``L = 2 log2 n + log t + log mmax``, per-attack forgery probability is
  ``~1/(n^2 t mmax)`` and every run should deliver ``Vtrue`` everywhere
  (failure probability below ``1/n``);
- message cost: each good node transmits at most ``2(t*mf + 1)`` message
  rounds (data retransmissions + NACKs) — the paper's count — and the
  implied sub-bit budget stays below Theorem 4's closed form;
- with a *forced* large forgery probability (tiny L), wrong acceptances
  do appear, demonstrating what the code is protecting against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import RandomPlacement
from repro.analysis.bounds import max_reactive_t, theorem4_budget
from repro.coding.params import coded_length, subbit_length
from repro.network.grid import GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


@dataclass(frozen=True)
class ReactivePoint:
    seed: int
    success: bool
    decided_fraction: float
    wrong: int
    max_data_sent: int
    max_nacks_sent: int
    max_total_sent: int
    attacks: int
    forgeries: int


@dataclass(frozen=True)
class ReactiveResult:
    r: int
    t: int
    mf: int
    mmax: int
    n: int
    k: int
    L: int
    K: int
    paper_msg_bound: int
    theorem4_subbit_budget: float
    points: tuple[ReactivePoint, ...]
    forced_failure_wrong: int

    @property
    def success_rate(self) -> float:
        return sum(p.success for p in self.points) / len(self.points)

    @property
    def max_message_rounds(self) -> int:
        """Largest per-node message-round count across all runs."""
        return max(p.max_total_sent for p in self.points)

    @property
    def within_paper_bound(self) -> bool:
        """Paper's combined count: ``2 * (t*mf + 1)`` message rounds.

        (The per-kind split can exceed ``t*mf + 1`` individually because
        failure indications from *adjacent* broadcasts also trigger
        retransmissions — see EXPERIMENTS.md, E7 notes.)
        """
        return self.max_message_rounds <= 2 * self.paper_msg_bound


@dataclass(frozen=True)
class ReactiveSweepPoint:
    """One seeded B_reactive run (picklable sweep point)."""

    seed: int
    r: int
    t: int
    mf: int
    mmax: int
    width: int
    bad_count: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        return ScenarioSpec(
            grid=GridSpec(
                width=self.width, height=self.width, r=self.r, torus=True
            ),
            t=self.t,
            mf=self.mf,
            mmax=self.mmax,
            placement=RandomPlacement(
                t=self.t, count=self.bad_count, seed=1000 + self.seed
            ),
            protocol="reactive",
            seed=self.seed,
        )


def _run_reactive_point(point: ReactiveSweepPoint) -> ReactivePoint:
    """Rebuild and run one seeded B_reactive scenario (worker-safe)."""
    report = run_scenario(point.scenario())
    nodes = report.nodes
    return ReactivePoint(
        seed=point.seed,
        success=report.success,
        decided_fraction=report.outcome.decided_fraction,
        wrong=report.outcome.wrong_good,
        max_data_sent=max(node.data_sent for node in nodes.values()),
        max_nacks_sent=max(node.nacks_sent for node in nodes.values()),
        max_total_sent=max(
            node.data_sent + node.nacks_sent for node in nodes.values()
        ),
        attacks=report.adversary.attacks,
        forgeries=report.adversary.successful_forgeries,
    )


def run_reactive(
    *,
    r: int = 1,
    t: int = 1,
    mf: int = 2,
    mmax: int = 10**6,
    width: int = 18,
    k: int = 64,
    bad_count: int = 8,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7),
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ReactiveResult:
    if t > max_reactive_t(r):
        raise ValueError(
            f"B_reactive requires t <= {max_reactive_t(r)} for r={r}"
        )
    spec = GridSpec(width=width, height=width, r=r, torus=True)
    n = spec.n

    sweep_points = [
        ReactiveSweepPoint(
            seed=seed, r=r, t=t, mf=mf, mmax=mmax, width=width,
            bad_count=bad_count,
        )
        for seed in seeds
    ]
    sweep_result = parallel_sweep(
        sweep_points,
        _run_reactive_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    points = list(sweep_result.results)

    # Forced-failure demonstration: p_forge = 0.5 lets spoofed
    # endorsements through and certified propagation accepts wrong values.
    forced = run_scenario(
        ScenarioSpec(
            grid=spec,
            t=t,
            mf=mf,
            mmax=mmax,
            placement=RandomPlacement(t=t, count=bad_count, seed=1234),
            protocol="reactive",
            seed=99,
            behavior_params={"p_forge": 0.5},
        )
    )

    return ReactiveResult(
        r=r,
        t=t,
        mf=mf,
        mmax=mmax,
        n=n,
        k=k,
        L=subbit_length(n, t, mmax),
        K=coded_length(k),
        paper_msg_bound=t * mf + 1,
        theorem4_subbit_budget=theorem4_budget(t, mf, n, mmax, k),
        points=tuple(points),
        forced_failure_wrong=forced.outcome.wrong_good,
    )


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ReactiveResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_reactive(workers=workers, cache=cache, progress=progress)


def table(result: ReactiveResult) -> str:
    runs = format_table(
        ["seed", "success", "decided", "wrong", "max data", "max NACKs",
         "max total", "attacks", "forgeries"],
        [
            [p.seed, p.success, f"{p.decided_fraction:.3f}", p.wrong,
             p.max_data_sent, p.max_nacks_sent, p.max_total_sent,
             p.attacks, p.forgeries]
            for p in result.points
        ],
        title=(
            f"E7 - B_reactive (r={result.r}, t={result.t}, mf={result.mf} "
            f"unknown to protocol, mmax={result.mmax}, n={result.n})"
        ),
    )
    summary = format_table(
        ["quantity", "paper", "measured"],
        [
            ["success probability", f">= 1 - 1/n = {1 - 1 / result.n:.4f}",
             f"{result.success_rate:.4f}"],
            ["message rounds per node (data+NACK)",
             f"<= 2(t*mf+1) = {2 * result.paper_msg_bound}",
             result.max_message_rounds],
            ["  data transmissions per node",
             f"~ t*mf+1 = {result.paper_msg_bound} (see E7 notes)",
             max(p.max_data_sent for p in result.points)],
            ["  NACK transmissions per node",
             f"~ t*mf+1 = {result.paper_msg_bound} (see E7 notes)",
             max(p.max_nacks_sent for p in result.points)],
            ["sub-bit length L", "2logn+logt+logmmax", result.L],
            ["coded length K (k=%d)" % result.k, "k+2logk+2", result.K],
            ["Theorem 4 sub-bit budget", "closed form",
             f"{result.theorem4_subbit_budget:.0f}"],
            ["max measured sub-bits (msgs * K * L)", "<= Theorem 4",
             result.max_message_rounds * result.K * result.L],
            ["wrong acceptances with forced p_forge=0.5", "> 0 (code defeated)",
             result.forced_failure_wrong],
        ],
        title="E7 summary vs Theorem 4",
    )
    return runs + "\n\n" + summary


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_reactive()))


if __name__ == "__main__":  # pragma: no cover
    main()
