"""E5 — Theorem 3 / Figure 5: heterogeneous budgets.

B_heter assigns ``m' = ceil((2tmf+1)/ceil((r(2r+1)-t)/2))`` to the
cross-shaped region through the source and ``m0`` to everyone else. The
experiment verifies:

- broadcast succeeds under worst-case jamming and random placements;
- the average good-node budget sits well below the homogeneous ``2*m0``
  (and approaches ``m0`` as the network grows relative to the Θ(r³)
  cross — the asymptotic column reports the paper's infinite-plane
  reading, where the cross holds Θ(r³) of Θ(n) nodes);
- measured per-node spend never exceeds the assigned budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.placement import RandomPlacement, two_stripe_band
from repro.analysis.bounds import m0, protocol_b_relay_count
from repro.analysis.budgets import heterogeneous_assignment
from repro.network.grid import Grid, GridSpec
from repro.runner.parallel import ResultCache
from repro.runner.parallel import sweep as parallel_sweep
from repro.runner.report import format_table
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


@dataclass(frozen=True)
class HeterogeneousPoint:
    width: int
    r: int
    t: int
    mf: int
    m0: int
    m_prime: int
    placement: str
    success: bool
    privileged: int
    privileged_fraction: float
    average_budget: float
    homogeneous_budget: int
    savings_fraction: float
    max_sent: int


@dataclass(frozen=True)
class HeterogeneousResult:
    points: tuple[HeterogeneousPoint, ...]

    @property
    def all_succeed(self) -> bool:
        return all(p.success for p in self.points)

    @property
    def always_cheaper_than_homogeneous(self) -> bool:
        return all(p.average_budget < p.homogeneous_budget for p in self.points)


@dataclass(frozen=True)
class HeterogeneousSweepPoint:
    """One (width, placement) heterogeneous scenario (picklable)."""

    width: int
    r: int
    t: int
    mf: int
    placement: str  # "stripe-band" | "random"
    seed: int

    def scenario(self) -> ScenarioSpec:
        """The point's full scenario (grid to adversary) as a spec."""
        width, r, t, mf = self.width, self.r, self.t, self.mf
        spec = GridSpec(width=width, height=width, r=r, torus=True)
        grid = Grid(spec)
        if self.placement == "stripe-band":
            placement, band_rows = two_stripe_band(
                grid, t=t, band_height=2 * r + 2, below_y0=3 * r
            )
            protected = tuple(
                gid
                for y in band_rows
                for gid in (grid.id_of((x, y)) for x in range(width))
            )
        else:
            placement = RandomPlacement(
                t=t, count=grid.n // (2 * (2 * r + 1) ** 2), seed=self.seed
            )
            protected = None
        return ScenarioSpec(
            grid=spec,
            t=t,
            mf=mf,
            placement=placement,
            protocol="heter",
            protected=protected,
            batch_per_slot=4,
        )


def _run_heterogeneous_point(
    point: HeterogeneousSweepPoint,
) -> HeterogeneousPoint:
    """Rebuild and run one B_heter scenario (worker-safe)."""
    width, r, t, mf = point.width, point.r, point.t, point.mf
    lower = m0(r, t, mf)
    homogeneous = 2 * lower
    spec = GridSpec(width=width, height=width, r=r, torus=True)
    grid = Grid(spec)
    source = grid.id_of((0, 0))
    assignment = heterogeneous_assignment(grid, source, t, mf)
    report = run_scenario(point.scenario())
    return HeterogeneousPoint(
        width=width,
        r=r,
        t=t,
        mf=mf,
        m0=lower,
        m_prime=protocol_b_relay_count(r, t, mf),
        placement=point.placement,
        success=report.success,
        privileged=len(assignment.privileged),
        privileged_fraction=len(assignment.privileged) / grid.n,
        average_budget=assignment.average,
        homogeneous_budget=homogeneous,
        savings_fraction=1 - assignment.average / homogeneous,
        max_sent=report.costs.good_max,
    )


def run_heterogeneous(
    *,
    r: int = 2,
    t: int = 2,
    mf: int = 3,
    widths: tuple[int, ...] = (30, 60, 90),
    seed: int = 5,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> HeterogeneousResult:
    points = [
        HeterogeneousSweepPoint(
            width=width, r=r, t=t, mf=mf, placement=label, seed=seed
        )
        for width in widths
        for label in ("stripe-band", "random")
    ]
    result = parallel_sweep(
        points,
        _run_heterogeneous_point,
        workers=workers,
        cache=cache,
        progress=progress,
    )
    return HeterogeneousResult(points=tuple(result.results))


def run(
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> HeterogeneousResult:
    """Registry entry point (see :mod:`repro.experiments.registry`)."""
    return run_heterogeneous(workers=workers, cache=cache, progress=progress)


def table(result: HeterogeneousResult) -> str:
    rows = [
        [
            f"{p.width}x{p.width}",
            p.placement,
            p.m0,
            p.m_prime,
            p.privileged,
            f"{p.privileged_fraction:.3f}",
            f"{p.average_budget:.2f}",
            p.homogeneous_budget,
            f"{p.savings_fraction:.1%}",
            p.success,
            p.max_sent,
        ]
        for p in result.points
    ]
    return format_table(
        ["grid", "placement", "m0", "m'", "privileged", "priv. frac",
         "avg budget", "homog. 2m0", "savings", "success", "max sent"],
        rows,
        title=(
            "E5 - Theorem 3: heterogeneous budgets (cross m', elsewhere m0); "
            "savings grow as the cross's share shrinks"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(table(run_heterogeneous()))


if __name__ == "__main__":  # pragma: no cover
    main()
