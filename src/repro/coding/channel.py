"""Unidirectional adversarial channel model (paper §5).

The adversary owns the airwaves during a victim's transmission: for each
sub-bit slot it may stay silent or transmit. Transmitting during a silent
(``-``) slot injects a ``u``; transmitting the *exact inverse* of the
victim's signal during a ``u`` slot cancels it to ``-``; transmitting
anything else during a ``u`` slot leaves a ``u``.

This collapses to a clean algebra: the adversary chooses a *guess* vector
``g``; the received signal is ``signal XOR g`` restricted to attacked
positions — canceling succeeds exactly where the guess matches a ``u``,
and every wrong guess over a silent slot creates a new ``u``. Hence

- flipping a 0-bit block to 1 always succeeds (inject any ``u``);
- flipping a 1-bit block to 0 requires guessing the entire random block:
  probability ``1 / (2^L - 1)`` ≈ ``2^-L``.

The receiver cannot distinguish a canceled transmission from silence —
no collision detection is assumed anywhere in §5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.coding.bits import Bits, as_bits
from repro.coding.subbit import SubbitCodec
from repro.errors import CodingError


@dataclass
class UnidirectionalChannel:
    """Single-hop sub-bit channel with an attack interface."""

    codec: SubbitCodec

    # -- physics ---------------------------------------------------------------

    def transmit(self, signal: Bits, attack: Bits | None = None) -> Bits:
        """Deliver a signal, optionally superposing an adversary pattern.

        ``attack`` is the adversary's per-slot transmission (the "guess"
        vector); the received signal is the XOR superposition described in
        the module docstring. ``None`` means no attack.
        """
        signal = as_bits(signal)
        if attack is None:
            return signal
        attack = as_bits(attack)
        if len(attack) != len(signal):
            raise CodingError("attack pattern must cover the whole signal")
        return tuple(s ^ a for s, a in zip(signal, attack))

    # -- canned attacks ---------------------------------------------------------

    def inject_attack(self, signal_length: int, block_index: int) -> Bits:
        """Attack flipping bit ``block_index`` from 0 to 1 (always works).

        Injects a single ``u`` in the first slot of the target block.
        """
        length = self.codec.block_length
        attack = [0] * signal_length
        attack[block_index * length] = 1
        return tuple(attack)

    def cancel_attack(
        self, signal_length: int, block_index: int, rng: random.Random
    ) -> Bits:
        """Attack attempting to flip bit ``block_index`` from 1 to 0.

        The adversary does not know the victim's random block, so it
        guesses a uniformly random non-silent pattern; success probability
        is ``1/(2^L - 1)``.
        """
        length = self.codec.block_length
        attack = [0] * signal_length
        while True:
            guess = [rng.getrandbits(1) for _ in range(length)]
            if any(guess):
                break
        attack[block_index * length : (block_index + 1) * length] = guess
        return tuple(attack)

    def oracle_cancel_attack(self, signal: Bits, block_index: int) -> Bits:
        """Perfect cancellation with knowledge of the signal (for tests).

        Models the measure-zero event of a correct guess; used to verify
        that *even then* the bit-level chain code constrains the adversary
        to unidirectional-looking errors only when it also forges other
        blocks.
        """
        length = self.codec.block_length
        attack = [0] * len(signal)
        block = signal[block_index * length : (block_index + 1) * length]
        attack[block_index * length : (block_index + 1) * length] = list(block)
        return tuple(attack)
