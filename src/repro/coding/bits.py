"""Bit-vector helpers.

Bits are plain tuples of 0/1 integers: small, hashable, and cheap to
slice — message sizes in this problem domain (key digests) are tens to
hundreds of bits, so there is nothing to gain from packed representations
and much to gain in clarity.
"""

from __future__ import annotations

import random
from typing import Iterable, TypeAlias

from repro.errors import CodingError

Bits: TypeAlias = tuple[int, ...]


def as_bits(values: Iterable[int]) -> Bits:
    """Validate and normalize an iterable of 0/1 into a Bits tuple."""
    bits = tuple(values)
    for bit in bits:
        if bit not in (0, 1):
            raise CodingError(f"bit values must be 0 or 1, got {bit!r}")
    return bits


def bits_from_int(value: int, width: int) -> Bits:
    """Big-endian fixed-width bit representation of a non-negative int."""
    if value < 0:
        raise CodingError(f"cannot encode negative value {value}")
    if width < 1:
        raise CodingError(f"width must be >= 1, got {width}")
    if value >= 1 << width:
        raise CodingError(f"value {value} does not fit in {width} bits")
    return tuple((value >> shift) & 1 for shift in range(width - 1, -1, -1))


def bits_to_int(bits: Bits) -> int:
    """Big-endian integer value of a bit tuple."""
    result = 0
    for bit in bits:
        result = (result << 1) | bit
    return result


def popcount(bits: Bits) -> int:
    """Number of 1-bits."""
    return sum(bits)


def random_bits(k: int, rng: random.Random) -> Bits:
    """Uniformly random k-bit message (for tests and benchmarks)."""
    return tuple(rng.getrandbits(1) for _ in range(k))


def flips_are_unidirectional(original: Bits, tampered: Bits) -> bool:
    """True iff ``tampered`` differs from ``original`` only by 0→1 flips.

    This is the only kind of change the sub-bit layer lets an adversary
    make (short of a ``2^-L`` guess), so it is the error model the chain
    code must detect exhaustively.
    """
    if len(original) != len(tampered):
        return False
    return all(o <= t for o, t in zip(original, tampered))
