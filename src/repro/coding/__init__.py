"""Section-5 coding subsystem.

Two-level encoding (paper Figure 9):

- **bit level** (:mod:`~repro.coding.chain`): the message is extended
  with a chain of segments, each holding the number of 1-bits of the
  previous segment — an All-Unidirectional-Error-Detecting construction
  in the spirit of Berger codes [6];
- **sub-bit level** (:mod:`~repro.coding.subbit`): each bit becomes
  ``L = 2 log n + log t + log mmax`` sub-bits; a 0 is silence, a 1 is a
  random non-silent pattern, so an adversary can always flip 0→1 but can
  flip 1→0 only by guessing the whole pattern (probability ``~2^-L``).

:mod:`~repro.coding.channel` models the unidirectional adversarial
channel; :mod:`~repro.coding.icode` is the I-code baseline [7] used in
the paper's overhead comparison; :mod:`~repro.coding.params` collects the
closed-form lengths and probabilities.
"""

from repro.coding.bits import Bits, bits_from_int, bits_to_int, popcount, random_bits
from repro.coding.chain import (
    ChainCode,
    chain_segment_lengths,
    demonstrate_all_zero_forgery,
)
from repro.coding.channel import UnidirectionalChannel
from repro.coding.icode import ICode
from repro.coding.linklayer import CodedLinkSession, LinkAttacker, run_link_session
from repro.coding.params import (
    attack_success_probability,
    coded_length,
    coded_length_upper_bound,
    message_round_slots,
    quiet_window,
    subbit_length,
)
from repro.coding.subbit import SubbitCodec

__all__ = [
    "Bits",
    "bits_from_int",
    "bits_to_int",
    "popcount",
    "random_bits",
    "ChainCode",
    "chain_segment_lengths",
    "demonstrate_all_zero_forgery",
    "UnidirectionalChannel",
    "ICode",
    "CodedLinkSession",
    "LinkAttacker",
    "run_link_session",
    "SubbitCodec",
    "attack_success_probability",
    "coded_length",
    "coded_length_upper_bound",
    "message_round_slots",
    "quiet_window",
    "subbit_length",
]
