"""I-code baseline (Čagalj et al., IEEE S&P 2006 — paper reference [7]).

Integrity codes protect on-off-keyed transmissions on a unidirectional
channel by Manchester coding: bit 1 → ``10``, bit 0 → ``01``. Every valid
codeword has exactly one ``1`` per pair; since the adversary can only
turn signal on (0→1), any tampering yields a ``11`` pair and is detected
**per bit**. Cost: the codeword is exactly ``2k`` for a k-bit message.

The paper's comparison (§5 end): the chain code is shorter
(``k + O(log k)`` vs ``2k``) but pays a whole-message retransmission per
attack, while the I-code re-transmits only the flipped bit. Experiment
E6 tabulates both overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.bits import Bits, as_bits
from repro.errors import CodingError


@dataclass(frozen=True)
class ICode:
    """Manchester-style integrity code."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise CodingError(f"I-code requires k >= 1, got {self.k}")

    @property
    def coded_length(self) -> int:
        return 2 * self.k

    def encode(self, message: Bits) -> Bits:
        message = as_bits(message)
        if len(message) != self.k:
            raise CodingError(f"message length {len(message)} != k={self.k}")
        code: list[int] = []
        for bit in message:
            code.extend((1, 0) if bit else (0, 1))
        return tuple(code)

    def verify(self, code: Bits) -> bool:
        """Valid iff every pair is 01 or 10."""
        try:
            code = as_bits(code)
        except CodingError:
            return False
        if len(code) != self.coded_length:
            return False
        return all(code[i] != code[i + 1] for i in range(0, len(code), 2))

    def invalid_bit_positions(self, code: Bits) -> list[int]:
        """Indices of bits whose pair was tampered (the per-bit advantage)."""
        code = as_bits(code)
        if len(code) != self.coded_length:
            raise CodingError("codeword has wrong length")
        return [
            i // 2 for i in range(0, len(code), 2) if code[i] == code[i + 1]
        ]

    def decode(self, code: Bits) -> Bits:
        if not self.verify(code):
            raise CodingError("I-code verification failed")
        return tuple(code[i] for i in range(0, len(code), 2))
