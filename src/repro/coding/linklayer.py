"""Faithful sub-bit simulation of one reactive local broadcast (§5).

This is the bridge between the coding substrate and the network-scale
B_reactive runs: a single sender's reliable local broadcast is simulated
at *sub-bit* granularity on the discrete-event engine — every data
message and every NACK is a real ``K * L``-slot signal pushed through
the :class:`~repro.coding.channel.UnidirectionalChannel`, with a
budgeted attacker injecting/cancelling sub-bits.

Experiment E13 uses it to validate the message-level abstraction that
the network simulation relies on (DESIGN.md, "§5 layering"): per attack,
tampering is detected with probability ``1 - 1/(2^L - 1)`` and the
sender needs exactly one more transmission, so a session under ``a``
attacks costs ``a + 1`` data rounds.

Timeline (virtual time = sub-bit slots):

- the sender transmits the coded message (``K * L`` slots);
- each receiver verifies; on failure it queues a NACK — NACKs go out in
  consecutive message rounds (one transmission at a time, as a TDMA
  schedule would serialize them), and the attacker may attack NACKs too;
- any (even corrupted) NACK heard makes the sender retransmit;
- the sender stops after ``quiet_window`` NACK-free message rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.coding.bits import Bits
from repro.coding.chain import ChainCode
from repro.coding.channel import UnidirectionalChannel
from repro.coding.params import quiet_window as default_quiet_window
from repro.coding.subbit import SubbitCodec
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.process import Process, Timeout


@dataclass
class LinkAttacker:
    """Budgeted sub-bit attacker for one link session.

    Strategy per attacked transmission: pick one block of the signal —
    a 1-block for a cancellation attempt (guessing the random pattern)
    or, with probability ``inject_fraction``, a 0-block for an injection
    (always flips, always detectable by the chain code).
    """

    channel: UnidirectionalChannel
    rng: random.Random
    budget: int
    inject_fraction: float = 0.5
    attack_nacks: bool = True
    attacks: int = 0
    cancellations_attempted: int = 0
    cancellations_succeeded: int = 0

    def maybe_attack(self, signal: Bits, word: Bits, is_nack: bool) -> Bits:
        """Return the (possibly attacked) signal; spends budget."""
        if self.budget <= 0 or (is_nack and not self.attack_nacks):
            return signal
        self.budget -= 1
        self.attacks += 1
        one_blocks = [i for i, bit in enumerate(word) if bit == 1]
        zero_blocks = [i for i, bit in enumerate(word) if bit == 0]
        do_inject = zero_blocks and (
            not one_blocks or self.rng.random() < self.inject_fraction
        )
        if do_inject:
            attack = self.channel.inject_attack(
                len(signal), self.rng.choice(zero_blocks)
            )
        else:
            self.cancellations_attempted += 1
            block = self.rng.choice(one_blocks)
            attack = self.channel.cancel_attack(len(signal), block, self.rng)
        received = self.channel.transmit(signal, attack)
        if not do_inject:
            codec = self.channel.codec
            length = codec.block_length
            block_signal = received[block * length : (block + 1) * length]
            if codec.decode_block(tuple(block_signal)) == 0:
                self.cancellations_succeeded += 1
        return received


@dataclass
class LinkOutcome:
    """Result of one sub-bit link session."""

    receivers: int
    delivered: int
    data_rounds: int = 0
    nack_rounds: int = 0
    attacks: int = 0
    undetected_forgeries: int = 0
    duration_slots: float = 0.0

    @property
    def all_delivered(self) -> bool:
        return self.delivered == self.receivers


class CodedLinkSession:
    """One sender, ``n_receivers`` listeners, one attacker, on the DES."""

    def __init__(
        self,
        *,
        message: Bits,
        chain: ChainCode,
        codec: SubbitCodec,
        attacker: LinkAttacker,
        n_receivers: int,
        quiet_window: int | None = None,
        max_rounds: int = 1000,
    ) -> None:
        if n_receivers < 1:
            raise ConfigurationError("a link session needs at least one receiver")
        self.message = message
        self.chain = chain
        self.codec = codec
        self.attacker = attacker
        self.n_receivers = n_receivers
        self.quiet_window = (
            default_quiet_window(1) if quiet_window is None else quiet_window
        )
        self.max_rounds = max_rounds
        self.sim = Simulator()
        self.word = chain.encode(message)
        self.round_slots = len(self.word) * codec.block_length
        self._received_ok = [False] * n_receivers
        self._pending_nacks = 0
        self._nack_heard = False
        self._forgeries = 0
        self.outcome = LinkOutcome(receivers=n_receivers, delivered=0)

    # -- one message round ---------------------------------------------------

    def _transmit_data(self) -> None:
        """One data message round: encode, attack, deliver to receivers."""
        self.outcome.data_rounds += 1
        signal = self.codec.encode(self.word)
        attacks_before = self.attacker.attacks
        received = self.attacker.maybe_attack(signal, self.word, is_nack=False)
        attacked = self.attacker.attacks > attacks_before
        bits = self.codec.decode(received)
        if self.chain.verify(bits):
            decoded = self.chain.decode(bits)
            if decoded != self.message:
                self._forgeries += 1  # undetected tampering (the 2^-L event)
            for index in range(self.n_receivers):
                self._received_ok[index] = True
        else:
            # Every receiver detects the corruption; one NACK each.
            self._pending_nacks = self.n_receivers
        del attacked  # bookkeeping only via attacker counters

    def _transmit_nack(self) -> None:
        """One NACK message round (NACKs are coded messages too)."""
        self.outcome.nack_rounds += 1
        nack_word = self.chain.encode(tuple([1] * self.chain.k))  # protocol constant
        signal = self.codec.encode(nack_word)
        received = self.attacker.maybe_attack(signal, nack_word, is_nack=True)
        bits = self.codec.decode(received)
        # Either a well-formed NACK or detected garbage: both indicate
        # failure to the sender. Only a full cancellation (all-silent
        # signal) would hide it — probability ~2^-(K*L), ignored.
        if any(bits) or not self.chain.verify(bits):
            self._nack_heard = True

    # -- the session process ---------------------------------------------------

    def _sender(self):
        data_rounds = 0
        while data_rounds < self.max_rounds:
            self._transmit_data()
            data_rounds += 1
            yield Timeout(self.round_slots)

            # NACK phase: every receiver that detected corruption voices a
            # NACK; the TDMA period serializes them into consecutive
            # message rounds. The attacker may attack each NACK, but a
            # garbled NACK still signals failure.
            nacks, self._pending_nacks = self._pending_nacks, 0
            for _ in range(nacks):
                self._transmit_nack()
                yield Timeout(self.round_slots)

            if self._nack_heard:
                self._nack_heard = False
                continue  # failure indicated: retransmit the data

            # Quiet window: no failure indications; wait it out and stop.
            for _ in range(self.quiet_window):
                yield Timeout(self.round_slots)
            return

    def run(self) -> LinkOutcome:
        Process(self.sim, self._sender(), name="sender")
        self.sim.run()
        self.outcome.delivered = sum(self._received_ok)
        self.outcome.attacks = self.attacker.attacks
        self.outcome.undetected_forgeries = self._forgeries
        self.outcome.duration_slots = self.sim.now
        return self.outcome


def run_link_session(
    *,
    k: int = 16,
    block_length: int = 8,
    n_receivers: int = 8,
    attacker_budget: int = 3,
    seed: int = 0,
    quiet_window: int | None = None,
    inject_fraction: float = 0.5,
    attack_nacks: bool = True,
) -> LinkOutcome:
    """Convenience wrapper building and running one session."""
    rng = random.Random(seed)
    chain = ChainCode(k)
    codec = SubbitCodec(block_length=block_length, rng=random.Random(seed + 1))
    attacker = LinkAttacker(
        channel=UnidirectionalChannel(codec),
        rng=rng,
        budget=attacker_budget,
        inject_fraction=inject_fraction,
        attack_nacks=attack_nacks,
    )
    session = CodedLinkSession(
        message=tuple(random.Random(seed + 2).getrandbits(1) for _ in range(k)),
        chain=chain,
        codec=codec,
        attacker=attacker,
        n_receivers=n_receivers,
        quiet_window=quiet_window,
    )
    return session.run()
