"""Bit-level segment-chain code (paper §5, Figure 9).

The coded message is ``S0 | S1 | ... | Sl`` where ``S0`` is the original
``k``-bit message and each subsequent segment ``Si`` (of length
``ki = floor(log2 k_{i-1}) + 1``) holds the number of 1-bits of the
preceding segment. Segment lengths shrink logarithmically until the chain
closes with two 2-bit segments, so ``K = sum(ki) <= k + 2 log2 k + 2``.

Against an adversary that can only flip bits 0→1 (the guarantee the
sub-bit layer provides), any tampering is detected: raising 1-counts in
``S_{i-1}`` forces the *value* of ``Si`` up, which can only be done by
setting more bits of ``Si``, cascading to the final segment, where a
valid code is ``01`` or ``10`` and the only reachable forgery ``11``
decodes to 3 > 2 — impossible for a 2-bit predecessor.

**Documented deviation** — the literal construction has one blind spot:
the all-zero message encodes to the all-zero codeword (final segment
``00``), from which a consistent chain *can* be forged with 0→1 flips
only (see :func:`demonstrate_all_zero_forgery`). The paper's claim that
the last segment "can only be 01 or 10" implicitly assumes a non-zero
chain. We restore it for every payload by prepending a constant ``1``
sentinel bit (one bit of overhead); ``ChainCode(sentinel=False)`` keeps
the literal construction for study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.bits import Bits, as_bits, bits_from_int, bits_to_int, popcount
from repro.errors import CodingError


def chain_segment_lengths(k: int) -> list[int]:
    """Segment lengths ``[k0, k1, ..., kl]`` for a k-bit message.

    ``k0 = k``; ``ki = floor(log2(k_{i-1})) + 1``; the chain ends with two
    2-bit segments (the fixpoint of the recurrence).
    """
    if k < 2:
        raise CodingError(f"chain code requires k >= 2, got {k}")
    lengths = [k]
    while lengths[-1] > 2:
        lengths.append(lengths[-1].bit_length())  # floor(log2 x) + 1
    lengths.append(2)
    return lengths


@dataclass(frozen=True)
class ChainCode:
    """Encoder/verifier for the segment-chain code.

    Args:
        k: payload length in bits (before the sentinel, if enabled).
        sentinel: prepend a constant 1 bit to the payload (default; see
            module docstring).
    """

    k: int
    sentinel: bool = True

    def __post_init__(self) -> None:
        if self.k < 2:
            raise CodingError(f"chain code requires k >= 2, got {self.k}")

    @property
    def data_length(self) -> int:
        """Length of ``S0`` (payload plus sentinel if enabled)."""
        return self.k + 1 if self.sentinel else self.k

    @property
    def segment_lengths(self) -> list[int]:
        return chain_segment_lengths(self.data_length)

    @property
    def coded_length(self) -> int:
        """Total code length ``K`` in bits."""
        return sum(self.segment_lengths)

    # -- encode -------------------------------------------------------------

    def encode(self, message: Bits) -> Bits:
        """Encode a k-bit message into its coded form."""
        message = as_bits(message)
        if len(message) != self.k:
            raise CodingError(
                f"message length {len(message)} != configured k={self.k}"
            )
        segment = (1,) + message if self.sentinel else message
        code: list[int] = list(segment)
        for length in self.segment_lengths[1:]:
            count = popcount(segment)
            segment = bits_from_int(count, length)
            code.extend(segment)
        return tuple(code)

    # -- verify / decode ------------------------------------------------------

    def split_segments(self, code: Bits) -> list[Bits]:
        """Split a codeword into its segments ``[S0, ..., Sl]``."""
        lengths = self.segment_lengths
        if len(code) != sum(lengths):
            raise CodingError(
                f"codeword length {len(code)} != expected {sum(lengths)}"
            )
        segments = []
        index = 0
        for length in lengths:
            segments.append(tuple(code[index : index + length]))
            index += length
        return segments

    def verify(self, code: Bits) -> bool:
        """Integrity check: every segment counts its predecessor's 1-bits.

        Returns ``False`` on any inconsistency (wrong length included) —
        detected tampering is an expected outcome, not an exception.
        """
        try:
            segments = self.split_segments(as_bits(code))
        except CodingError:
            return False
        for previous, current in zip(segments, segments[1:]):
            if bits_to_int(current) != popcount(previous):
                return False
        if self.sentinel and segments[0][0] != 1:
            return False
        return True

    def decode(self, code: Bits) -> Bits:
        """Recover the payload, raising :class:`CodingError` if tampered."""
        if not self.verify(code):
            raise CodingError("codeword failed integrity verification")
        data = self.split_segments(code)[0]
        return data[1:] if self.sentinel else data


def demonstrate_all_zero_forgery(k: int) -> tuple[Bits, Bits]:
    """Construct the 0→1-only forgery against the *literal* (no-sentinel) code.

    Returns ``(original_code, forged_code)`` where the original encodes
    the all-zero k-bit message, the forgery differs only by 0→1 flips,
    and the forgery *passes verification* while decoding to a different
    message. This documents why the sentinel variant is the default.
    """
    literal = ChainCode(k, sentinel=False)
    original = literal.encode((0,) * k)
    # Flipping the first message bit 0->1 raises every 1-count from 0 to 1,
    # and each count segment absorbs that by setting its own lowest bit —
    # so the valid codeword of the forged message dominates the original
    # bitwise, i.e. is reachable with 0->1 flips alone.
    forged_code = literal.encode((1,) + (0,) * (k - 1))
    if len(forged_code) != len(original):
        raise CodingError("forgery demonstration requires equal-length codes")
    if not all(o <= f for o, f in zip(original, forged_code)):
        raise CodingError("forgery demonstration failed: not unidirectional")
    return original, forged_code
