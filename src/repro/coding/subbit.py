"""Sub-bit layer (paper §5, Figure 9 bottom).

Each bit is transmitted as ``L`` sub-bits; a sub-bit is the presence
(``u``, here ``1``) or absence (``-``, here ``0``) of a signal during one
time slot. Encoding:

- bit 0 → all-silent block ``000...0``;
- bit 1 → a uniformly random **non-silent** block.

Decoding: a block containing at least one ``u`` is a 1, otherwise a 0.

The non-silent constraint is a documented refinement: a literal uniform
draw would produce the all-silent block with probability ``2^-L`` and be
mis-decoded as 0 even without an adversary; the paper's decoding rule
presumes at least one ``u`` in a 1-block.

The recommended block length is ``L = 2 log2 n + log2 t + log2 mmax``
(:func:`repro.coding.params.subbit_length`), making the per-bit forgery
probability ``2^-L = 1 / (n^2 t mmax)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.coding.bits import Bits, as_bits
from repro.errors import CodingError


@dataclass
class SubbitCodec:
    """Encoder/decoder for the sub-bit layer.

    Args:
        block_length: sub-bits per bit (``L``).
        rng: random stream for the 1-blocks; supply a seeded stream from
            :class:`~repro.sim.rng.RngRegistry` for reproducible runs.
    """

    block_length: int
    rng: random.Random

    def __post_init__(self) -> None:
        if self.block_length < 1:
            raise CodingError(f"block length must be >= 1, got {self.block_length}")

    # -- encoding -------------------------------------------------------------

    def encode_bit(self, bit: int) -> Bits:
        """One bit to one sub-bit block."""
        if bit == 0:
            return (0,) * self.block_length
        if bit != 1:
            raise CodingError(f"bit must be 0 or 1, got {bit!r}")
        while True:
            block = tuple(
                self.rng.getrandbits(1) for _ in range(self.block_length)
            )
            if any(block):
                return block

    def encode(self, bits: Bits) -> Bits:
        """A bit string to its flat sub-bit signal."""
        signal: list[int] = []
        for bit in as_bits(bits):
            signal.extend(self.encode_bit(bit))
        return tuple(signal)

    # -- decoding -------------------------------------------------------------

    def decode_block(self, block: Bits) -> int:
        if len(block) != self.block_length:
            raise CodingError(
                f"block length {len(block)} != configured {self.block_length}"
            )
        return 1 if any(block) else 0

    def decode(self, signal: Bits) -> Bits:
        """A flat sub-bit signal back to bits."""
        if len(signal) % self.block_length:
            raise CodingError(
                f"signal length {len(signal)} is not a multiple of "
                f"L={self.block_length}"
            )
        return tuple(
            self.decode_block(tuple(signal[i : i + self.block_length]))
            for i in range(0, len(signal), self.block_length)
        )

    def blocks(self, signal: Bits) -> list[Bits]:
        """Split a signal into its per-bit blocks."""
        if len(signal) % self.block_length:
            raise CodingError("signal length is not a multiple of L")
        return [
            tuple(signal[i : i + self.block_length])
            for i in range(0, len(signal), self.block_length)
        ]
