"""Closed-form coding parameters (paper §5).

Collects the lengths and probabilities Theorem 4 is assembled from, so
protocol code, experiments, and tests all share one source of truth.
"""

from __future__ import annotations

import math

from repro.coding.chain import chain_segment_lengths
from repro.errors import ConfigurationError


def subbit_length(n: int, t: int, mmax: int) -> int:
    """``L = 2 log2 n + log2 t + log2 mmax``, rounded up to an integer.

    Chosen so the per-bit forgery probability ``2^-L`` is at most
    ``1 / (n^2 t mmax)``.
    """
    if min(n, t, mmax) < 1:
        raise ConfigurationError("subbit_length requires n, t, mmax >= 1")
    raw = 2 * math.log2(n) + math.log2(t) + math.log2(mmax)
    return max(1, math.ceil(raw))


def attack_success_probability(length: int) -> float:
    """Probability of flipping a 1-block to 0: guessing a random non-silent
    pattern among ``2^L - 1`` equally likely ones."""
    if length < 1:
        raise ConfigurationError(f"block length must be >= 1, got {length}")
    return 1.0 / (2.0**length - 1.0) if length > 1 else 1.0


def coded_length(k: int, sentinel: bool = False) -> int:
    """Exact coded length ``K = sum(k_i)`` of the chain code.

    ``sentinel=True`` accounts for the package's one-bit sentinel
    (see :mod:`repro.coding.chain`); the paper's formulas use the literal
    construction, so that is the default here.
    """
    return sum(chain_segment_lengths(k + 1 if sentinel else k))


def coded_length_upper_bound(k: int) -> float:
    """The paper's bound ``K <= k + 2 log2 k + 2``."""
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    return k + 2 * math.log2(k) + 2


def message_round_slots(k: int, n: int, t: int, mmax: int) -> int:
    """Slots per message round: ``K * L`` (one coded message on the air)."""
    return coded_length(k) * subbit_length(n, t, mmax)


def quiet_window(r: int) -> int:
    """NACK-free rounds before a sender stops: ``(2r+1)^2 - 1`` (§5)."""
    if r < 1:
        raise ConfigurationError(f"radius must be >= 1, got {r}")
    return (2 * r + 1) ** 2 - 1
