"""Completeness/correctness verification of finished runs.

These helpers read protocol-node decision state and the budget ledger and
produce :class:`~repro.analysis.metrics.BroadcastOutcome` /
:class:`~repro.analysis.metrics.MessageCosts`. They are the single source
of truth tests and experiments use to judge a run.
"""

from __future__ import annotations

from typing import Mapping, Protocol

from repro.analysis.metrics import BroadcastOutcome, MessageCosts, NodeDecision
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.mac import RunStats
from repro.types import NodeId, Value


class DecidingNode(Protocol):
    """Structural view of a protocol node's decision state."""

    @property
    def decided(self) -> bool: ...

    @property
    def accepted_value(self) -> Value | None: ...

    @property
    def decide_round(self) -> int | None: ...


def collect_outcome(
    table: NodeTable,
    nodes: Mapping[NodeId, DecidingNode],
    stats: RunStats,
    vtrue: Value,
) -> BroadcastOutcome:
    """Summarize decisions of all good nodes (source excluded)."""
    decided = 0
    correct = 0
    wrong = 0
    total = 0
    for nid in table.good_ids:
        if nid == table.source:
            continue
        total += 1
        node = nodes[nid]
        if node.decided:
            decided += 1
            if node.accepted_value == vtrue:
                correct += 1
            else:
                wrong += 1
    return BroadcastOutcome(
        total_good=total,
        decided_good=decided,
        correct_good=correct,
        wrong_good=wrong,
        rounds=stats.rounds,
        quiescent=stats.quiescent,
    )


def collect_costs(table: NodeTable, ledger: BudgetLedger) -> MessageCosts:
    """Message expenditure split by role."""
    good_non_source = [nid for nid in table.good_ids if nid != table.source]
    good_counts = [ledger.sent(nid) for nid in good_non_source]
    return MessageCosts(
        good_total=sum(good_counts),
        good_max=max(good_counts) if good_counts else 0,
        good_avg=(sum(good_counts) / len(good_counts)) if good_counts else 0.0,
        source_sent=ledger.sent(table.source),
        bad_total=sum(ledger.sent(nid) for nid in table.bad_ids),
    )


def check_broadcast(outcome: BroadcastOutcome) -> bool:
    """True iff the run satisfied both completeness and correctness."""
    return outcome.success


def decisions_table(
    table: NodeTable, nodes: Mapping[NodeId, DecidingNode]
) -> list[NodeDecision]:
    """Per-node decision records (sorted by id) for reports and debugging."""
    records = []
    for nid in table.good_ids:
        node = nodes[nid]
        records.append(
            NodeDecision(
                node_id=nid,
                coord=table.grid.coord_of(nid),
                decided=node.decided,
                value=node.accepted_value,
                decide_round=node.decide_round,
            )
        )
    return records
