"""Propagation-timeline analytics.

The paper's possibility proofs are all about *how* ``Vtrue`` spreads —
square fronts (§3), cross-then-circle fronts (§4). This module extracts
that dynamics from a finished run: per-node decision rounds grouped by
L∞ distance from the source, front speed, and stall detection. Used by
tests (the §3 induction predicts a monotone front) and available to
users profiling deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.network.node import NodeTable
from repro.types import NodeId


@dataclass(frozen=True)
class DistanceBucket:
    """Decision statistics for all good nodes at one L∞ distance ring."""

    distance: int
    total: int
    decided: int
    first_round: int | None
    last_round: int | None

    @property
    def complete(self) -> bool:
        return self.decided == self.total


@dataclass(frozen=True)
class PropagationTimeline:
    """Decision rounds bucketed by distance from the source."""

    buckets: tuple[DistanceBucket, ...]

    def bucket(self, distance: int) -> DistanceBucket:
        for bucket in self.buckets:
            if bucket.distance == distance:
                return bucket
        raise KeyError(distance)

    @property
    def covered_radius(self) -> int:
        """Largest distance whose ring fully decided (-1 if none)."""
        covered = -1
        for bucket in self.buckets:
            if not bucket.complete:
                break
            covered = bucket.distance
        return covered

    @property
    def front_is_monotone(self) -> bool:
        """Do farther rings start deciding no earlier than nearer ones?

        This is the §3 induction's signature: the committed region grows
        outward, so the *first* decision round per ring is non-decreasing
        in distance (over the fully-decided prefix).
        """
        previous = -1
        for bucket in self.buckets:
            if bucket.first_round is None:
                break
            if bucket.first_round < previous:
                return False
            previous = bucket.first_round
        return True

    def rounds_per_ring(self) -> list[tuple[int, int | None]]:
        """(distance, first decision round) pairs, for reports."""
        return [(b.distance, b.first_round) for b in self.buckets]


def propagation_timeline(
    table: NodeTable, nodes: Mapping[NodeId, object]
) -> PropagationTimeline:
    """Bucket every good node's decision round by distance from source."""
    grid = table.grid
    source = table.source
    per_distance: dict[int, list[int | None]] = {}
    for nid in table.good_ids:
        if nid == source:
            continue
        distance = grid.distance(source, nid)
        node = nodes[nid]
        decided = bool(getattr(node, "decided", False))
        round_value = getattr(node, "decide_round", None) if decided else None
        per_distance.setdefault(distance, []).append(round_value)

    buckets = []
    for distance in sorted(per_distance):
        rounds = per_distance[distance]
        decided_rounds = [r for r in rounds if r is not None]
        buckets.append(
            DistanceBucket(
                distance=distance,
                total=len(rounds),
                decided=len(decided_rounds),
                first_round=min(decided_rounds) if decided_rounds else None,
                last_round=max(decided_rounds) if decided_rounds else None,
            )
        )
    return PropagationTimeline(buckets=tuple(buckets))
