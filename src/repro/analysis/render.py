"""ASCII rendering of grid decision state.

Turns a finished run into a compact map — one character per node — that
makes propagation and starvation patterns immediately visible in a
terminal:

- ``S`` — the source;
- ``#`` — good node that accepted ``Vtrue``;
- ``!`` — good node that accepted a wrong value (should never appear for
  the threshold protocols);
- ``.`` — good node still undecided;
- ``x`` — Byzantine node.

Rows are printed with y growing downward (row 0 on top) to match how the
grid is usually sketched.
"""

from __future__ import annotations

from typing import Mapping

from repro.network.node import NodeTable
from repro.types import NodeId, Value

SOURCE_CHAR = "S"
CORRECT_CHAR = "#"
WRONG_CHAR = "!"
UNDECIDED_CHAR = "."
BAD_CHAR = "x"


def render_decisions(
    table: NodeTable,
    nodes: Mapping[NodeId, object],
    vtrue: Value,
    *,
    y_range: tuple[int, int] | None = None,
) -> str:
    """Render the decision map of a finished run.

    ``y_range`` (inclusive) restricts the rows shown — handy for large
    grids where only a band matters.
    """
    grid = table.grid
    y_lo, y_hi = y_range if y_range is not None else (0, grid.height - 1)
    lines = []
    for y in range(y_lo, y_hi + 1):
        chars = []
        for x in range(grid.width):
            nid = grid.id_of((x, y))
            if nid == table.source:
                chars.append(SOURCE_CHAR)
            elif table.is_bad(nid):
                chars.append(BAD_CHAR)
            else:
                node = nodes.get(nid)
                decided = bool(getattr(node, "decided", False))
                if not decided:
                    chars.append(UNDECIDED_CHAR)
                elif getattr(node, "accepted_value", None) == vtrue:
                    chars.append(CORRECT_CHAR)
                else:
                    chars.append(WRONG_CHAR)
        lines.append("".join(chars))
    return "\n".join(lines)


def coverage_summary(table: NodeTable, nodes: Mapping[NodeId, object], vtrue: Value) -> str:
    """One-line coverage summary to accompany a rendered map."""
    good = [nid for nid in table.good_ids if nid != table.source]
    decided = sum(1 for nid in good if getattr(nodes[nid], "decided", False))
    wrong = sum(
        1
        for nid in good
        if getattr(nodes[nid], "decided", False)
        and getattr(nodes[nid], "accepted_value", None) != vtrue
    )
    return (
        f"{decided}/{len(good)} good nodes decided, {wrong} wrong, "
        f"{len(table.bad_ids)} Byzantine"
    )
