"""Closed-form bounds, budget assignments, metrics, and verifiers."""

from repro.analysis.bounds import (
    accept_threshold,
    corollary1_max_tolerable_t,
    corollary1_min_breakable_t,
    half_neighborhood,
    koo_budget,
    m0,
    max_locally_bounded_t,
    max_reactive_t,
    protocol_b_relay_count,
    source_send_count,
    theorem4_budget,
)
from repro.analysis.budgets import (
    BudgetAssignment,
    heterogeneous_assignment,
    homogeneous_assignment,
)
from repro.analysis.metrics import BroadcastOutcome, MessageCosts
from repro.analysis.render import coverage_summary, render_decisions
from repro.analysis.search import (
    FRONTIER_AXES,
    AxisFrontier,
    AxisProbe,
    AxisSearch,
    BudgetSearchResult,
    MonotonicityViolation,
    find_min_working_budget,
    frontier_search,
)
from repro.analysis.timeline import PropagationTimeline, propagation_timeline
from repro.analysis.verify import check_broadcast, collect_outcome

__all__ = [
    "accept_threshold",
    "corollary1_max_tolerable_t",
    "corollary1_min_breakable_t",
    "half_neighborhood",
    "koo_budget",
    "m0",
    "max_locally_bounded_t",
    "max_reactive_t",
    "protocol_b_relay_count",
    "source_send_count",
    "theorem4_budget",
    "BudgetAssignment",
    "heterogeneous_assignment",
    "homogeneous_assignment",
    "BroadcastOutcome",
    "MessageCosts",
    "check_broadcast",
    "collect_outcome",
    "coverage_summary",
    "render_decisions",
    "FRONTIER_AXES",
    "AxisFrontier",
    "AxisProbe",
    "AxisSearch",
    "BudgetSearchResult",
    "MonotonicityViolation",
    "find_min_working_budget",
    "frontier_search",
    "PropagationTimeline",
    "propagation_timeline",
]
