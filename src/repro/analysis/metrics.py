"""Outcome and cost metrics for broadcast runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import Value


@dataclass(frozen=True)
class BroadcastOutcome:
    """Did the broadcast achieve the paper's two conditions?

    *Completeness*: every good node accepted some value.
    *Correctness*: every decided good node accepted ``Vtrue``.
    ``success`` is both together (for the good nodes, source excluded —
    the source trivially knows its own value).
    """

    total_good: int
    decided_good: int
    correct_good: int
    wrong_good: int
    rounds: int
    quiescent: bool

    @property
    def undecided_good(self) -> int:
        return self.total_good - self.decided_good

    @property
    def complete(self) -> bool:
        return self.decided_good == self.total_good

    @property
    def correct(self) -> bool:
        return self.wrong_good == 0

    @property
    def success(self) -> bool:
        return self.complete and self.correct

    @property
    def decided_fraction(self) -> float:
        if self.total_good == 0:
            return 1.0
        return self.decided_good / self.total_good


@dataclass(frozen=True)
class MessageCosts:
    """Message expenditure of one run, per the ledger."""

    good_total: int
    good_max: int
    good_avg: float
    source_sent: int
    bad_total: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"good: total={self.good_total} max={self.good_max} "
            f"avg={self.good_avg:.2f}; source={self.source_sent}; "
            f"bad={self.bad_total}"
        )


@dataclass(frozen=True)
class NodeDecision:
    """Decision state of one node at the end of a run (for reports)."""

    node_id: int
    coord: tuple[int, int]
    decided: bool
    value: Value | None
    decide_round: int | None
