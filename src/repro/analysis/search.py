"""Adaptive frontier search over scenario axes, riding the sweep substrate.

The paper's central empirical object is the success/failure frontier in
``(t, m, mf, grid, placement)`` space: Theorems 1 and 2 bracket the
minimum working good-node budget between ``m0`` and ``2*m0``, and the
same bracketing question exists along the adversary's axes (how much
density ``t``, how much budget ``mf`` a fixed scenario tolerates).

This module locates those frontiers *empirically*:

- :class:`AxisSearch` is an incremental bisection driver for one spec
  axis (``"m"``, ``"t"``, ``"mf"``). It emits probe :class:`ScenarioSpec`
  batches and consumes outcomes, so a caller can schedule any number of
  concurrent searches through :func:`repro.runner.parallel.probe_batch`
  — every probe is cache-keyed by ``spec.content_hash()`` and re-runs
  are incremental. The scenario atlas (:mod:`repro.analysis.atlas`)
  drives many of these at once.
- :func:`frontier_search` runs a single axis search to completion.
- :func:`find_min_working_budget` is the historical entry point, kept
  result-identical for :class:`~repro.runner.broadcast_run.
  ThresholdRunConfig` callers but rebuilt on cached ``run(spec)`` probes
  (it used to drive the deprecated ``run_threshold_broadcast`` shim
  serially, recomputing every probe from scratch).

Monotonicity — more good budget never hurts, more adversary never helps
— is an empirical property of our adversaries, not a theorem. The
search therefore never silently bisects past a non-monotone profile: a
bracket endpoint with the wrong outcome is reported in the result's
``note``, every refined probe is kept, and any adjacent (better-config
fails, worse-config succeeds) pair is surfaced as a
:class:`MonotonicityViolation` instead of being averaged away.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.analysis.bounds import m0, max_locally_bounded_t
from repro.errors import ConfigurationError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.runner.broadcast_run import BroadcastReport, ThresholdRunConfig
    from repro.runner.parallel import ResultCache
    from repro.scenario.runner import ScenarioOutcome
    from repro.scenario.spec import ScenarioSpec

#: How far past an invalid domain endpoint the search steps looking for
#: a runnable value before declaring the axis empty.
_VALID_SCAN_LIMIT = 8


# -- probe results -------------------------------------------------------------


@dataclass(frozen=True)
class AxisProbe:
    """One executed probe along an axis (in axis-value order of meaning).

    Carries the quantitative outcome, not just the verdict, so atlas
    tables can show *how* a configuration failed (partial coverage vs
    total starvation) without re-running anything.
    """

    value: int
    success: bool
    decided_good: int
    total_good: int
    rounds: int


@dataclass(frozen=True)
class MonotonicityViolation:
    """An adjacent probe pair contradicting the assumed monotone profile.

    ``succeeded_at`` is the axis value that succeeded although
    ``failed_at`` — a strictly *more favorable* configuration (more
    budget on an increasing axis, less adversary on a decreasing one) —
    failed. Reported pairs are adjacent in sorted probe order, so each
    names one concrete boundary inversion.
    """

    axis: str
    succeeded_at: int
    failed_at: int


@dataclass(frozen=True)
class AxisFrontier:
    """Verified frontier of one scenario axis.

    ``frontier`` is the boundary of the empirical success region: the
    smallest working value on an increasing axis (``m``), the largest
    working value on a decreasing one (``t``, ``mf``); ``None`` when no
    probed value succeeded above every probed failure. ``last_failing``
    is the adjacent failing value (``None`` when the whole probed domain
    works). ``invalid`` lists values whose spec could not be built or
    validated (out of the model's domain). A non-empty ``violations``
    means the profile is not monotone and ``frontier`` is only the
    *conservative* boundary (above/below every observed failure).
    """

    axis: str
    increasing: bool
    frontier: int | None
    last_failing: int | None
    probes: tuple[AxisProbe, ...]
    invalid: tuple[int, ...]
    violations: tuple[MonotonicityViolation, ...]
    evaluations: int
    note: str = ""


@dataclass(frozen=True)
class BudgetSearchResult:
    """Outcome of a minimum-budget bisection (historical API)."""

    min_working_m: int
    max_failing_m: int | None
    evaluations: int
    tested: tuple[tuple[int, bool], ...]  # (m, success) pairs, in test order


# -- axis definitions ----------------------------------------------------------


def _retarget_placement(placement: Any, t: int) -> Any:
    """A copy of ``placement`` re-parameterized for adversary density ``t``.

    Placements that carry their own ``t`` field (stripes, random
    locally-bounded) scale with the axis; compositions retarget each
    part; explicit/derived placements without a density knob (e.g. the
    Figure-2 lattice) are returned unchanged — for those the ``t`` axis
    varies only the *declared* bound the protocol defends against.
    """
    from repro.adversary.placement import CombinedPlacement

    if isinstance(placement, CombinedPlacement):
        return dataclasses.replace(
            placement,
            parts=tuple(_retarget_placement(part, t) for part in placement.parts),
        )
    if dataclasses.is_dataclass(placement) and any(
        field.name == "t" for field in dataclasses.fields(placement)
    ):
        return dataclasses.replace(placement, t=t)
    return placement


class FrontierAxis:
    """One searchable scenario axis: how to mutate a spec and its bounds.

    ``increasing`` states the assumed monotone direction: ``True`` means
    success becomes *more* likely as the value grows (good budget),
    ``False`` the opposite (adversary knobs). ``bounds`` returns
    ``(domain_min, soft_cap, hard_cap)``: bisection starts on
    ``[domain_min, soft_cap]`` and the cap doubles toward ``hard_cap``
    while the bracket's far end keeps refusing to flip.
    """

    name: str = ""
    increasing: bool = True
    description: str = ""

    def apply(self, spec: "ScenarioSpec", value: int) -> "ScenarioSpec":
        raise NotImplementedError

    def bounds(self, spec: "ScenarioSpec") -> tuple[int, int, int]:
        raise NotImplementedError


class GoodBudgetAxis(FrontierAxis):
    """``m``: per-good-node budget; success is monotone increasing."""

    name = "m"
    increasing = True
    description = "good-node budget (min working value; paper brackets [m0, 2*m0])"

    def apply(self, spec: "ScenarioSpec", value: int) -> "ScenarioSpec":
        return spec.replace(m=value)

    def bounds(self, spec: "ScenarioSpec") -> tuple[int, int, int]:
        sufficient = 2 * m0(spec.grid.r, spec.t, spec.mf)
        soft = max(sufficient, spec.m or 0, 1)
        return 0, soft, 2 * soft + 8


class AdversaryBudgetAxis(FrontierAxis):
    """``mf``: per-bad-node budget; success is monotone decreasing."""

    name = "mf"
    increasing = False
    description = "per-bad-node budget (max value the scenario tolerates)"

    def apply(self, spec: "ScenarioSpec", value: int) -> "ScenarioSpec":
        return spec.replace(mf=value)

    def bounds(self, spec: "ScenarioSpec") -> tuple[int, int, int]:
        return 0, 2 * spec.mf + 2, 8 * spec.mf + 8


class DensityAxis(FrontierAxis):
    """``t``: adversary density per neighborhood; success decreasing."""

    name = "t"
    increasing = False
    description = "adversary density t (max value the scenario tolerates)"

    def apply(self, spec: "ScenarioSpec", value: int) -> "ScenarioSpec":
        return spec.replace(
            t=value, placement=_retarget_placement(spec.placement, value)
        )

    def bounds(self, spec: "ScenarioSpec") -> tuple[int, int, int]:
        cap = max_locally_bounded_t(spec.grid.r)
        return 0, cap, cap


#: Registry of searchable axes by name (the atlas iterates this order).
FRONTIER_AXES: dict[str, FrontierAxis] = {
    axis.name: axis
    for axis in (GoodBudgetAxis(), DensityAxis(), AdversaryBudgetAxis())
}


def default_validator(spec: "ScenarioSpec") -> bool:
    """True when ``spec`` is runnable (registries, bounds, placement)."""
    from repro.scenario.runner import validate

    try:
        validate(spec)
    except ReproError:
        return False
    return True


# -- the incremental axis search -----------------------------------------------

# Internally the search works in *unified coordinates* ``u``: for an
# increasing axis ``u = value``, for a decreasing one ``u = -value``, so
# success is always expected to be monotone nondecreasing in ``u`` and a
# single bisection loop serves both directions.

_BRACKET = "bracket"
_EXPAND = "expand"
_BISECT = "bisect"
_REFINE = "refine"
_DONE = "done"


class AxisSearch:
    """Incremental frontier bisection along one axis of one scenario.

    The protocol is generation-based so many searches can share probe
    batches:

    1. read :attr:`pending` — the specs this search needs next (empty
       only when :attr:`done`);
    2. run them (typically through
       :func:`repro.runner.parallel.probe_batch` together with every
       other live search's pending specs);
    3. :meth:`feed` the outcomes back, keyed by ``spec.content_hash()``;
    4. repeat until :attr:`done`, then take :meth:`result`.

    ``refine`` widens the final pass: after bisection converges, every
    unprobed valid value within ``refine`` of the frontier is probed in
    one batch, so boundary inversions (monotonicity violations) near the
    frontier are *detected* rather than assumed away.
    """

    def __init__(
        self,
        spec: "ScenarioSpec",
        axis: str | FrontierAxis,
        *,
        refine: int = 1,
        validator: Callable[["ScenarioSpec"], bool] = default_validator,
    ) -> None:
        if isinstance(axis, str):
            try:
                axis = FRONTIER_AXES[axis]
            except KeyError:
                known = ", ".join(sorted(FRONTIER_AXES))
                raise ConfigurationError(
                    f"unknown frontier axis {axis!r}; known axes: {known}"
                ) from None
        if refine < 0:
            raise ConfigurationError(f"refine must be >= 0, got {refine}")
        self.spec = spec
        self.axis = axis
        self.refine = refine
        self._validator = validator
        self._sign = 1 if axis.increasing else -1
        domain_min, soft_cap, hard_cap = axis.bounds(spec)
        if not domain_min <= soft_cap <= hard_cap:
            raise ConfigurationError(
                f"axis {axis.name!r} produced an invalid domain "
                f"({domain_min}, {soft_cap}, {hard_cap})"
            )
        self._domain_min = domain_min
        self._cap = soft_cap
        self._hard_cap = hard_cap
        self._probes: dict[int, AxisProbe] = {}  # by axis value
        self._order: list[int] = []  # probe order, for the report
        self._invalid: list[int] = []
        self._specs: dict[int, "ScenarioSpec"] = {}
        self._note = ""
        # Bisection bracket in unified coordinates, set once established.
        self._u_fail: int | None = None
        self._u_succ: int | None = None
        self._state = _BRACKET
        self._pending: list[tuple[int, "ScenarioSpec", str]] = []
        self._request_bracket()

    # -- public protocol -------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._state == _DONE

    @property
    def pending(self) -> list["ScenarioSpec"]:
        """Specs this search wants probed next (deduplicated upstream)."""
        return [spec for _value, spec, _key in self._pending]

    def feed(self, outcomes: Mapping[str, "ScenarioOutcome"]) -> None:
        """Consume probe outcomes (keyed by spec content hash) and advance.

        ``outcomes`` may contain results this search never asked for
        (shared batches); missing results for pending probes raise — a
        scheduler must answer a whole generation at once.
        """
        if self._state == _DONE or not self._pending:
            return
        fed = []
        for value, spec, key in self._pending:
            try:
                outcome = outcomes[key]
            except KeyError:
                raise ConfigurationError(
                    f"axis {self.axis.name!r} search fed an incomplete "
                    f"generation: no outcome for value {value}"
                ) from None
            probe = AxisProbe(
                value=value,
                success=bool(outcome.success),
                decided_good=outcome.decided_good,
                total_good=outcome.total_good,
                rounds=outcome.rounds,
            )
            self._probes[value] = probe
            self._order.append(value)
            fed.append(probe)
        self._pending = []
        self._advance()

    def result(self) -> AxisFrontier:
        """The frontier found so far (final once :attr:`done`)."""
        frontier, last_failing = self._frontier()
        return AxisFrontier(
            axis=self.axis.name,
            increasing=self.axis.increasing,
            frontier=frontier,
            last_failing=last_failing,
            probes=tuple(self._probes[v] for v in self._order),
            invalid=tuple(self._invalid),
            violations=self._violations(),
            evaluations=len(self._order),
            note=self._note,
        )

    # -- internals -------------------------------------------------------------

    def _value_of(self, u: int) -> int:
        return self._sign * u

    def _valid_spec(self, value: int) -> "ScenarioSpec | None":
        """Build + validate the probe spec for ``value`` (memoized)."""
        if value in self._specs:
            return self._specs[value]
        if value in self._invalid:
            return None
        try:
            spec = self.axis.apply(self.spec, value)
        except ReproError:
            self._invalid.append(value)
            return None
        if not self._validator(spec):
            self._invalid.append(value)
            return None
        self._specs[value] = spec
        return spec

    def _first_valid(
        self, value: int, step: int, *, limit: int = _VALID_SCAN_LIMIT
    ) -> int | None:
        """First runnable value scanning from ``value`` by ``step``."""
        lo, hi = self._domain_min, self._cap
        for _ in range(limit):
            if not lo <= value <= hi:
                return None
            if self._valid_spec(value) is not None:
                return value
            value += step
        return None

    def _request(self, values: list[int]) -> None:
        self._pending = [
            (value, self._specs[value], self._specs[value].content_hash())
            for value in values
        ]

    def _request_bracket(self) -> None:
        """Queue the two domain endpoints (stepped inward past invalids)."""
        low = self._first_valid(self._domain_min, +1)
        high = self._first_valid(self._cap, -1)
        if low is None or high is None or low >= high:
            if low is not None and low == high:
                # One-point domain: probe it alone and conclude.
                self._state = _REFINE
                self._request([low])
                return
            self._note = "no valid probe values in the axis domain"
            self._state = _DONE
            return
        self._state = _BRACKET
        self._request([low, high])

    def _advance(self) -> None:
        if self._state == _BRACKET:
            self._advance_bracket()
        elif self._state == _EXPAND:
            self._advance_bracket()  # same logic: re-examine the endpoints
        elif self._state == _BISECT:
            self._advance_bisect()
        elif self._state == _REFINE:
            self._state = _DONE
        if self._state == _DONE and not self._note:
            frontier, _ = self._frontier()
            if frontier is None:
                self._note = "no working value found in the probed domain"

    def _advance_bracket(self) -> None:
        """Classify the endpoint probes; expand, bisect, refine, or stop."""
        us = sorted(self._sign * v for v in self._probes)
        u_lo, u_hi = us[0], us[-1]
        lo_success = self._probes[self._value_of(u_lo)].success
        hi_success = self._probes[self._value_of(u_hi)].success
        if not hi_success and not lo_success:
            # No success anywhere yet. On an increasing axis more budget
            # past the soft cap may still work: double toward the hard
            # cap. On a decreasing axis even the least-adversary end
            # failed, so there is nothing left to try.
            if self.axis.increasing and self._cap < self._hard_cap:
                self._cap = min(2 * self._cap + 1, self._hard_cap)
                candidate = self._first_valid(self._cap, -1)
                if candidate is not None and candidate not in self._probes:
                    self._state = _EXPAND
                    self._request([candidate])
                    return
            self._note = (
                "every probed value failed"
                if self.axis.increasing
                else "no tolerated value found (fails even at the domain floor)"
            )
            self._state = _DONE
            return
        if lo_success and hi_success:
            # Whole bracket succeeds. On a decreasing axis the success
            # region may extend past the soft cap — expand toward the
            # hard cap hunting for the first failure; on an increasing
            # axis success at the domain floor ends the search.
            if not self.axis.increasing and self._cap < self._hard_cap:
                self._cap = min(2 * self._cap + 1, self._hard_cap)
                candidate = self._first_valid(self._cap, -1)
                if candidate is not None and candidate not in self._probes:
                    self._state = _EXPAND
                    self._request([candidate])
                    return
            if not self.axis.increasing and self._cap >= self._hard_cap:
                self._note = "bracket saturated: succeeds up to the domain cap"
            self._start_refine()
            return
        if lo_success and not hi_success:
            # Inverted endpoints: the assumed monotone direction is
            # wrong for this scenario. Refuse to bisect a profile the
            # invariant doesn't hold for; report what was seen.
            self._note = (
                "endpoint outcomes invert the assumed monotone direction"
            )
            self._start_refine()
            return
        self._u_fail = u_lo
        self._u_succ = u_hi
        self._state = _BISECT
        self._advance_bisect()

    def _advance_bisect(self) -> None:
        assert self._u_fail is not None and self._u_succ is not None
        # Maintain the invariant from the newest probes: the bracket
        # tightens to the tested midpoint on the matching side.
        for value in reversed(self._order):
            u = self._sign * value
            if self._u_fail < u < self._u_succ:
                if self._probes[value].success:
                    self._u_succ = u
                else:
                    self._u_fail = u
                break
        while self._u_succ - self._u_fail > 1:
            u_mid = (self._u_fail + self._u_succ) // 2
            # Scan outward from the midpoint for a runnable value
            # strictly inside the bracket.
            candidate = None
            for offset in range(self._u_succ - self._u_fail):
                for u_try in (u_mid + offset, u_mid - offset):
                    if not self._u_fail < u_try < self._u_succ:
                        continue
                    value = self._value_of(u_try)
                    if value in self._probes:
                        continue
                    if self._valid_spec(value) is not None:
                        candidate = value
                        break
                if candidate is not None:
                    break
            if candidate is None:
                break  # nothing runnable strictly inside: bracket is tight
            self._request([candidate])
            return
        self._start_refine()

    def _start_refine(self) -> None:
        """Probe unprobed valid values near the frontier, all in one batch."""
        frontier, _ = self._frontier()
        center = frontier
        if center is None:
            # No success region: refine around the best-covered failure
            # so the report shows the shape of the loss, not a void.
            if not self._probes:
                self._state = _DONE
                return
            center = max(
                self._probes.values(),
                key=lambda p: (p.decided_good, -p.value * self._sign),
            ).value
        wanted = []
        for delta in range(-self.refine, self.refine + 1):
            value = center + delta
            if not self._domain_min <= value <= self._cap:
                continue
            if value in self._probes or value in self._invalid:
                continue
            if self._valid_spec(value) is not None:
                wanted.append(value)
        if not wanted:
            self._state = _DONE
            return
        self._state = _REFINE
        self._request(sorted(wanted))

    def _frontier(self) -> tuple[int | None, int | None]:
        """(frontier, last_failing) from all probes, conservatively.

        The frontier is the smallest success (in unified coordinates)
        strictly above every failure — i.e. the boundary consistent with
        *all* observations. Violations below it are reported separately.
        """
        fail_us = [
            self._sign * p.value for p in self._probes.values() if not p.success
        ]
        succ_us = [
            self._sign * p.value for p in self._probes.values() if p.success
        ]
        if not succ_us:
            return None, (
                self._value_of(max(fail_us)) if fail_us else None
            )
        max_fail = max(fail_us) if fail_us else None
        if max_fail is None:
            return self._value_of(min(succ_us)), None
        above = [u for u in succ_us if u > max_fail]
        if not above:
            return None, self._value_of(max_fail)
        return self._value_of(min(above)), self._value_of(max_fail)

    def _violations(self) -> tuple[MonotonicityViolation, ...]:
        ordered = sorted(self._probes.values(), key=lambda p: self._sign * p.value)
        found = []
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.success and not later.success:
                found.append(
                    MonotonicityViolation(
                        axis=self.axis.name,
                        succeeded_at=earlier.value,
                        failed_at=later.value,
                    )
                )
        return tuple(found)


def frontier_search(
    spec: "ScenarioSpec",
    axis: str | FrontierAxis,
    *,
    refine: int = 1,
    workers: int | None = 1,
    cache: "ResultCache | None" = None,
) -> AxisFrontier:
    """Run one axis search to completion through the sweep substrate.

    Every probe goes through :func:`repro.runner.parallel.probe_batch`
    with ``run_summary``, so results are cache-keyed by content hash and
    an immediate re-run answers from the cache.
    """
    from repro.runner.parallel import probe_batch
    from repro.scenario.runner import run_summary

    search = AxisSearch(spec, axis, refine=refine)
    while not search.done:
        pending = search.pending
        batch = probe_batch(pending, run_summary, workers=workers, cache=cache)
        search.feed(
            {
                s.content_hash(): outcome
                for s, outcome in zip(pending, batch.results)
            }
        )
    return search.result()


# -- historical minimum-budget API ---------------------------------------------


def find_min_working_budget(
    base: "ThresholdRunConfig | ScenarioSpec",
    *,
    low: int = 1,
    high: int,
    runner: "Callable[[Any], BroadcastReport] | None" = None,
    cache: "ResultCache | None" = None,
) -> BudgetSearchResult:
    """Bisect the smallest ``m`` for which the scenario succeeds.

    ``base`` supplies everything but ``m`` — either a
    :class:`~repro.scenario.spec.ScenarioSpec` or (compatibly) a
    :class:`~repro.runner.broadcast_run.ThresholdRunConfig`, which is
    translated through its exact ``to_scenario_spec`` mapping. ``high``
    must succeed (use ``2*m0`` per Theorem 2); if even ``low`` succeeds
    the result is ``low`` with ``max_failing_m=None``.

    Probes execute through the shared sweep substrate: with ``cache``
    set, each probe is memoized on disk by the probe spec's content
    hash, so repeating or widening a search only computes new budgets.
    ``runner`` remains for callers that probe through a custom runner
    (it receives ``dataclasses.replace(base, m=m)`` and must return an
    object with a ``success`` attribute); such probes bypass the cache.
    """
    if low < 1 or high < low:
        raise ConfigurationError(f"invalid bracket [{low}, {high}]")

    if runner is not None:

        def probe(m: int) -> bool:
            return bool(runner(dataclasses.replace(base, m=m)).success)

    else:
        from repro.runner.parallel import probe_batch
        from repro.scenario.runner import run_summary
        from repro.scenario.spec import ScenarioSpec

        spec = base if isinstance(base, ScenarioSpec) else base.to_scenario_spec()

        def probe(m: int) -> bool:
            batch = probe_batch(
                [spec.replace(m=m)], run_summary, workers=1, cache=cache
            )
            return bool(batch.results[0].success)

    tested: list[tuple[int, bool]] = []

    def succeeds(m: int) -> bool:
        success = probe(m)
        tested.append((m, success))
        return success

    if not succeeds(high):
        raise ConfigurationError(
            f"bracket top m={high} fails; pick a sufficient upper bound "
            f"(Theorem 2's 2*m0 is guaranteed)"
        )
    if succeeds(low):
        return BudgetSearchResult(
            min_working_m=low,
            max_failing_m=None,
            evaluations=len(tested),
            tested=tuple(tested),
        )

    lo, hi = low, high  # lo fails, hi succeeds: invariant of the loop
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if succeeds(mid):
            hi = mid
        else:
            lo = mid
    return BudgetSearchResult(
        min_working_m=hi,
        max_failing_m=lo,
        evaluations=len(tested),
        tested=tuple(tested),
    )
