"""Empirical feasibility search over the good-node budget ``m``.

For a fixed scenario (grid, t, mf, placement, adversary) broadcast
success is monotone in ``m`` in practice: more budget never hurts a
threshold protocol (relays are capped by ``min(m', m)``). This module
exploits that to binary-search the *empirical minimum working budget*,
the quantity the paper brackets between ``m0`` and ``2*m0``.

Monotonicity is an empirical property of our adversaries, not a theorem
— the search therefore verifies the bracket endpoints before bisecting
and reports the verified frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import ConfigurationError
from repro.runner.broadcast_run import (
    BroadcastReport,
    ThresholdRunConfig,
    run_threshold_broadcast,
)


@dataclass(frozen=True)
class BudgetSearchResult:
    """Outcome of a minimum-budget bisection."""

    min_working_m: int
    max_failing_m: int | None
    evaluations: int
    tested: tuple[tuple[int, bool], ...]  # (m, success) pairs, in test order


def find_min_working_budget(
    base: ThresholdRunConfig,
    *,
    low: int = 1,
    high: int,
    runner: Callable[[ThresholdRunConfig], BroadcastReport] = run_threshold_broadcast,
) -> BudgetSearchResult:
    """Bisect the smallest ``m`` for which the scenario succeeds.

    ``base`` supplies everything but ``m``; ``high`` must succeed (use
    ``2*m0`` per Theorem 2). If even ``low`` succeeds the result is
    ``low`` with ``max_failing_m=None``.
    """
    if low < 1 or high < low:
        raise ConfigurationError(f"invalid bracket [{low}, {high}]")

    tested: list[tuple[int, bool]] = []

    def succeeds(m: int) -> bool:
        report = runner(replace(base, m=m))
        tested.append((m, report.success))
        return report.success

    if not succeeds(high):
        raise ConfigurationError(
            f"bracket top m={high} fails; pick a sufficient upper bound "
            f"(Theorem 2's 2*m0 is guaranteed)"
        )
    if succeeds(low):
        return BudgetSearchResult(
            min_working_m=low,
            max_failing_m=None,
            evaluations=len(tested),
            tested=tuple(tested),
        )

    lo, hi = low, high  # lo fails, hi succeeds: invariant of the loop
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if succeeds(mid):
            hi = mid
        else:
            lo = mid
    return BudgetSearchResult(
        min_working_m=hi,
        max_failing_m=lo,
        evaluations=len(tested),
        tested=tuple(tested),
    )
