"""The scenario atlas: adaptive frontier maps over bundled scenarios.

``python -m repro atlas`` locates the empirical success/failure
frontier of each bundled preset along every searchable axis
(:data:`repro.analysis.search.FRONTIER_AXES`: good budget ``m``,
adversary density ``t``, adversary budget ``mf``) and publishes the
result as a browsable artifact pair — ``atlas.md`` (per-axis frontier
tables, probe-by-probe evidence, theory brackets) and ``atlas.json``
(the same data, machine-readable) — in the declarative
measures→generated-report style.

The atlas is *searched, not enumerated*: every ``(scenario, axis)``
pair runs an :class:`~repro.analysis.search.AxisSearch` bisection, and
each generation gathers the pending probes of **all** live searches
into one :func:`repro.runner.parallel.probe_batch`, so probes run in
parallel, are deduplicated across searches, and are cache-keyed by
``spec.content_hash()`` — a re-run with the same ``--cache-dir``
answers almost entirely from the :class:`~repro.runner.parallel.
ResultCache` and only computes what changed.

Artifacts are deterministic by construction: no timestamps, no cache
provenance, no machine identifiers — the same scenarios and seeds
produce byte-identical files, so artifact diffs mean *frontier* diffs.
Cache/runtime statistics go to stdout via the CLI instead.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.analysis.bounds import m0, max_locally_bounded_t
from repro.analysis.search import (
    FRONTIER_AXES,
    AxisFrontier,
    AxisSearch,
)
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.runner.parallel import ResultCache
    from repro.scenario.spec import ScenarioSpec

#: Presets a full atlas maps, in report order. ``megatorus`` is excluded
#: (each probe is a 10^6-node run — the bench trajectory covers it) and
#: ``stripe-impossibility`` is included to show a frontier from the
#: failing side.
DEFAULT_ATLAS_PRESETS = (
    "quickstart",
    "stripe-impossibility",
    "theorem2",
    "figure2",
    "reactive",
)

#: The ``--quick`` slice: enough to exercise every axis and both report
#: renderers in CI without minutes of probing.
QUICK_ATLAS_PRESETS = ("quickstart",)

#: Axis order in reports (the registry's insertion order).
DEFAULT_AXES = tuple(FRONTIER_AXES)

#: Artifact file names inside the output directory.
MARKDOWN_NAME = "atlas.md"
JSON_NAME = "atlas.json"

#: Schema version stamped into ``atlas.json``.
ATLAS_VERSION = 1


@dataclass(frozen=True)
class AtlasEntry:
    """One scenario's frontier map: the spec and a frontier per axis."""

    name: str
    spec: "ScenarioSpec"
    frontiers: tuple[AxisFrontier, ...]


@dataclass(frozen=True)
class AtlasResult:
    """A built atlas plus the probe economics of building it.

    ``computed``/``cached``/``deduped`` aggregate the
    :class:`~repro.runner.parallel.ProbeBatch` counters across all
    generations — ``cached`` over their sum is the incremental-re-run
    ratio the acceptance gate checks. They describe the *run*, not the
    atlas, and are deliberately kept out of the artifacts.
    """

    entries: tuple[AtlasEntry, ...]
    generations: int
    computed: int
    cached: int
    deduped: int
    elapsed_s: float

    @property
    def probes(self) -> int:
        return self.computed + self.cached

    @property
    def cached_fraction(self) -> float:
        return self.cached / self.probes if self.probes else 0.0


def build_atlas(
    scenarios: Sequence[tuple[str, "ScenarioSpec"]],
    *,
    axes: Sequence[str] = DEFAULT_AXES,
    refine: int = 1,
    workers: int | None = 1,
    cache: "ResultCache | None" = None,
    log: Callable[[str], None] | None = None,
) -> AtlasResult:
    """Run every ``(scenario, axis)`` frontier search, batching probes.

    All live searches contribute their pending probe specs to one shared
    :func:`~repro.runner.parallel.probe_batch` per generation — probes
    common to several searches (or several scenarios) execute once, and
    with ``cache`` set each unique probe is memoized on disk by content
    hash. ``log`` (when given) receives one progress line per
    generation.
    """
    from repro.runner.parallel import probe_batch
    from repro.scenario.runner import run_summary

    for axis in axes:
        if axis not in FRONTIER_AXES:
            known = ", ".join(FRONTIER_AXES)
            raise ConfigurationError(
                f"unknown atlas axis {axis!r}; known axes: {known}"
            )
    searches = [
        (name, spec, axis, AxisSearch(spec, axis, refine=refine))
        for name, spec in scenarios
        for axis in axes
    ]
    generations = computed = cached = deduped = 0
    started = time.perf_counter()
    while True:
        pending: list["ScenarioSpec"] = []
        for _name, _spec, _axis, search in searches:
            if not search.done:
                pending.extend(search.pending)
        if not pending:
            break
        batch = probe_batch(pending, run_summary, workers=workers, cache=cache)
        outcomes = {
            spec.content_hash(): outcome
            for spec, outcome in zip(pending, batch.results)
        }
        for _name, _spec, _axis, search in searches:
            if not search.done:
                search.feed(outcomes)
        generations += 1
        computed += batch.computed
        cached += batch.cached
        deduped += batch.deduped
        if log is not None:
            live = sum(1 for *_rest, s in searches if not s.done)
            log(
                f"generation {generations}: {len(pending)} probes "
                f"({batch.cached} cached, {batch.deduped} deduped), "
                f"{live} searches still open"
            )
    entries = []
    for name, spec in scenarios:
        frontiers = tuple(
            search.result()
            for sname, _spec, _axis, search in searches
            if sname == name
        )
        entries.append(AtlasEntry(name=name, spec=spec, frontiers=frontiers))
    return AtlasResult(
        entries=tuple(entries),
        generations=generations,
        computed=computed,
        cached=cached,
        deduped=deduped,
        elapsed_s=time.perf_counter() - started,
    )


# -- renderers -----------------------------------------------------------------


def _axis_label(frontier: AxisFrontier) -> str:
    direction = "min working" if frontier.increasing else "max tolerated"
    return f"{frontier.axis} ({direction})"


def _baseline_row(spec: "ScenarioSpec") -> dict:
    bound = m0(spec.grid.r, spec.t, spec.mf)
    return {
        "grid": (
            f"{spec.grid.width}x{spec.grid.height} r={spec.grid.r}"
            f"{' torus' if spec.grid.torus else ''}"
        ),
        "protocol": spec.protocol,
        "behavior": spec.behavior,
        "placement": type(spec.placement).__name__,
        "t": spec.t,
        "mf": spec.mf,
        "m": spec.m,
        "m0": bound,
        "sufficient_m": 2 * bound,
        "t_cap": max_locally_bounded_t(spec.grid.r),
        "seed": spec.seed,
    }


def atlas_to_dict(result: AtlasResult) -> dict:
    """The deterministic JSON artifact payload (no run provenance)."""
    return {
        "atlas_version": ATLAS_VERSION,
        "scenarios": [
            {
                "name": entry.name,
                "content_hash": entry.spec.content_hash(),
                "baseline": _baseline_row(entry.spec),
                "axes": [
                    {
                        "axis": f.axis,
                        "increasing": f.increasing,
                        "frontier": f.frontier,
                        "last_failing": f.last_failing,
                        "evaluations": f.evaluations,
                        "note": f.note,
                        "invalid": list(f.invalid),
                        "violations": [
                            {
                                "axis": v.axis,
                                "succeeded_at": v.succeeded_at,
                                "failed_at": v.failed_at,
                            }
                            for v in f.violations
                        ],
                        "probes": [
                            {
                                "value": p.value,
                                "success": p.success,
                                "decided_good": p.decided_good,
                                "total_good": p.total_good,
                                "rounds": p.rounds,
                            }
                            for p in sorted(f.probes, key=lambda p: p.value)
                        ],
                    }
                    for f in entry.frontiers
                ],
            }
            for entry in result.entries
        ],
    }


def render_json(result: AtlasResult) -> str:
    return json.dumps(atlas_to_dict(result), indent=2, sort_keys=True) + "\n"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_markdown(result: AtlasResult) -> str:
    """The browsable artifact: frontier tables + probe evidence per axis."""
    out = [
        "# Scenario atlas",
        "",
        "Empirical success/failure frontiers of the bundled scenarios, "
        "located by adaptive bisection (`repro.analysis.search`) along "
        "each axis. `m` reports the minimum working good-node budget "
        "(the paper brackets it in `[m0, 2*m0]`); `t` and `mf` report "
        "the largest adversary density/budget the scenario tolerates. "
        "A ⚠ marks a monotonicity violation: a strictly more favorable "
        "configuration that failed where a less favorable one succeeded.",
        "",
    ]
    for entry in result.entries:
        base = _baseline_row(entry.spec)
        out.append(f"## {entry.name}")
        out.append("")
        out.append(
            f"`{base['grid']}` · protocol `{base['protocol']}` · behavior "
            f"`{base['behavior']}` · placement `{base['placement']}` · "
            f"spec `{entry.spec.content_hash()[:12]}`"
        )
        out.append("")
        out.append(
            f"Baseline: t={base['t']}, mf={base['mf']}, m={base['m']}; "
            f"theory: m0={base['m0']}, sufficient 2·m0={base['sufficient_m']}, "
            f"locally-bounded t ≤ {base['t_cap']}."
        )
        out.append("")
        out.append(
            _md_table(
                ["axis", "frontier", "last failing", "probes", "note"],
                [
                    [
                        _axis_label(f),
                        "—" if f.frontier is None else f.frontier,
                        "—" if f.last_failing is None else f.last_failing,
                        f.evaluations,
                        ("⚠ " if f.violations else "") + (f.note or ""),
                    ]
                    for f in entry.frontiers
                ],
            )
        )
        out.append("")
        for frontier in entry.frontiers:
            out.append(f"### {entry.name} · axis `{frontier.axis}`")
            out.append("")
            if frontier.violations:
                for v in frontier.violations:
                    out.append(
                        f"- ⚠ **monotonicity violation**: "
                        f"`{v.axis}={v.succeeded_at}` succeeded although the "
                        f"more favorable `{v.axis}={v.failed_at}` failed."
                    )
                out.append("")
            if frontier.invalid:
                out.append(
                    "Invalid (out-of-domain) values skipped: "
                    + ", ".join(str(v) for v in frontier.invalid)
                    + "."
                )
                out.append("")
            out.append(
                _md_table(
                    ["value", "outcome", "decided/good", "rounds"],
                    [
                        [
                            p.value,
                            "success" if p.success else "fail",
                            f"{p.decided_good}/{p.total_good}",
                            p.rounds,
                        ]
                        for p in sorted(
                            frontier.probes, key=lambda p: p.value
                        )
                    ],
                )
            )
            out.append("")
    return "\n".join(out).rstrip("\n") + "\n"


def write_artifacts(result: AtlasResult, out_dir: str | Path) -> tuple[Path, Path]:
    """Write ``atlas.md`` + ``atlas.json`` into ``out_dir``; return paths."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    md_path = directory / MARKDOWN_NAME
    json_path = directory / JSON_NAME
    md_path.write_text(render_markdown(result), encoding="utf-8")
    json_path.write_text(render_json(result), encoding="utf-8")
    return md_path, json_path


# -- CLI body ------------------------------------------------------------------


def atlas_command(
    targets: Sequence[str] = (),
    *,
    quick: bool = False,
    axes: str | None = None,
    refine: int = 1,
    workers: int = 1,
    cache_dir: str | None = None,
    out_dir: str = "atlas",
    show_progress: bool = True,
) -> int:
    """Entry point behind ``python -m repro atlas``.

    ``targets`` are preset names (default: the full atlas slice, or
    :data:`QUICK_ATLAS_PRESETS` with ``quick``). ``axes`` is a
    comma-separated subset of the axis registry. With ``cache_dir``
    every probe is memoized, so repeated invocations are incremental;
    stats print to stdout and never enter the artifacts.
    """
    from repro.runner.parallel import ResultCache
    from repro.scenario.presets import preset

    names = list(targets) or list(
        QUICK_ATLAS_PRESETS if quick else DEFAULT_ATLAS_PRESETS
    )
    axis_names = (
        tuple(a.strip() for a in axes.split(",") if a.strip())
        if axes
        else DEFAULT_AXES
    )
    scenarios = [(name, preset(name)) for name in names]
    cache = (
        ResultCache(cache_dir, namespace="scenario")
        if cache_dir is not None
        else None
    )
    log = (lambda line: print(line, file=sys.stderr)) if show_progress else None
    result = build_atlas(
        scenarios,
        axes=axis_names,
        refine=refine,
        workers=workers,
        cache=cache,
        log=log,
    )
    md_path, json_path = write_artifacts(result, out_dir)
    for entry in result.entries:
        parts = []
        for frontier in entry.frontiers:
            shown = "—" if frontier.frontier is None else frontier.frontier
            flag = "⚠" if frontier.violations else ""
            parts.append(f"{frontier.axis}={shown}{flag}")
        print(f"{entry.name}: {', '.join(parts)}")
    print(
        f"[atlas: {len(result.entries)} scenarios, {result.probes} probes "
        f"({result.cached} cached, {result.deduped} deduped) in "
        f"{result.generations} generations, {result.elapsed_s:.1f}s]"
    )
    print(f"[artifacts: {md_path}, {json_path}]")
    return 0
