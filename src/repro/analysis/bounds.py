"""Closed-form quantities from the paper, in exact integer arithmetic.

Central notation (paper §1.2-1.3):

- ``r`` — transmission radius, L∞ metric;
- ``t`` — maximum bad nodes per neighborhood, ``t < r(2r+1)``;
- ``mf`` — message budget of each bad node;
- ``m`` — message budget of each good node;
- ``m0 = ceil((2 t mf + 1) / (r(2r+1) - t))`` — the lower-bound budget of
  Theorem 1.

Every function validates its preconditions; formulas are implemented with
integer ceil-division so there is no floating-point drift anywhere in the
feasibility logic.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def _ceil_div(a: int, b: int) -> int:
    """Exact ceiling division for positive operands."""
    if b <= 0:
        raise ConfigurationError(f"ceil division by non-positive {b}")
    return -(-a // b)


def half_neighborhood(r: int) -> int:
    """``r(2r+1)``: nodes in an r x (2r+1) stripe — half an open neighborhood."""
    if r < 1:
        raise ConfigurationError(f"radius must be >= 1, got {r}")
    return r * (2 * r + 1)


def validate_t(r: int, t: int) -> None:
    """The locally-bounded adversary model requires ``0 <= t < r(2r+1)``."""
    if t < 0:
        raise ConfigurationError(f"t must be non-negative, got {t}")
    if t >= half_neighborhood(r):
        raise ConfigurationError(
            f"t={t} violates the model bound t < r(2r+1) = {half_neighborhood(r)}"
        )


def max_locally_bounded_t(r: int) -> int:
    """Largest ``t`` admitted by the message-bounded model: ``r(2r+1) - 1``."""
    return half_neighborhood(r) - 1


def max_reactive_t(r: int) -> int:
    """Largest ``t`` tolerated by B_reactive (§5): ``t < r(2r+1)/2``.

    This is the classic Koo / Bhandari-Vaidya threshold ``ceil(r(2r+1)/2) - 1``.
    """
    return _ceil_div(half_neighborhood(r), 2) - 1


def m0(r: int, t: int, mf: int) -> int:
    """Theorem 1's lower bound: ``ceil((2 t mf + 1) / (r(2r+1) - t))``.

    Any homogeneous good-node budget below this makes reliable broadcast
    impossible under the stripe adversary.
    """
    validate_t(r, t)
    if mf < 0:
        raise ConfigurationError(f"mf must be non-negative, got {mf}")
    return _ceil_div(2 * t * mf + 1, half_neighborhood(r) - t)


def accept_threshold(t: int, mf: int) -> int:
    """Copies needed to accept a value: ``t*mf + 1`` (Lemma 1's soundness)."""
    return t * mf + 1


def source_send_count(t: int, mf: int) -> int:
    """Local broadcasts the (unbounded) source performs: ``2 t mf + 1``."""
    return 2 * t * mf + 1


def protocol_b_relay_count(r: int, t: int, mf: int) -> int:
    """Relay count of protocol B: ``ceil((2tmf+1) / ceil((r(2r+1)-t)/2))``.

    This is the heterogeneous ``m'`` of Theorem 3 as well; it always
    satisfies ``m' <= 2 * m0`` (checked by tests and asserted here since
    Theorem 2 relies on it).
    """
    validate_t(r, t)
    half_good = _ceil_div(half_neighborhood(r) - t, 2)
    relay = _ceil_div(2 * t * mf + 1, half_good)
    assert relay <= 2 * m0(r, t, mf), "protocol B relay count exceeded 2*m0"
    return relay


def koo_budget(t: int, mf: int) -> int:
    """Per-node budget of the baseline scheme from [14]: ``2 t mf + 1``.

    The paper's comparison point: every node individually out-shouts the
    worst-case ``t*mf`` collisions in its own neighborhood.
    """
    return 2 * t * mf + 1


def budget_ratio_vs_koo(r: int, t: int, mf: int) -> float:
    """``koo_budget / protocol_b_relay_count`` ≈ ``(r(2r+1) - t)/2``.

    The paper states the baseline needs ``(r(2r+1)-t)/2`` times protocol
    B's budget; the exact ratio differs only by ceilings.
    """
    return koo_budget(t, mf) / protocol_b_relay_count(r, t, mf)


def corollary1_min_breakable_t(r: int, m: int, mf: int) -> int:
    """Corollary 1, impossibility side.

    Any ``t > (m * r(2r+1) - 1) / (2 mf + m)`` can cause broadcast to fail;
    returns the smallest such integer t. (Equivalent to the smallest t with
    ``m < m0(r, t, mf)``.)
    """
    if m < 1:
        raise ConfigurationError(f"good budget must be >= 1, got {m}")
    numerator = m * half_neighborhood(r) - 1
    denominator = 2 * mf + m
    return numerator // denominator + 1


def corollary1_max_tolerable_t(r: int, m: int, mf: int) -> int:
    """Corollary 1, possibility side.

    Any ``t <= (m * r(2r+1) - 2) / (4 mf + m)`` can be tolerated by some
    protocol; returns that floor value (possibly 0).
    """
    if m < 1:
        raise ConfigurationError(f"good budget must be >= 1, got {m}")
    numerator = m * half_neighborhood(r) - 2
    denominator = 4 * mf + m
    if numerator < 0:
        return 0
    return numerator // denominator


def theorem4_budget(
    t: int, mf: int, n: int, mmax: int, k: int, *, exact_k_terms: bool = False
) -> float:
    """Theorem 4's per-node transmission bound for B_reactive.

    ``m = 2 (t mf + 1) (2 log n + log t + log mmax) (k + 2 log k + 2)``

    Logarithms are base 2 (they size the sub-bit sequence ``L`` and the
    coded length ``K``). With ``exact_k_terms`` the coded-length factor is
    replaced by the exact ``K = sum(k_i)`` of the segment chain, which is
    slightly smaller than the paper's ``k + 2 log k + 2`` upper bound.
    """
    if min(t, mf, n, mmax, k) < 1:
        raise ConfigurationError("theorem4_budget requires all parameters >= 1")
    sub_bits = 2 * math.log2(n) + math.log2(t) + math.log2(mmax)
    if exact_k_terms:
        from repro.coding.params import coded_length

        k_factor: float = coded_length(k)
    else:
        k_factor = k + 2 * math.log2(k) + 2
    return 2 * (t * mf + 1) * sub_bits * k_factor


def uncertain_region(r: int, t: int, mf: int) -> tuple[int, int]:
    """The open interval ``(m0, 2*m0)`` the paper leaves unresolved (§6)."""
    lower = m0(r, t, mf)
    return (lower, 2 * lower)
