"""Good-node budget assignments (homogeneous §3 / heterogeneous §4).

A :class:`BudgetAssignment` maps every honest node to its message budget
and knows its own aggregate statistics (average budget, privileged-node
count) — the quantities Theorem 3's "substantially reduced average
message cost" claim is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import m0 as bound_m0
from repro.analysis.bounds import protocol_b_relay_count
from repro.geometry.regions import Cross
from repro.network.grid import Grid
from repro.types import NodeId


@dataclass(frozen=True)
class BudgetAssignment:
    """Budgets for every honest node (the source is always unbounded).

    ``budgets`` holds one entry per node id; entries for bad nodes are
    present but unused (bad budgets come from ``mf``, not from here).
    """

    budgets: tuple[int, ...]
    source: NodeId
    privileged: frozenset[NodeId]
    label: str

    def budget_of(self, node_id: NodeId) -> int | None:
        if node_id == self.source:
            return None  # the base station is not message-bounded
        return self.budgets[node_id]

    def overrides(self) -> dict[NodeId, int | None]:
        """Ledger overrides: per-node budgets plus the unbounded source."""
        mapping: dict[NodeId, int | None] = {
            nid: budget for nid, budget in enumerate(self.budgets)
        }
        mapping[self.source] = None
        return mapping

    @property
    def average(self) -> float:
        """Average budget over non-source nodes."""
        total = sum(b for nid, b in enumerate(self.budgets) if nid != self.source)
        return total / (len(self.budgets) - 1)

    @property
    def maximum(self) -> int:
        return max(
            budget for nid, budget in enumerate(self.budgets) if nid != self.source
        )


def homogeneous_assignment(grid: Grid, source: NodeId, m: int) -> BudgetAssignment:
    """Every good node gets the same budget ``m`` (§2-§3 setting)."""
    return BudgetAssignment(
        budgets=tuple([m] * grid.n),
        source=source,
        privileged=frozenset(),
        label=f"homogeneous(m={m})",
    )


def heterogeneous_assignment(
    grid: Grid,
    source: NodeId,
    t: int,
    mf: int,
    *,
    arm_half_width: int | None = None,
) -> BudgetAssignment:
    """Theorem 3's configuration: ``m'`` on a cross through the source, ``m0`` elsewhere.

    The cross (Figure 5) is the set of nodes within L∞ distance ``r`` of
    either axis through the source; on the torus the arms wrap around the
    network, matching the figure's cross that spans the deployment. The
    privileged budget is ``m' = ceil((2tmf+1)/ceil((r(2r+1)-t)/2))`` and
    everyone else gets ``m0``.

    In an infinite-plane reading the privileged area is Θ(r) wide and
    Θ(r²)-long arms => Θ(r³) nodes; on a finite torus the arm length is
    capped by the grid, which is the realistic deployment the experiments
    measure.
    """
    r = grid.r
    half_width = r if arm_half_width is None else arm_half_width
    low = bound_m0(r, t, mf)
    high = protocol_b_relay_count(r, t, mf)
    cross = Cross(center=grid.coord_of(source), arm_half_width=half_width)

    budgets = []
    privileged = set()
    for node_id in grid.all_ids():
        coord = grid.coord_of(node_id)
        if grid.torus:
            inside = cross.contains_torus(coord, grid.width, grid.height)
        else:
            inside = cross.contains(coord)
        if inside:
            privileged.add(node_id)
            budgets.append(high)
        else:
            budgets.append(low)
    return BudgetAssignment(
        budgets=tuple(budgets),
        source=source,
        privileged=frozenset(privileged),
        label=f"heterogeneous(m'={high}, m0={low})",
    )
