"""``repro.serve`` — the long-lived scenario service.

Turns the sweep engine into a request-serving daemon: ScenarioSpec JSON
in over HTTP (or stdin lines), the exact ``run(spec)`` report bytes
back out, with in-flight dedup, an in-memory LRU over the on-disk
result cache, and batched dispatch to a persistent worker pool. See
:mod:`repro.serve.service` for the architecture and the byte-identity
contract, :mod:`repro.serve.http` for the wire front end, and
``python -m repro serve --help`` for the CLI.
"""

from repro.serve.service import (
    DEFAULT_SERVE_FAST,
    InlinePool,
    LruCache,
    ScenarioService,
    ServeResult,
    ServiceStats,
    report_bytes,
    serialize_outcome,
)

__all__ = [
    "DEFAULT_SERVE_FAST",
    "InlinePool",
    "LruCache",
    "ScenarioService",
    "ServeResult",
    "ServiceStats",
    "report_bytes",
    "serialize_outcome",
]
