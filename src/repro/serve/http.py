"""Minimal HTTP/1.1 front end for :class:`~repro.serve.service.ScenarioService`.

Stdlib-only by standing rule: ``asyncio.start_server`` plus a
hand-rolled request parser covering exactly what the service needs —
``POST /run`` with a ``Content-Length`` JSON body, a few ``GET``
introspection routes, and keep-alive. No chunked encoding, no TLS, no
Date header (responses must be deterministic for a given cache state).

Routes:

- ``POST /run`` — a :class:`~repro.scenario.ScenarioSpec` JSON object;
  answers the exact bytes a direct ``run(spec)`` report serializes to
  (200), a structured ``{"error", "field", "suggestions"}`` body (400),
  ``503`` + ``Retry-After`` when the compute queue is saturated or the
  service is draining, or ``500`` for a simulation failure.
- ``GET /healthz`` — liveness and pool health: ``status`` is ``"ok"`` or
  ``"degraded"``, plus pool liveness, restart count, and the degraded /
  timeout counters (see
  :meth:`~repro.serve.service.ScenarioService.health_payload`).
- ``GET /stats`` — the service counters (requests, cache hits, dedup
  and hit rates, queue depth, LRU occupancy).
- ``GET /presets`` — bundled preset names with their content hashes,
  so a client can warm or probe the cache without composing specs.

The daemon (:func:`run_daemon`) installs SIGTERM/SIGINT handlers that
trigger a graceful drain: stop accepting connections, finish everything
queued, answer every in-flight request, then exit — so a supervisor's
``SIGTERM`` never loses accepted work.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from typing import Any, TextIO

from repro.chaos import inject as _chaos
from repro.serve.service import ScenarioService, ServeResult, canonical_bytes

#: Upper bound on request head + body we will buffer (1 MiB covers any
#: plausible spec many times over; bigger requests get a 413).
MAX_REQUEST_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def render_response(
    status: int,
    body: bytes,
    *,
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one deterministic HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def _result_headers(result: ServeResult) -> tuple[tuple[str, str], ...]:
    headers: list[tuple[str, str]] = []
    if result.scenario is not None:
        headers.append(("X-Scenario", result.scenario))
    if result.source is not None:
        headers.append(("X-Source", result.source))
    if result.retry_after is not None:
        headers.append(("Retry-After", str(result.retry_after)))
    return tuple(headers)


class _BadRequest(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; ``None`` on clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _BadRequest(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _BadRequest(413, "request head too large") from None
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError:
        raise _BadRequest(400, "request head is not ASCII") from None
    request_line, *header_lines = text.split("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise _BadRequest(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _BadRequest(400, "bad Content-Length") from None
        if length < 0 or length > MAX_REQUEST_BYTES:
            raise _BadRequest(413, "request body too large")
        body = await reader.readexactly(length)
    return method, target, headers, body


def _presets_payload() -> dict[str, Any]:
    from repro.scenario import preset, preset_names

    return {
        "presets": {
            name: preset(name).content_hash() for name in preset_names()
        }
    }


async def handle_request(
    service: ScenarioService, method: str, target: str, body: bytes
) -> ServeResult:
    """Route one parsed request to the service (transport-independent)."""
    target = target.partition("?")[0]
    if target == "/run":
        if method != "POST":
            return ServeResult(
                405, canonical_bytes({"error": "use POST /run"})
            )
        return await service.submit_payload(body)
    if method != "GET":
        return ServeResult(
            405, canonical_bytes({"error": f"use GET {target}"})
        )
    if target == "/healthz":
        return ServeResult(200, canonical_bytes(service.health_payload()))
    if target == "/stats":
        return ServeResult(200, canonical_bytes(service.stats_payload()))
    if target == "/presets":
        return ServeResult(200, canonical_bytes(_presets_payload()))
    return ServeResult(
        404,
        canonical_bytes(
            {"error": f"no route {target!r}; routes: /run /healthz /stats /presets"}
        ),
    )


async def handle_connection(
    service: ScenarioService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one keep-alive connection until EOF or ``Connection: close``."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                writer.write(
                    render_response(
                        exc.status,
                        canonical_bytes({"error": str(exc)}),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                break
            if request is None:
                break
            method, target, headers, body = request
            route = target.partition("?")[0]
            result = await handle_request(service, method, target, body)
            if route == "/run" and _chaos.connection_reset():
                # Chaos injection: the response was computed (and cached)
                # but the client never sees it — the worst-timed reset.
                # Aborting skips the FIN handshake, so the client gets
                # ECONNRESET rather than a clean EOF.
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                break
            keep_alive = headers.get("connection", "").lower() != "close"
            writer.write(
                render_response(
                    result.status,
                    result.body,
                    extra_headers=_result_headers(result),
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away mid-request; shielded compute continues
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def run_daemon(
    service: ScenarioService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | None = None,
    out: TextIO | None = None,
    ready: "asyncio.Event | None" = None,
    stop: "asyncio.Event | None" = None,
) -> None:
    """Serve until SIGTERM/SIGINT (or ``stop``), then drain gracefully.

    ``port=0`` binds an ephemeral port; the bound port is printed and,
    when ``port_file`` is given, written there so harnesses (the CI smoke
    job, the serve benchmark) can discover it without racing on output
    parsing. ``ready``/``stop`` are seams for in-process embedding.
    """
    out = out if out is not None else sys.stdout
    stop = stop if stop is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    connections: set["asyncio.Task[None]"] = set()

    async def _connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        connections.add(task)
        task.add_done_callback(connections.discard)
        await handle_connection(service, reader, writer)

    await service.start()
    server = await asyncio.start_server(
        _connection, host=host, port=port, limit=MAX_REQUEST_BYTES
    )
    bound_port = server.sockets[0].getsockname()[1]
    if port_file is not None:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(str(bound_port))
    print(f"repro serve: listening on http://{host}:{bound_port}", file=out)
    out.flush()

    installed: list[int] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # non-Unix loops
            pass
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        # Finish queued compute and resolve every in-flight request...
        await service.drain()
        # ...then give connections a moment to flush their responses.
        if connections:
            done, pending = await asyncio.wait(list(connections), timeout=2.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        stats = service.stats
        print(
            "repro serve: drained "
            f"({stats.requests} requests: {stats.computed} computed, "
            f"{stats.lru_hits + stats.disk_hits} cache hits, "
            f"{stats.deduped} deduped, {stats.rejected} rejected)",
            file=out,
        )
        out.flush()


from repro import seams as _seams  # noqa: E402

_seams.register_chaos(
    _seams.ChaosPoint(
        name="serve-connection",
        module="repro.serve.http",
        hook="repro.chaos.inject.connection_reset",
        kinds=("connection-reset",),
        description="abort the client connection after computing a /run "
        "response, before writing it (client sees ECONNRESET; the result "
        "is already cached, so a retry is a cache hit)",
    )
)
