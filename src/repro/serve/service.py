"""The scenario service core: dedup, caching, and batched compute.

:class:`ScenarioService` is the long-lived composition the ROADMAP's
Open Item 2 asked for — every ingredient already existed as a part, and
this module only arranges them into a request-serving shape:

- **request key** — :meth:`ScenarioSpec.content_hash` identifies a
  request; two requests with the same hash are *the same computation*.
- **in-flight dedup** — N concurrent identical specs fan in to one
  pending future and share its result; the lookup-or-enqueue path has no
  ``await`` between the cache checks and the in-flight registration, so
  under asyncio a key can never be computed twice concurrently.
- **two cache layers** — an in-memory :class:`LruCache` of serialized
  response bodies over the on-disk
  :class:`~repro.runner.parallel.ResultCache` (the same store the
  ``scenario run --cache-dir`` sweeps write, namespace ``"scenario"``),
  both consulted before compute and both filled after.
- **batching scheduler** — queued misses are coalesced into chunks (up
  to ``batch_max`` specs, or whatever arrives within ``batch_window``
  seconds) and dispatched to a persistent worker pool
  (:class:`~repro.runner.parallel.PersistentPool`), so each spawn
  worker's :class:`~repro.runner.parallel.ProcessLocalCache` warm worlds
  survive across requests and a request batch pays no spawn cost.
- **backpressure** — the compute queue is bounded (``queue_limit``);
  when it is full a request is answered ``503`` with ``Retry-After``
  instead of queueing unboundedly. Cache hits are still served while
  saturated *and* while draining — only fresh compute is refused.

**Byte identity.** A served body is always
:func:`serialize_outcome` of the :class:`~repro.scenario.ScenarioOutcome`
that a direct :func:`repro.scenario.run` (via
:func:`~repro.scenario.runner.run_summary`) produces — bit-for-bit, on
every path (compute, dedup share, LRU hit, disk hit). That is the
repository's determinism standing rule extended to the service boundary,
and ``tests/test_serve_identity.py`` pins it per bundled preset.

The cache/dedup short-circuit is a fast path that bypasses a reference
computation, so per the check-clean rules it is a registered
:class:`repro.seams.Seam` behind :data:`DEFAULT_SERVE_FAST`: with the
flag off the service computes every request fresh (the reference shape),
and the differential suite asserts both modes serve identical bytes.

**Fault tolerance.** Infrastructure faults may cost latency, never bytes
(ROADMAP standing rule): every request is answered under a per-request
deadline (``504`` with a structured body when exceeded — the shielded
computation keeps running and fills the caches), and a broken worker
pool flips a breaker into **degraded inline-compute mode**: batches run
the same module-level chunk runner on a thread (``X-Source:
inline-degraded``), slower but byte-identical, while probe batches test
the pool (reviving it when dead) every ``probe_interval`` seconds until
one succeeds. ``/healthz`` reports pool liveness, restart count, and the
degraded flag. :mod:`repro.chaos` injects all of this deterministically.

Disk-cache lookups are small synchronous JSON reads performed on the
event loop; at this service's request sizes that is far below the
batching window. Revisit with ``run_in_executor`` if entries ever grow.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
import traceback
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.runner.parallel import (
    PersistentPool,
    ResultCache,
    decode_result,
    encode_result,
)
from repro.runner.supervise import is_pool_break
from repro.scenario.registries import behaviors, protocols
from repro.scenario.runner import ScenarioOutcome, run_summary
from repro.scenario.spec import ScenarioSpec

_LOG = logging.getLogger("repro.serve")

#: The service's cache/dedup short-circuit. ``True`` serves repeated
#: content hashes from the LRU/disk/in-flight layers; ``False`` is the
#: reference shape — every request is computed fresh by the pool. The
#: seam registration at the bottom of this module keeps the two
#: byte-identical under test.
DEFAULT_SERVE_FAST = True

#: Defaults for the service knobs (also the CLI defaults).
DEFAULT_LRU_SIZE = 256
DEFAULT_QUEUE_LIMIT = 64
DEFAULT_BATCH_MAX = 8
DEFAULT_BATCH_WINDOW = 0.005
DEFAULT_RETRY_AFTER = 1

#: Per-request deadline. Generous on purpose: its job is to bound a
#: wedged pool, not to race healthy presets. ``None`` disables it.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: While degraded, at most one probe batch per this many seconds is sent
#: to the pool; everything else computes inline.
DEFAULT_PROBE_INTERVAL = 1.0

#: Sentinel the drain path enqueues to stop the batching scheduler.
_STOP = object()


# -- canonical response serialization ------------------------------------------


def canonical_bytes(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def serialize_outcome(outcome: ScenarioOutcome) -> bytes:
    """The service wire form of one finished scenario.

    :func:`~repro.runner.parallel.encode_result` keeps the payload
    decodable by the same machinery the result cache uses
    (``decode_result`` rebuilds the :class:`ScenarioOutcome`), and the
    canonical dump makes equal outcomes serialize to equal bytes.
    """
    return canonical_bytes(encode_result(outcome))


def report_bytes(spec: ScenarioSpec) -> bytes:
    """Reference serialization: the exact bytes a direct run produces.

    This is the service's ground truth — every 200 response body for
    ``spec`` must equal this, bit-for-bit, whatever cache or dedup path
    served it.
    """
    return serialize_outcome(run_summary(spec))


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Structured error body: ``{"error", "field", "suggestions"}``.

    :class:`~repro.errors.SpecValidationError` carries the offending
    field and did-you-mean suggestions; other errors degrade to nulls so
    clients can always parse the same shape.
    """
    return {
        "error": str(exc),
        "field": getattr(exc, "field", None),
        "suggestions": list(getattr(exc, "suggestions", ())),
    }


def error_bytes(message: str) -> bytes:
    return canonical_bytes({"error": message, "field": None, "suggestions": []})


# -- worker-side batch execution -----------------------------------------------


def run_serve_chunk(
    specs: Sequence[ScenarioSpec],
) -> list[tuple[str, Any]]:
    """Execute one compute chunk (module-level: spawn-worker safe).

    Returns one ``(verdict, payload)`` per spec, in order:

    - ``("ok", encoded_outcome)`` — ``encode_result`` form of the
      :class:`ScenarioOutcome`, JSON-safe and picklable;
    - ``("config", error_payload)`` — the spec failed deep validation
      (placement bounds, source coordinate, ...); a client error;
    - ``("run", message)`` — the simulation itself failed; a server
      error.

    Per-item isolation matters: one bad spec in a batch must not poison
    its batchmates' results.
    """
    results: list[tuple[str, Any]] = []
    for spec in specs:
        try:
            results.append(("ok", encode_result(run_summary(spec))))
        except ConfigurationError as exc:
            results.append(("config", error_payload(exc)))
        except Exception as exc:
            results.append(("run", f"{type(exc).__name__}: {exc}"))
    return results


class InlinePool:
    """A pool double running chunks synchronously in the caller.

    Used by tests (no spawn cost, monkeypatchable chunk runners work
    because nothing is pickled) and by ``--stdin-batch --workers 1``
    style one-shot runs where process fan-out buys nothing. Implements
    the same ``submit``/``unwrap``/``shutdown`` surface as
    :class:`~repro.runner.parallel.PersistentPool`.
    """

    workers = 1

    def submit(
        self, run: Callable[[Any], Any], point: Any
    ) -> "Future[tuple[bool, Any]]":
        future: "Future[tuple[bool, Any]]" = Future()
        try:
            future.set_result((True, run(point)))
        except Exception as exc:
            future.set_result(
                (False, (type(exc).__name__, str(exc), traceback.format_exc()))
            )
        return future

    unwrap = staticmethod(PersistentPool.unwrap)

    def shutdown(self, *, wait: bool = True) -> None:
        pass


# -- in-memory response cache --------------------------------------------------


class LruCache:
    """Serialized-response LRU keyed by scenario content hash.

    Sits above the on-disk result cache: a hit costs a dict lookup and
    returns the exact bytes to write to the socket. ``limit=0`` disables
    the layer. Eviction is least-recently-*used*: both ``get`` and
    ``put`` refresh an entry's recency.
    """

    def __init__(self, limit: int = DEFAULT_LRU_SIZE) -> None:
        if limit < 0:
            raise ConfigurationError(
                f"LRU limit must be >= 0 (0 disables), got {limit}"
            )
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()

    def get(self, key: str) -> bytes | None:
        try:
            body = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return body

    def put(self, key: str, body: bytes) -> None:
        if self.limit == 0:
            return
        self._entries[key] = body
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def keys(self) -> tuple[str, ...]:
        """Current keys, least-recently-used first (for tests/stats)."""
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


# -- service bookkeeping -------------------------------------------------------


@dataclass
class ServiceStats:
    """Request counters, one instance per :class:`ScenarioService`."""

    requests: int = 0
    lru_hits: int = 0
    disk_hits: int = 0
    deduped: int = 0
    computed: int = 0
    batches: int = 0
    errors: int = 0
    rejected: int = 0
    timeouts: int = 0
    degraded_requests: int = 0
    recoveries: int = 0

    def snapshot(self) -> dict[str, int]:
        return asdict(self)

    def cache_hit_rate(self) -> float:
        return (
            (self.lru_hits + self.disk_hits) / self.requests
            if self.requests
            else 0.0
        )

    def dedup_rate(self) -> float:
        return self.deduped / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class ServeResult:
    """One request's answer, transport-agnostic.

    ``source`` says which layer produced the body (``"lru"``,
    ``"disk"``, ``"dedup"``, ``"computed"``, ``"inline-degraded"``) so
    transports can expose it (the HTTP front end's ``X-Source`` header)
    and tests can assert on it. ``retry_after`` is set on 503s and 504s.
    """

    status: int
    body: bytes
    scenario: str | None = None
    source: str | None = None
    retry_after: int | None = None

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass
class _Pending:
    """One queued compute: its key, spec, and the future waiters share."""

    key: str
    spec: ScenarioSpec
    future: "asyncio.Future[tuple[str, Any, str | None]]" = field(
        repr=False, default=None  # type: ignore[assignment]
    )


# -- the service ---------------------------------------------------------------


class ScenarioService:
    """Async request front end over the sweep substrate (see module doc).

    Lifecycle: construct, ``await start()`` inside a running event loop,
    serve via :meth:`submit_payload`/:meth:`submit_spec`, then
    ``await drain()`` — which stops accepting fresh compute, finishes
    everything already queued, resolves every waiter, and releases the
    pool. Cache hits keep being served during and after a drain.
    """

    def __init__(
        self,
        *,
        pool: Any = None,
        cache: ResultCache | None = None,
        lru_size: int = DEFAULT_LRU_SIZE,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        batch_max: int = DEFAULT_BATCH_MAX,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        retry_after: int = DEFAULT_RETRY_AFTER,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        chunk_runner: Callable[
            [Sequence[ScenarioSpec]], list[tuple[str, Any]]
        ] = run_serve_chunk,
    ) -> None:
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        if batch_max < 1:
            raise ConfigurationError(f"batch_max must be >= 1, got {batch_max}")
        if batch_window < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError(
                "request_timeout must be > 0 (or None to disable), "
                f"got {request_timeout}"
            )
        if probe_interval < 0:
            raise ConfigurationError(
                f"probe_interval must be >= 0, got {probe_interval}"
            )
        self._pool = pool if pool is not None else InlinePool()
        self._cache = cache
        self.lru = LruCache(lru_size)
        self.queue_limit = queue_limit
        self.batch_max = batch_max
        self.batch_window = batch_window
        self.retry_after = retry_after
        self.request_timeout = request_timeout
        self.probe_interval = probe_interval
        self.stats = ServiceStats()
        self._chunk_runner = chunk_runner
        self._degraded = False
        self._next_probe = 0.0
        self._inflight: dict[
            str, "asyncio.Future[tuple[str, Any, str | None]]"
        ] = {}
        # Unbounded queue + explicit qsize() bound: the drain sentinel
        # must always be enqueuable, even at saturation.
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._batcher: "asyncio.Task[None] | None" = None
        self._batch_tasks: set["asyncio.Task[None]"] = set()
        self._draining = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def queue_depth(self) -> int:
        return self._queue.qsize()

    async def start(self) -> None:
        """Start the batching scheduler (idempotent; needs a live loop)."""
        if self._batcher is None:
            self._draining = False
            if self._queue.empty():
                # asyncio.Queue binds to whichever loop first touches
                # it; a fresh queue lets a drained service restart on a
                # new loop (tests, re-embedding). A non-empty queue is
                # kept — its waiters enqueued before start() on this
                # same loop.
                self._queue = asyncio.Queue()
            self._batcher = asyncio.ensure_future(self._batch_loop())

    async def drain(self) -> None:
        """Finish queued work, resolve every waiter, release the pool."""
        self._draining = True
        if self._batcher is not None:
            self._queue.put_nowait(_STOP)
            await self._batcher
            self._batcher = None
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks))
        self._pool.shutdown(wait=True)

    # -- request paths ---------------------------------------------------------

    async def submit_payload(
        self, raw: "bytes | str | Mapping[str, Any]"
    ) -> ServeResult:
        """Serve one request given its JSON body (or parsed payload)."""
        if isinstance(raw, (bytes, str)):
            try:
                payload = json.loads(raw)
            except ValueError as exc:
                self.stats.errors += 1
                return ServeResult(
                    400, error_bytes(f"request body is not valid JSON: {exc}")
                )
        else:
            payload = raw
        try:
            spec = ScenarioSpec.from_dict(payload)
            # Cheap name resolution up front: unknown protocol/behavior
            # names answer instantly with did-you-mean suggestions. Deep
            # validation (placement bounds, source coordinate) runs in
            # the worker, where the world it builds is reused anyway.
            entry = protocols.get(spec.protocol)
            behaviors.get(spec.behavior or entry.default_behavior)
        except ConfigurationError as exc:
            self.stats.errors += 1
            return ServeResult(400, canonical_bytes(error_payload(exc)))
        return await self.submit_spec(spec)

    async def submit_spec(self, spec: ScenarioSpec) -> ServeResult:
        """Serve one validated spec (cache → dedup → batched compute)."""
        self.stats.requests += 1
        key = spec.content_hash()
        # NOTE: no ``await`` between here and the in-flight registration
        # below — the dedup guarantee (one compute per key) relies on
        # this whole lookup path being one atomic event-loop step.
        if DEFAULT_SERVE_FAST:
            body = self.lru.get(key)
            if body is not None:
                self.stats.lru_hits += 1
                return ServeResult(200, body, scenario=key, source="lru")
            if self._cache is not None:
                hit, outcome = self._cache.get(spec)
                if hit:
                    body = serialize_outcome(outcome)
                    self.lru.put(key, body)
                    self.stats.disk_hits += 1
                    return ServeResult(200, body, scenario=key, source="disk")
            pending = self._inflight.get(key)
            if pending is not None:
                self.stats.deduped += 1
                outcome = await self._await_outcome(pending)
                if outcome is None:
                    return self._timeout_result(key)
                verdict, value, src = outcome
                return self._finish(key, verdict, value, source=src or "dedup")
        if self._draining:
            self.stats.rejected += 1
            return ServeResult(
                503,
                error_bytes("service is draining; retry against a live instance"),
                scenario=key,
                retry_after=self.retry_after,
            )
        if self._queue.qsize() >= self.queue_limit:
            self.stats.rejected += 1
            return ServeResult(
                503,
                error_bytes(
                    f"service saturated ({self.queue_limit} computations "
                    "queued); retry later"
                ),
                scenario=key,
                retry_after=self.retry_after,
            )
        future: "asyncio.Future[tuple[str, Any, str | None]]" = (
            asyncio.get_running_loop().create_future()
        )
        if DEFAULT_SERVE_FAST:
            self._inflight[key] = future
        self._queue.put_nowait(_Pending(key=key, spec=spec, future=future))
        outcome = await self._await_outcome(future)
        if outcome is None:
            return self._timeout_result(key)
        verdict, value, src = outcome
        return self._finish(key, verdict, value, source=src or "computed")

    async def _await_outcome(
        self, future: "asyncio.Future[tuple[str, Any, str | None]]"
    ) -> "tuple[str, Any, str | None] | None":
        """Wait for a compute outcome under the per-request deadline.

        The shield keeps the computation (and its cache fills) running
        after a timeout: the deadline abandons the *wait*, not the
        *work*, so a client retrying after ``Retry-After`` typically
        lands on a warm cache. Returns ``None`` on deadline.
        """
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.request_timeout
            )
        except asyncio.TimeoutError:
            return None

    def _timeout_result(self, key: str) -> ServeResult:
        self.stats.timeouts += 1
        return ServeResult(
            504,
            error_bytes(
                f"request deadline ({self.request_timeout:g}s) exceeded; "
                "the computation continues and will be cached — retry"
            ),
            scenario=key,
            retry_after=self.retry_after,
        )

    def _finish(
        self, key: str, verdict: str, value: Any, *, source: str
    ) -> ServeResult:
        if verdict == "ok":
            return ServeResult(200, value, scenario=key, source=source)
        self.stats.errors += 1
        if verdict == "config":
            return ServeResult(
                400, canonical_bytes(value), scenario=key, source=source
            )
        return ServeResult(
            500, error_bytes(str(value)), scenario=key, source=source
        )

    # -- batching scheduler ----------------------------------------------------

    async def _batch_loop(self) -> None:
        """Coalesce queued misses into chunks; dispatch without blocking.

        Each chunk is handed to the pool and *resolved by a separate
        task*, so the scheduler keeps forming the next batch while the
        previous one computes — batches stream through the pool's
        workers rather than lock-stepping with them.
        """
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.batch_max:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        self.stats.batches += 1
        specs = [item.spec for item in batch]
        if not self._pool_ready():
            self._start_inline(batch, specs)
            return
        try:
            chunk_future = self._pool.submit(self._chunk_runner, specs)
        except Exception as exc:
            if is_pool_break(exc):
                self._enter_degraded(exc)
                self._start_inline(batch, specs)
                return
            for item in batch:
                self._settle(
                    item, ("run", f"{type(exc).__name__}: {exc}", None)
                )
            return
        task = asyncio.ensure_future(
            self._resolve(batch, asyncio.wrap_future(chunk_future))
        )
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _resolve(
        self, batch: list[_Pending], chunk: "asyncio.Future[tuple[bool, Any]]"
    ) -> None:
        try:
            results = self._pool.unwrap(
                [item.key for item in batch], await chunk
            )
        except Exception as exc:
            if is_pool_break(exc):
                # The pool died under this batch even after supervision
                # gave up. No request is dropped: flip the breaker and
                # answer this batch inline — latency, never bytes.
                self._enter_degraded(exc)
                await self._run_inline(batch, [item.spec for item in batch])
                return
            message = f"{type(exc).__name__}: {exc}"
            for item in batch:
                self._settle(item, ("run", message, None))
            return
        if self._degraded:
            # A probe batch came back: the pool is healthy again.
            self._degraded = False
            self.stats.recoveries += 1
            _LOG.warning("worker pool recovered; leaving degraded mode")
        self._complete(batch, results, source=None)

    def _pool_ready(self) -> bool:
        """Breaker gate: may this batch try the pool?

        Healthy: always. Degraded: at most one probe batch per
        ``probe_interval`` goes to the pool — reviving a dead
        :class:`~repro.runner.parallel.PersistentPool` first — and
        everything else computes inline until a probe succeeds.
        """
        if not self._degraded:
            return True
        now = time.monotonic()
        if now < self._next_probe:
            return False
        self._next_probe = now + self.probe_interval
        if not getattr(self._pool, "alive", True):
            revive = getattr(self._pool, "revive", None)
            if revive is None or not revive():
                return False
        return True

    def _enter_degraded(self, cause: BaseException) -> None:
        if not self._degraded:
            self._degraded = True
            _LOG.warning(
                "worker pool down (%s); serving in degraded inline-compute "
                "mode",
                cause,
            )
        self._next_probe = time.monotonic() + self.probe_interval

    def _start_inline(
        self, batch: list[_Pending], specs: list[ScenarioSpec]
    ) -> None:
        task = asyncio.ensure_future(self._run_inline(batch, specs))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_inline(
        self, batch: list[_Pending], specs: list[ScenarioSpec]
    ) -> None:
        """Compute a batch on a thread instead of the broken pool.

        Slower — no process parallelism, no warm spawn-worker worlds —
        but byte-identical: this is the same chunk runner the pool
        executes, so degraded responses still match
        :func:`report_bytes`.
        """
        self.stats.degraded_requests += len(batch)
        runner = self._chunk_runner
        if runner is None:
            for item in batch:
                self._settle(item, ("run", "no chunk runner configured", None))
            return
        try:
            results = await asyncio.to_thread(runner, specs)
        except Exception as exc:
            message = f"{type(exc).__name__}: {exc}"
            for item in batch:
                self._settle(item, ("run", message, None))
            return
        self._complete(batch, results, source="inline-degraded")

    def _complete(
        self,
        batch: list[_Pending],
        results: list[tuple[str, Any]],
        *,
        source: str | None,
    ) -> None:
        """Settle a computed batch, filling both cache layers on 200s."""
        for item, (verdict, payload) in zip(batch, results):
            if verdict == "ok":
                body = canonical_bytes(payload)
                self.stats.computed += 1
                if DEFAULT_SERVE_FAST:
                    self.lru.put(item.key, body)
                    if self._cache is not None:
                        try:
                            self._cache.put(item.spec, decode_result(payload))
                        except Exception as exc:
                            # A failing store must not fail the request.
                            _LOG.warning(
                                "result-cache store failed for %s: %s",
                                item.key[:12],
                                exc,
                            )
                self._settle(item, ("ok", body, source))
            else:
                self._settle(item, (verdict, payload, source))

    def _settle(
        self, item: _Pending, outcome: "tuple[str, Any, str | None]"
    ) -> None:
        if self._inflight.get(item.key) is item.future:
            del self._inflight[item.key]
        if not item.future.done():
            item.future.set_result(outcome)

    # -- introspection ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded

    def health_payload(self) -> dict[str, Any]:
        """What ``GET /healthz`` serves: liveness, not just reachability."""
        return {
            "status": "degraded" if self._degraded else "ok",
            "draining": self._draining,
            "degraded": self._degraded,
            "pool_alive": bool(getattr(self._pool, "alive", True)),
            "pool_workers": getattr(self._pool, "workers", None),
            "pool_restarts": getattr(self._pool, "restarts", 0),
            "degraded_requests": self.stats.degraded_requests,
            "recoveries": self.stats.recoveries,
            "timeouts": self.stats.timeouts,
        }

    def stats_payload(self) -> dict[str, Any]:
        """What ``GET /stats`` serves."""
        payload: dict[str, Any] = dict(self.stats.snapshot())
        payload.update(
            cache_hit_rate=self.stats.cache_hit_rate(),
            dedup_rate=self.stats.dedup_rate(),
            lru_entries=len(self.lru),
            lru_limit=self.lru.limit,
            lru_evictions=self.lru.evictions,
            queue_depth=self.queue_depth(),
            queue_limit=self.queue_limit,
            in_flight=len(self._inflight),
            draining=self._draining,
            degraded=self._degraded,
            pool_alive=bool(getattr(self._pool, "alive", True)),
            pool_restarts=getattr(self._pool, "restarts", 0),
            workers=getattr(self._pool, "workers", None),
            disk_cache=self._cache is not None,
            cache_recovered=(
                self._cache.stats.recovered if self._cache is not None else 0
            ),
        )
        return payload


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="serve-cache",
        flag_module="repro.serve.service",
        flag_attr="DEFAULT_SERVE_FAST",
        fast="repro.serve.service.ScenarioService.submit_spec",
        reference="repro.serve.service.report_bytes",
        differential_test="tests/test_serve_identity.py",
        fuzz_leg="fast",
        description="service LRU/dedup/disk short-circuit vs computing "
        "every request fresh",
    )
)
