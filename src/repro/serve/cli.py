"""CLI glue for ``python -m repro serve`` and ``python -m repro cache``.

Kept out of :mod:`repro.__main__` so the argparse layer stays a thin
dispatcher and the service wiring (pool/cache/service composition,
stdin-batch driving) is importable and testable on its own.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Iterable, TextIO

from repro.errors import ConfigurationError
from repro.runner.parallel import (
    PersistentPool,
    ResultCache,
    prune_cache_dir,
    scan_cache_dir,
)
from repro.serve.http import run_daemon
from repro.serve.service import (
    DEFAULT_BATCH_MAX,
    DEFAULT_BATCH_WINDOW,
    DEFAULT_LRU_SIZE,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_REQUEST_TIMEOUT,
    InlinePool,
    ScenarioService,
    ServeResult,
)


def build_service(
    *,
    workers: int = 0,
    cache_dir: str | None = None,
    lru_size: int = DEFAULT_LRU_SIZE,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    batch_max: int = DEFAULT_BATCH_MAX,
    batch_window: float = DEFAULT_BATCH_WINDOW,
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
    inline: bool = False,
) -> ScenarioService:
    """Compose a service from CLI-level knobs.

    ``cache_dir`` reuses the ``"scenario"`` namespace, so the daemon
    shares its on-disk results with ``scenario run --cache-dir`` sweeps
    in both directions. ``inline=True`` computes in-process (tests,
    tiny batches) instead of spawning a worker pool.
    """
    cache = (
        ResultCache(cache_dir, namespace="scenario")
        if cache_dir is not None
        else None
    )
    pool = InlinePool() if inline else PersistentPool(workers)
    return ScenarioService(
        pool=pool,
        cache=cache,
        lru_size=lru_size,
        queue_limit=queue_limit,
        batch_max=batch_max,
        batch_window=batch_window,
        request_timeout=request_timeout,
    )


async def run_stdin_batch(
    service: ScenarioService,
    lines: Iterable[str],
    out: TextIO,
) -> int:
    """One-shot mode: a JSON spec per input line, a JSON result per output line.

    Results are written in input order. Submission is bounded by the
    service's ``queue_limit`` via a client-side semaphore, so batch mode
    never trips its own backpressure (503s are for live traffic).
    Returns the exit code: 0 if every line answered 200, else 1.
    """
    await service.start()
    gate = asyncio.Semaphore(service.queue_limit)

    async def _one(raw: str) -> ServeResult:
        async with gate:
            return await service.submit_payload(raw)

    tasks = [
        asyncio.ensure_future(_one(line))
        for line in (line.strip() for line in lines)
        if line
    ]
    failures = 0
    for task in tasks:
        result = await task
        out.write(result.body.decode("utf-8") + "\n")
        if not result.ok:
            failures += 1
    out.flush()
    await service.drain()
    return 1 if failures else 0


def serve_command(
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int = 0,
    cache_dir: str | None = None,
    lru_size: int = DEFAULT_LRU_SIZE,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    batch_max: int = DEFAULT_BATCH_MAX,
    batch_window: float = DEFAULT_BATCH_WINDOW,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    port_file: str | None = None,
    stdin_batch: bool = False,
) -> int:
    """Entry point behind ``python -m repro serve``."""
    service = build_service(
        workers=workers,
        cache_dir=cache_dir,
        lru_size=lru_size,
        queue_limit=queue_limit,
        batch_max=batch_max,
        batch_window=batch_window,
        request_timeout=request_timeout if request_timeout > 0 else None,
        inline=stdin_batch and workers == 1,
    )
    if stdin_batch:
        return asyncio.run(
            run_stdin_batch(service, sys.stdin, sys.stdout)
        )
    try:
        asyncio.run(
            run_daemon(
                service, host=host, port=port, port_file=port_file
            )
        )
    except KeyboardInterrupt:
        # add_signal_handler already drained on SIGINT where supported;
        # on loops without signal handlers this is the interrupt path.
        pass
    return 0


def cache_stats_command(directory: str, *, as_json: bool = False) -> int:
    """Entry point behind ``python -m repro cache stats``."""
    try:
        stats = scan_cache_dir(directory)
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if as_json:
        payload = {
            "directory": stats.directory,
            "entries": stats.entries,
            "bytes": stats.total_bytes,
            "corrupt": stats.corrupt,
            "stale_tmp": stats.stale_tmp,
            "namespaces": {
                name: {"entries": entries, "bytes": size, "corrupt": corrupt}
                for name, entries, size, corrupt in stats.namespaces
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"cache dir: {stats.directory}")
    print(
        f"entries:   {stats.entries} "
        f"({stats.total_bytes} bytes, {stats.corrupt} corrupt, "
        f"{stats.stale_tmp} interrupted writes)"
    )
    for name, entries, size, corrupt in stats.namespaces:
        suffix = f", {corrupt} corrupt" if corrupt else ""
        print(f"  {name}: {entries} entries, {size} bytes{suffix}")
    return 0


#: Size-suffix multipliers ``--max-bytes`` accepts (binary, like du -h).
_SIZE_SUFFIXES = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}


def parse_size(text: str) -> int:
    """Parse ``--max-bytes`` values like ``500M``, ``2G``, ``1048576``."""
    raw = text.strip().upper().removesuffix("B")
    suffix = raw[-1:] if raw[-1:] in _SIZE_SUFFIXES and raw[-1:].isalpha() else ""
    number = raw.removesuffix(suffix) if suffix else raw
    try:
        value = float(number)
    except ValueError:
        raise ConfigurationError(
            f"invalid size {text!r}; expected e.g. 1048576, 500M, or 2G"
        ) from None
    if value < 0:
        raise ConfigurationError(f"size must be >= 0, got {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def cache_prune_command(
    directory: str,
    *,
    max_bytes: str | None = None,
    max_age_days: float | None = None,
    dry_run: bool = False,
) -> int:
    """Entry point behind ``python -m repro cache prune``."""
    try:
        result = prune_cache_dir(
            directory,
            max_bytes=parse_size(max_bytes) if max_bytes is not None else None,
            max_age_s=(
                max_age_days * 86400.0 if max_age_days is not None else None
            ),
            dry_run=dry_run,
        )
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verb = "would remove" if result.dry_run else "removed"
    print(f"cache dir: {result.directory}")
    print(
        f"{verb}:   {result.removed} of {result.examined} entries "
        f"({result.removed_bytes} bytes) and {result.removed_tmp} "
        f"stale tmp file(s)"
    )
    print(f"kept:      {result.kept} entries ({result.kept_bytes} bytes)")
    return 0


__all__ = [
    "build_service",
    "cache_prune_command",
    "cache_stats_command",
    "parse_size",
    "run_stdin_batch",
    "serve_command",
]
