"""The scenario-service benchmark behind ``python -m repro bench serve``.

Measures what the daemon exists to deliver: request throughput on a
repeated-scenario workload, where the LRU / dedup / disk-cache layers
turn most requests into lookups. The workload is the bundled scenario
bench presets (:data:`repro.runner.bench.SCENARIO_BENCH_PRESETS`) fanned
out over a few seeds, each requested many times round-robin — the shape
a parameter-exploration client actually produces.

Three phases per entry:

1. **direct baseline** — every unique spec through
   :func:`~repro.serve.service.report_bytes` once, serially; the
   baseline cost of a request is a fresh ``run(spec)``, so the workload's
   direct cost is (per-spec time × its repetitions). This also yields
   the expected response bytes.
2. **service pass** — a real in-process daemon
   (:func:`~repro.serve.http.run_daemon` on an ephemeral port), a warmed
   persistent pool, and N keep-alive client connections draining a
   shared job queue. Every response is asserted byte-identical to the
   direct baseline — the benchmark refuses to time a service that
   serves wrong bytes. ``overall_speedup`` is direct cost / service
   wall time, the number the 1.5x trajectory gate watches.
3. **restart probe** — a fresh service over the same cache directory
   requests each unique spec once and must serve *all* of them from the
   disk layer (``source == "disk"``), pinning cache persistence.
4. **recovery probe** — the same unique specs served while a
   :mod:`repro.chaos` fault plan SIGKILLs a pool worker (supervised
   respawn), then again against a pool with no restart budget (degraded
   inline-compute mode). Every response must still be byte-identical;
   the entry records the restart count, degraded-mode request count,
   and p99 request latency under the injected kill.

Entries append to ``BENCH_serve.json`` (``{"benchmark": "serve", ...}``)
through the shared trajectory machinery in :mod:`repro.runner.bench`.
"""

from __future__ import annotations

import asyncio
import io
import sys
import tempfile
import time
from collections import deque
from datetime import datetime, timezone
from typing import Sequence

from repro.chaos import inject as _chaos
from repro.chaos.plan import Fault, FaultPlan
from repro.runner.bench import SCENARIO_BENCH_PRESETS
from repro.runner.parallel import PersistentPool, ResultCache
from repro.scenario import preset
from repro.scenario.spec import ScenarioSpec
from repro.serve.http import run_daemon
from repro.serve.service import (
    InlinePool,
    ScenarioService,
    report_bytes,
    run_serve_chunk,
)

#: Default trajectory file, relative to the working directory.
DEFAULT_SERVE_OUT = "BENCH_serve.json"

#: Seed applied to warm-up specs so they never collide with the workload.
_WARMUP_SEED = 990_000


def serve_workload(
    *, quick: bool = False
) -> tuple[list[ScenarioSpec], list[int]]:
    """(unique specs, request order as indices into them), round-robin."""
    seeds = (0, 1) if quick else (0, 1, 2)
    reps = 4 if quick else 10
    unique = [
        preset(name).replace(seed=seed)
        for name in SCENARIO_BENCH_PRESETS
        for seed in seeds
    ]
    order = [i % len(unique) for i in range(len(unique) * reps)]
    return unique, order


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    head = (await reader.readuntil(b"\r\n\r\n")).decode("ascii")
    status_line, *header_lines = head.split("\r\n")
    status = int(status_line.split(" ")[1])
    headers: dict[str, str] = {}
    for line in header_lines:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, body


async def _client_worker(
    host: str,
    port: int,
    jobs: "deque[tuple[int, bytes]]",
    results: list,
) -> None:
    """One keep-alive connection draining the shared job queue."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        while True:
            try:
                index, body = jobs.popleft()
            except IndexError:
                break
            writer.write(
                (
                    f"POST /run HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
            results[index] = await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _warm_pool(pool: PersistentPool, base: ScenarioSpec) -> None:
    """Pay the spawn + import cost before the timed pass, per worker."""
    futures = [
        pool.submit(run_serve_chunk, [base.replace(seed=_WARMUP_SEED + i)])
        for i in range(pool.workers)
    ]
    for future in futures:
        PersistentPool.unwrap("warmup", future.result())


async def _service_pass(
    service: ScenarioService,
    bodies: Sequence[bytes],
    order: Sequence[int],
    expected: Sequence[bytes],
    *,
    connections: int,
) -> tuple[float, int]:
    """Run the timed client pass; returns (wall seconds, dedup count)."""
    ready = asyncio.Event()
    stop = asyncio.Event()
    log = io.StringIO()
    daemon = asyncio.ensure_future(
        run_daemon(
            service,
            host="127.0.0.1",
            port=0,
            out=log,
            ready=ready,
            stop=stop,
        )
    )
    await ready.wait()
    port = int(log.getvalue().strip().rsplit(":", 1)[1])
    jobs: "deque[tuple[int, bytes]]" = deque(
        (i, bodies[unique_index]) for i, unique_index in enumerate(order)
    )
    results: list = [None] * len(order)
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_worker("127.0.0.1", port, jobs, results)
            for _ in range(connections)
        )
    )
    wall_s = time.perf_counter() - started
    stop.set()
    await daemon
    for i, unique_index in enumerate(order):
        status, _headers, body = results[i]
        if status != 200 or body != expected[unique_index]:
            raise AssertionError(
                f"serve bench: request {i} (unique {unique_index}) answered "
                f"{status} with non-reference bytes"
            )
    return wall_s, service.stats.deduped


async def _restart_probe(
    cache_dir: str, unique: Sequence[ScenarioSpec], expected: Sequence[bytes]
) -> int:
    """Fresh service, same cache dir: every unique spec must hit disk."""
    service = ScenarioService(
        pool=InlinePool(),
        cache=ResultCache(cache_dir, namespace="scenario"),
    )
    await service.start()
    disk_hits = 0
    for spec, want in zip(unique, expected):
        result = await service.submit_spec(spec)
        if result.status != 200 or result.body != want:
            raise AssertionError(
                f"serve bench restart probe: {spec.content_hash()[:12]} "
                f"answered {result.status} with non-reference bytes"
            )
        if result.source == "disk":
            disk_hits += 1
    await service.drain()
    if disk_hits != len(unique):
        raise AssertionError(
            f"serve bench restart probe: only {disk_hits}/{len(unique)} "
            "requests came from the disk cache"
        )
    return disk_hits


async def _serve_timed(
    service: ScenarioService,
    unique: Sequence[ScenarioSpec],
    expected: Sequence[bytes],
    what: str,
) -> list[float]:
    """Serve each spec once, asserting bytes; per-request latency in ms."""
    latencies: list[float] = []
    await service.start()
    for spec, want in zip(unique, expected):
        started = time.perf_counter()
        result = await service.submit_spec(spec)
        latencies.append((time.perf_counter() - started) * 1000.0)
        if result.status != 200 or result.body != want:
            raise AssertionError(
                f"serve bench {what}: {spec.content_hash()[:12]} answered "
                f"{result.status} with non-reference bytes"
            )
    await service.drain()
    return latencies


def _p99(latencies: Sequence[float]) -> float:
    ordered = sorted(latencies)
    return ordered[int(round(0.99 * (len(ordered) - 1)))]


def _recovery_probe(
    unique: Sequence[ScenarioSpec],
    expected: Sequence[bytes],
    *,
    workers: int,
) -> dict:
    """Phase 4: byte identity and latency cost under injected worker kills.

    Leg one arms a single ``worker-crash`` fault against a supervised
    pool: the first request SIGKILLs its worker, supervision respawns
    and resubmits, and every response must still match the reference
    bytes. Leg two points the same fault at a pool with ``max_restarts=0``
    so the break is unrecoverable and the service's breaker must carry
    the workload in degraded inline-compute mode — again byte-identical.
    """
    kill_plan = FaultPlan(seed=0, faults=(Fault(kind="worker-crash"),))
    with PersistentPool(workers) as pool:
        _warm_pool(pool, unique[0])
        service = ScenarioService(pool=pool)
        with _chaos.armed(kill_plan):
            latencies = asyncio.run(
                _serve_timed(service, unique, expected, "recovery")
            )
        restarts = pool.restarts
    if restarts < 1:
        raise AssertionError(
            "serve bench recovery: the injected worker kill never forced "
            "a pool restart"
        )

    # A long probe interval keeps the breaker open for the whole leg, so
    # the degraded count measures inline serving rather than a revive.
    frail = PersistentPool(1, max_restarts=0)
    degraded_service = ScenarioService(pool=frail, probe_interval=60.0)
    with _chaos.armed(kill_plan):
        asyncio.run(
            _serve_timed(degraded_service, unique, expected, "degraded")
        )
    degraded = degraded_service.stats.degraded_requests
    if degraded < 1:
        raise AssertionError(
            "serve bench degraded leg: no request was served in degraded "
            "inline-compute mode"
        )
    return {
        "recovery_restarts": restarts,
        "recovery_p99_ms": _p99(latencies),
        "recovery_degraded_requests": degraded,
    }


def run_serve_bench(*, quick: bool = False, workers: int = 2) -> dict:
    """Run all four phases; returns one trajectory entry."""
    connections = 4 if quick else 8
    unique, order = serve_workload(quick=quick)
    bodies = [
        spec.to_json(indent=None).encode("utf-8") for spec in unique
    ]

    expected: list[bytes] = []
    direct_unique_s: list[float] = []
    for spec in unique:
        started = time.perf_counter()
        expected.append(report_bytes(spec))
        direct_unique_s.append(time.perf_counter() - started)
    direct_s = sum(direct_unique_s[i] for i in order)

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as cache_dir:
        with PersistentPool(workers) as pool:
            _warm_pool(pool, unique[0])
            service = ScenarioService(
                pool=pool,
                cache=ResultCache(cache_dir, namespace="scenario"),
            )
            wall_s, deduped = asyncio.run(
                _service_pass(
                    service,
                    bodies,
                    order,
                    expected,
                    connections=connections,
                )
            )
        stats = service.stats
        restart_disk_hits = asyncio.run(
            _restart_probe(cache_dir, unique, expected)
        )

    recovery = _recovery_probe(unique, expected, workers=workers)

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "quick": quick,
        "requests": len(order),
        "unique": len(unique),
        "connections": connections,
        "workers": workers,
        "wall_s": wall_s,
        "requests_per_s": len(order) / wall_s,
        "direct_s": direct_s,
        "overall_speedup": direct_s / wall_s,
        "lru_hits": stats.lru_hits,
        "disk_hits": stats.disk_hits,
        "deduped": deduped,
        "computed": stats.computed,
        "batches": stats.batches,
        "cache_hit_rate": stats.cache_hit_rate(),
        "dedup_rate": stats.dedup_rate(),
        "restart_disk_hits": restart_disk_hits,
        **recovery,
    }


def format_serve_entry(entry: dict) -> str:
    """Human-readable summary of one serve-trajectory entry."""
    return "\n".join(
        [
            (
                f"scenario-service benchmark: {entry['requests']} requests "
                f"({entry['unique']} unique) over {entry['connections']} "
                f"connections, {entry['workers']} workers"
            ),
            (
                f"wall {entry['wall_s']:.2f}s "
                f"({entry['requests_per_s']:.1f} req/s); direct serial "
                f"baseline {entry['direct_s']:.2f}s -> "
                f"{entry['overall_speedup']:.1f}x"
            ),
            (
                f"cache: {entry['lru_hits']} LRU hits, "
                f"{entry['disk_hits']} disk hits, {entry['deduped']} deduped, "
                f"{entry['computed']} computed in {entry['batches']} batches "
                f"(hit rate {entry['cache_hit_rate']:.2f}, dedup rate "
                f"{entry['dedup_rate']:.2f})"
            ),
            (
                f"restart: {entry['restart_disk_hits']}/{entry['unique']} "
                "served from the disk cache"
            ),
            (
                f"recovery: {entry['recovery_restarts']} pool restart(s) "
                f"under an injected worker kill, p99 "
                f"{entry['recovery_p99_ms']:.0f}ms; "
                f"{entry['recovery_degraded_requests']} request(s) served "
                "degraded with no restart budget"
            ),
        ]
    )
