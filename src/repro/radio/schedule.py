"""Collision-free TDMA schedule.

The paper assumes "a pre-determined time-slotted schedule such that if all
nodes follow the schedule then no collision will occur". On a grid with
L∞ radius ``r`` the canonical such schedule is a spatial coloring: node
``(x, y)`` owns slot ``(x mod (2r+1)) + (2r+1) * (y mod (2r+1))`` within a
period of ``(2r+1)^2`` slots. Two nodes sharing a slot are at least
``2r+1`` apart on each wrapped axis, hence have no common neighbor, so
their concurrent transmissions cannot collide anywhere.

(This is why toroidal grids must have dimensions divisible by ``2r+1`` —
otherwise the coloring would break across the wrap seam.)
"""

from __future__ import annotations

try:  # optional accelerator for the slot-table build
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from repro.errors import ScheduleConflictError
from repro.network.grid import Grid
from repro.types import NodeId


class TdmaSchedule:
    """Spatial-coloring TDMA schedule for a grid."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        side = 2 * grid.r + 1
        self.side = side
        self.period = side * side
        width = grid.width
        if _np is not None:
            # Same list of python ints, built ~10x faster — measurable
            # at 10^6 nodes, where the comprehension alone costs ~1s.
            ids = _np.arange(grid.n, dtype=_np.int64)
            self._slot_of: list[int] = (
                ((ids % width) % side + side * ((ids // width) % side)).tolist()
            )
        else:
            self._slot_of = [
                (node_id % width) % side + side * ((node_id // width) % side)
                for node_id in range(grid.n)
            ]

    def slot_of(self, node_id: NodeId) -> int:
        """The slot index (within the period) owned by a node."""
        return self._slot_of[node_id]

    def owners(self, slot: int) -> list[NodeId]:
        """All nodes owning a slot (useful for tests; O(n))."""
        if not 0 <= slot < self.period:
            raise ScheduleConflictError(f"slot {slot} outside period {self.period}")
        return [nid for nid in self.grid.all_ids() if self._slot_of[nid] == slot]

    def verify_collision_free(self) -> None:
        """Check no two same-slot nodes share a neighbor (O(n * (4r+1)^2)).

        Raises :class:`ScheduleConflictError` on violation. Used by tests
        and by :class:`~repro.radio.mac.RoundDriver` in paranoid mode.
        """
        grid = self.grid
        interference = 2 * grid.r  # senders share a receiver iff within 2r
        for node_id in grid.all_ids():
            x, y = grid.coord_of(node_id)
            for dy in range(-interference, interference + 1):
                for dx in range(-interference, interference + 1):
                    if dx == 0 and dy == 0:
                        continue
                    if grid.torus:
                        other = grid.id_of((x + dx, y + dy))
                    else:
                        ox, oy = x + dx, y + dy
                        if not (0 <= ox < grid.width and 0 <= oy < grid.height):
                            continue
                        other = grid.id_of((ox, oy))
                    if other != node_id and self._slot_of[other] == self._slot_of[node_id]:
                        raise ScheduleConflictError(
                            f"nodes {grid.coord_of(node_id)} and {grid.coord_of(other)} "
                            f"share slot {self._slot_of[node_id]} within interference range"
                        )
