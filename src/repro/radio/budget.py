"""Per-node message budget accounting.

The paper's central resource: a good node may send at most ``m`` messages
and a bad node at most ``mf``; the base station is unbounded. The ledger
enforces this defensively — protocol and adversary implementations are
expected to check ``remaining`` first, and a charge beyond the budget
raises :class:`BudgetExceededError` to surface bugs immediately.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import BudgetExceededError, ConfigurationError
from repro.types import NodeId

#: Sentinel budget meaning "unbounded" (the source).
UNBOUNDED = None


class BudgetLedger:
    """Tracks sends against per-node budgets.

    Budgets are given as a mapping ``node_id -> int | None`` where ``None``
    means unbounded. Missing nodes default to ``default_budget``.
    """

    def __init__(
        self,
        n: int,
        default_budget: int | None,
        overrides: Mapping[NodeId, int | None] | None = None,
    ) -> None:
        if default_budget is not None and default_budget < 0:
            raise ConfigurationError(f"negative default budget: {default_budget}")
        self.n = n
        self._budget: list[int | None] = [default_budget] * n
        self._sent: list[int] = [0] * n
        if overrides:
            for node_id, budget in overrides.items():
                if not 0 <= node_id < n:
                    raise ConfigurationError(f"budget override for unknown node {node_id}")
                if budget is not None and budget < 0:
                    raise ConfigurationError(f"negative budget for node {node_id}")
                self._budget[node_id] = budget

    def budget_of(self, node_id: NodeId) -> int | None:
        return self._budget[node_id]

    def sent(self, node_id: NodeId) -> int:
        return self._sent[node_id]

    def remaining(self, node_id: NodeId) -> int | None:
        """Messages the node may still send; ``None`` when unbounded."""
        budget = self._budget[node_id]
        if budget is None:
            return None
        return budget - self._sent[node_id]

    def can_send(self, node_id: NodeId, count: int = 1) -> bool:
        # Consulted once per sender per burst: read the arrays directly
        # rather than composing remaining().
        budget = self._budget[node_id]
        return budget is None or budget - self._sent[node_id] >= count

    def charge(self, node_id: NodeId, count: int = 1) -> None:
        if count < 0:
            raise ConfigurationError("cannot charge a negative number of messages")
        budget = self._budget[node_id]
        if budget is not None and budget - self._sent[node_id] < count:
            raise BudgetExceededError(
                f"node {node_id} attempted send #{self._sent[node_id] + count} "
                f"with budget {self._budget[node_id]}"
            )
        self._sent[node_id] += count

    def total_sent(self, nodes: Iterable[NodeId] | None = None) -> int:
        if nodes is None:
            return sum(self._sent)
        return sum(self._sent[node_id] for node_id in nodes)

    def max_sent(self, nodes: Iterable[NodeId]) -> int:
        counts = [self._sent[node_id] for node_id in nodes]
        return max(counts) if counts else 0
