"""Radio substrate: messages, TDMA schedule, budgets, medium, MAC driver."""

from repro.radio.budget import BudgetLedger
from repro.radio.mac import RoundDriver, RunLimits
from repro.radio.medium import Delivery, Medium
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.radio.schedule import TdmaSchedule

__all__ = [
    "BudgetLedger",
    "RoundDriver",
    "RunLimits",
    "Medium",
    "Delivery",
    "Transmission",
    "BadTransmission",
    "MessageKind",
    "TdmaSchedule",
]
