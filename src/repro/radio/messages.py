"""Message and transmission types for the slotted radio.

A *transmission* is one local broadcast occupying one slot. Honest nodes
send plain :class:`Transmission` objects carrying a protocol value; bad
nodes send :class:`BadTransmission` objects which additionally specify the
outcome they impose on receivers caught in a collision (the paper allows
the adversary to make a collision look like a wrong message *or* like
silence, indistinguishably).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.types import NodeId, Value


class MessageKind(enum.Enum):
    """Protocol-level message kinds.

    ``DATA`` carries a broadcast value. ``NACK`` is the negative
    acknowledgement of the Section-5 reactive local broadcast; it costs a
    transmission like any other message.
    """

    DATA = "data"
    NACK = "nack"


@dataclass(frozen=True, slots=True)
class Transmission:
    """An honest local broadcast."""

    sender: NodeId
    value: Value
    kind: MessageKind = MessageKind.DATA


@dataclass(frozen=True, slots=True)
class BadTransmission:
    """A Byzantine local broadcast.

    ``value`` is what a receiver hears when this is the only in-range
    transmission (a plain lie). When this transmission collides with
    another at some receiver, that receiver instead gets ``value`` as a
    spoofed message, or nothing at all if ``silence_at_collision`` — the
    receiver cannot tell either apart from a normal reception / absence.

    Without cryptography nothing authenticates the origin of a garbled
    signal, so at a collision the adversary may also choose whom the
    spoofed message *appears* to come from (``spoof_sender``; defaults to
    the Byzantine sender itself). Value-threshold protocols (§3-§4) ignore
    sender identity, but this power is what defeats naive certified
    propagation and motivates the §5 integrity code.
    """

    sender: NodeId
    value: Value
    silence_at_collision: bool = False
    kind: MessageKind = MessageKind.DATA
    spoof_sender: NodeId | None = None
