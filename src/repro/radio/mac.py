"""Slotted-round MAC driver.

Drives the whole network through TDMA rounds: one round is one pass over
the ``(2r+1)^2`` slot classes; in its owned slot every honest node with
pending traffic (and remaining budget) performs one local broadcast. The
adversary is consulted at every slot and may inject Byzantine
transmissions anywhere, budget permitting.

The driver is deliberately independent of any concrete protocol or
adversary: both are structural interfaces (:class:`ProtocolNodeLike`,
:class:`AdversaryLike`) so the radio layer never imports the higher
layers.

Fast path
---------

``DEFAULT_FAST_DRIVER`` routes rounds through a batched loop that is
observably identical to the historical one (kept verbatim as
``_run_round_reference``; the scenario equivalence suite replays whole
runs through both) but skips work the slot-by-slot loop repeats
needlessly:

- **pending candidates** — when a flat protocol engine manages every
  node (so new pending sends can only appear at decide time), the
  per-round bucket build scans only nodes that might be pending instead
  of the whole grid, and budget-exhausted nodes drop out permanently;
- **occupied slots** — empty slot classes are skipped wholesale
  whenever the adversary cannot transmit spontaneously (it is out of
  budget, or its class declares ``spontaneous = False``);
- **budget-gated consultation** — once no Byzantine node can afford a
  message the adversary is never consulted again (its ``on_slot`` must
  be an effect-free ``[]`` in that state, which every bundled adversary
  satisfies);
- **burst dedup** — consecutive identical bursts within one slot
  (Figure 2's 2001-repetition source phase, relay drains) are
  distributed once with a multiplicity instead of once per burst. This
  defers delivery distribution within the slot, so it requires either
  an adversary whose class declares ``observe_stateless = True``
  (``on_slot``/``observe`` neither read nor record anything
  observable) or an adversary that is out of budget (then ``observe``
  still runs, once per deferred burst, at flush time);
- **whole-round memo** — when the adversary is inactive and every node
  class can ``peek_burst`` its sends stably (``PEEK_STABILITY``), the
  round's entire transmission pattern is signed up front and repeated
  rounds replay their resolved delivery batches from
  :meth:`~repro.radio.medium.Medium.round_memo_get` in one dict hit.

Tracing always uses the reference loop, so per-delivery trace output is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.network.grid import Grid
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.medium import Delivery, Medium
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.radio.schedule import TdmaSchedule
from repro.sim.trace import NULL_TRACER, Tracer
from repro.types import NodeId, Value

#: Process-wide default for :class:`RoundDriver`'s ``fast`` switch.
#: Tests monkeypatch this to drive whole experiments through the
#: reference round loop when checking equivalence.
DEFAULT_FAST_DRIVER = True

#: Shared empty Byzantine-transmission list for unconsulted slots (never
#: mutated; the medium only reads its arguments).
_NO_BYZ: list[BadTransmission] = []


@runtime_checkable
class ProtocolNodeLike(Protocol):
    """What the driver needs from an honest protocol node.

    Optional extras the fast path exploits when present (see
    :class:`~repro.protocols.base.BroadcastNode`): a ``PEEK_STABILITY``
    class attribute (``"all"`` — ``peek_burst`` exactly predicts a whole
    slot burst; ``"head"`` — only the first send is stable, so the
    predictable-round path requires ``batch_per_slot == 1``) together
    with a ``peek_burst(limit) -> (value, kind, count)`` method, and a
    ``round_end_noop`` class attribute declaring ``on_round_end`` free
    of protocol logic.
    """

    def has_pending(self) -> bool:
        """Does the node currently want to transmit?"""

    def pop_send(self) -> tuple[Value, MessageKind]:
        """Dequeue the next message to transmit (called once per owned slot)."""

    def on_receive(self, sender: NodeId, value: Value, kind: MessageKind) -> None:
        """Handle one delivered message."""

    def on_round_end(self, round_index: int) -> None:
        """Hook run after every full round (timers, quiet windows)."""


@runtime_checkable
class AdversaryLike(Protocol):
    """What the driver needs from the adversary (a single coordinated mind).

    Contract the fast driver additionally relies on: whenever no
    Byzantine node has ledger budget left, ``on_slot`` must return ``[]``
    without observable side effects — the driver may then stop consulting
    it. Two optional class attributes refine the fast path further:
    ``spontaneous = False`` promises ``on_slot`` is an effect-free ``[]``
    whenever ``honest`` is empty (purely reactive adversaries), letting
    the driver skip empty slots; ``observe_stateless = True`` promises
    ``observe`` has no observable effect *and* ``on_slot`` /
    ``has_pending`` read no delivery- or protocol-node-derived state,
    enabling burst dedup with ``observe`` skipped. Both default to the
    conservative setting when absent.
    """

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        """Byzantine transmissions for this slot (may be empty)."""

    def observe(self, deliveries: list[Delivery]) -> None:
        """Full omniscient view of what was just delivered."""

    def has_pending(self) -> bool:
        """Does the adversary still intend to transmit spontaneously?"""


@dataclass(frozen=True)
class RunLimits:
    """Bounds on a run.

    ``max_rounds`` is a hard stop; runs that hit it are reported as not
    quiescent (either the protocol livelocked or — in impossibility
    experiments — the run was intentionally capped after stalling).
    """

    max_rounds: int

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


@dataclass
class RunStats:
    """Aggregate statistics of one driver run."""

    rounds: int = 0
    honest_transmissions: int = 0
    byzantine_transmissions: int = 0
    deliveries: int = 0
    corrupted_deliveries: int = 0
    quiescent: bool = False
    idle_rounds: int = 0
    per_kind_honest: dict[MessageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MessageKind}
    )


class RoundDriver:
    """Runs the slotted network to quiescence or a round limit.

    ``medium``/``schedule`` accept pre-built (possibly process-warm)
    instances so sweeps can share one grid's CSR tables and delivery
    memo across points; by default each driver builds its own.
    ``engine`` is an optional flat protocol-state engine (see
    :mod:`repro.protocols.flat`) that distributes whole delivery batches
    instead of per-delivery ``on_receive`` calls. ``fast`` selects the
    batched round loop (default :data:`DEFAULT_FAST_DRIVER`); tracing
    runs always use the reference loop.
    """

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        nodes: Mapping[NodeId, ProtocolNodeLike],
        adversary: AdversaryLike,
        ledger: BudgetLedger,
        *,
        batch_per_slot: int = 1,
        tracer: Tracer = NULL_TRACER,
        medium: Medium | None = None,
        schedule: TdmaSchedule | None = None,
        engine=None,
        fast: bool | None = None,
    ) -> None:
        missing = [nid for nid in table.good_ids if nid not in nodes]
        if missing:
            raise ConfigurationError(
                f"every honest node needs a protocol instance; missing {missing[:5]}"
            )
        if batch_per_slot < 1:
            raise ConfigurationError("batch_per_slot must be >= 1")
        self.grid = grid
        self.table = table
        self.nodes = nodes
        self.adversary = adversary
        self.ledger = ledger
        self.batch_per_slot = batch_per_slot
        self.schedule = schedule if schedule is not None else TdmaSchedule(grid)
        self.medium = medium if medium is not None else Medium(grid)
        self.engine = engine
        self.tracer = tracer
        self.fast = DEFAULT_FAST_DRIVER if fast is None else fast
        self.stats = RunStats()
        self._honest_ids = list(table.good_ids)
        self._bad_ids = list(table.bad_ids)
        # Reusable per-slot sender buckets: cleared and refilled every
        # round so steady-state rounds allocate no per-slot containers
        # (the medium's scratch buffers are likewise reused).
        self._slot_buckets: list[list[NodeId]] = [
            [] for _ in range(self.schedule.period)
        ]
        # -- fast-path state ------------------------------------------------
        adversary_cls = type(adversary)
        self._observe_stateless = bool(
            getattr(adversary_cls, "observe_stateless", False)
        )
        self._spontaneous = bool(getattr(adversary_cls, "spontaneous", True))
        # Sticky: budgets are monotone, so once the adversary cannot send
        # it never can again. An adversary over no bad nodes at all stays
        # "active" so driver-level validation of rogue transmissions (a
        # test/debugging affordance) keeps firing.
        self._adversary_active = True
        # Identity-stable per-sender transmissions: repeated sends of one
        # (value, kind) reuse one frozen object, which makes burst dedup
        # and memo-key hashing cheap.
        self._tx_cache: list[Transmission | None] = [None] * grid.n
        self._occupied: list[int] = []
        # Per-slot front cache over the medium memo: relay plateaus
        # repeat one slot's exact inputs across consecutive rounds, and
        # identity-stable transmissions make the equality check cheaper
        # than re-hashing the memo key.
        self._slot_last: list[tuple | None] = [None] * self.schedule.period
        node_classes = {type(node) for node in nodes.values()}
        stabilities = {
            getattr(cls, "PEEK_STABILITY", None) for cls in node_classes
        }
        self._peek_ok = bool(nodes) and (
            stabilities == {"all"}
            or (stabilities <= {"all", "head"} and batch_per_slot == 1)
        )
        # "all"-stable nodes (BroadcastNode family) can never gain new
        # pending sends from a mid-slot receive; queue-based nodes can
        # (a jam delivered to an already-drained co-owner enqueues a
        # NACK), which constrains burst dedup and sender compaction
        # whenever the adversary is still able to transmit.
        self._sends_stable = bool(nodes) and stabilities == {"all"}
        self._skip_round_end = engine is not None and all(
            getattr(cls, "round_end_noop", False) for cls in node_classes
        )
        # Pending-candidate tracking needs every pending transition to be
        # observable by the driver; only the flat engines guarantee that
        # (their node classes become pending exclusively at decide time,
        # which the engine reports via newly_pending).
        if engine is not None:
            self._scan: list[NodeId] | None = list(self._honest_ids)
            self._in_scan: bytearray | None = bytearray(grid.n)
            for nid in self._honest_ids:
                self._in_scan[nid] = 1
        else:
            self._scan = None
            self._in_scan = None

    # -- main loop ----------------------------------------------------------

    def run(self, limits: RunLimits) -> RunStats:
        use_fast = self.fast and not self.tracer.enabled
        for round_index in range(limits.max_rounds):
            if use_fast:
                transmitted = self._run_round_fast(round_index)
            else:
                transmitted = self._run_round_reference(round_index)
            self.stats.rounds = round_index + 1
            if not transmitted:
                self.stats.idle_rounds += 1
            if self._quiescent():
                self.stats.quiescent = True
                break
            if not transmitted and not self._any_honest_active():
                # The adversary claims pending work but produced nothing for
                # a whole round while honest nodes are done: treat as done
                # to avoid spinning (a liar with budget but no trigger).
                self.stats.quiescent = True
                break
        return self.stats

    # -- fast round loop ----------------------------------------------------

    def _run_round_fast(self, round_index: int) -> bool:
        ledger = self.ledger
        nodes = self.nodes
        if self._adversary_active and self._bad_ids:
            if not any(ledger.can_send(bad) for bad in self._bad_ids):
                self._adversary_active = False
        active = self._adversary_active

        # Build the per-slot sender buckets for this round.
        by_slot = self._slot_buckets
        occupied = self._occupied
        for slot in occupied:
            by_slot[slot].clear()
        occupied.clear()
        slot_of = self.schedule._slot_of
        scan = self._scan
        if scan is not None:
            in_scan = self._in_scan
            write = 0
            for nid in scan:
                node = nodes[nid]
                if node.has_pending():
                    if ledger.can_send(nid):
                        slot = slot_of[nid]
                        bucket = by_slot[slot]
                        if not bucket:
                            occupied.append(slot)
                        bucket.append(nid)
                        scan[write] = nid
                        write += 1
                    else:
                        in_scan[nid] = 0  # budget gone forever
                else:
                    in_scan[nid] = 0  # re-added when it becomes pending
            del scan[write:]
        else:
            for nid in self._honest_ids:
                node = nodes[nid]
                if node.has_pending() and ledger.can_send(nid):
                    slot = slot_of[nid]
                    bucket = by_slot[slot]
                    if not bucket:
                        occupied.append(slot)
                    bucket.append(nid)
            scan = None  # already ascending: _honest_ids order
        occupied.sort()
        if scan is not None:
            # The scan list holds pending-arrival order, but the
            # reference loop fills buckets in ascending id order — and
            # order-sensitive adversaries observe it: SpoofingJammer
            # allocates its per-slot jammers to victims in list order,
            # so an unsorted bucket jams different victims and forges
            # different endorsements than the reference run.
            for slot in occupied:
                bucket = by_slot[slot]
                if len(bucket) > 1:
                    bucket.sort()

        if not active and self._peek_ok:
            return self._run_round_predictable(round_index)

        consult_empty = active and self._spontaneous
        slots = range(self.schedule.period) if consult_empty else occupied
        return self._run_slot_loop(round_index, slots, active, None)

    def _run_slot_loop(
        self, round_index: int, slots, active: bool, record: list | None
    ) -> bool:
        """One round, slot by slot, with per-slot burst dedup.

        ``record`` (predictable rounds only) collects each occupied
        slot's per-burst batch sequence for the whole-round memo.
        """
        ledger = self.ledger
        nodes = self.nodes
        adversary = self.adversary
        medium = self.medium
        by_slot = self._slot_buckets
        tx_cache = self._tx_cache
        slot_last = self._slot_last
        stats = self.stats
        per_kind = stats.per_kind_honest
        # Burst dedup defers delivery distribution to the end of a
        # burst group, and sender compaction stops re-checking a slot
        # owner that ran dry. Both are safe only when nothing can act on
        # mid-slot deliveries: the adversary must not look (it is
        # inactive, or observe_stateless by contract) AND no bucketed
        # sender may *become* pending from a receive (sends are
        # "all"-stable, or there is a single burst per slot, or no
        # Byzantine transmission can reach a drained co-owner because
        # the adversary is inactive). With an inactive adversary,
        # observe still re-fires once per deferred burst at flush time.
        single_burst = self.batch_per_slot == 1
        senders_settled = self._sends_stable or single_burst or not active
        dedup = senders_settled and (self._observe_stateless or not active)
        compact = senders_settled
        data_kind = MessageKind.DATA
        data_count = 0
        honest_total = 0
        byz_total = 0
        transmitted = False
        for slot in slots:
            # When senders_settled, owners that fail the pending/budget
            # check are compacted away for the slot's remaining bursts:
            # both conditions are then monotone within a slot (budgets
            # only shrink, and no receive can re-arm a drained owner).
            senders = by_slot[slot]
            slot_batches: list | None = [] if record is not None else None
            prev_honest: list[Transmission] | None = None
            prev_byz: list[BadTransmission] | None = None
            pending_batch = None
            multiplicity = 0
            for _burst in range(self.batch_per_slot):
                honest_txs: list[Transmission] = []
                write = 0
                for nid in senders:
                    node = nodes[nid]
                    if not node.has_pending() or not ledger.can_send(nid):
                        continue
                    value, kind = node.pop_send()
                    ledger.charge(nid)
                    tx = tx_cache[nid]
                    if tx is None or tx.value != value or tx.kind is not kind:
                        tx = Transmission(nid, value, kind)
                        tx_cache[nid] = tx
                    honest_txs.append(tx)
                    if compact:
                        senders[write] = nid
                        write += 1
                    if kind is data_kind:
                        data_count += 1
                    else:
                        per_kind[kind] += 1
                if compact:
                    del senders[write:]
                if active:
                    byz_txs = adversary.on_slot(round_index, slot, honest_txs)
                    for tx in byz_txs:
                        if not self.table.is_bad(tx.sender):
                            raise ConfigurationError(
                                f"adversary transmitted from honest node {tx.sender}"
                            )
                        ledger.charge(tx.sender)
                else:
                    byz_txs = _NO_BYZ
                if not honest_txs and not byz_txs:
                    break
                transmitted = True
                honest_total += len(honest_txs)
                byz_total += len(byz_txs)

                if not dedup:
                    # A stateful-observe adversary must see each burst's
                    # deliveries before its next on_slot: flush eagerly.
                    # (record implies an inactive adversary, hence dedup,
                    # so round recording never takes this branch.)
                    last = slot_last[slot]
                    if last is not None and (
                        honest_txs == last[0] and byz_txs == last[1]
                    ):
                        batch = last[2]
                    else:
                        batch = medium.resolve_slot(honest_txs, byz_txs)
                        slot_last[slot] = (honest_txs, byz_txs, batch)
                    self._flush(batch, 1, round_index)
                    continue
                if pending_batch is not None and (
                    honest_txs == prev_honest and byz_txs == prev_byz
                ):
                    multiplicity += 1
                else:
                    if pending_batch is not None:
                        self._flush(pending_batch, multiplicity, round_index)
                    last = slot_last[slot]
                    if last is not None and (
                        honest_txs == last[0] and byz_txs == last[1]
                    ):
                        pending_batch = last[2]
                    else:
                        pending_batch = medium.resolve_slot(honest_txs, byz_txs)
                        slot_last[slot] = (honest_txs, byz_txs, pending_batch)
                    prev_honest = honest_txs
                    prev_byz = byz_txs
                    multiplicity = 1
                if slot_batches is not None:
                    slot_batches.append(pending_batch)
            if pending_batch is not None:
                self._flush(pending_batch, multiplicity, round_index)
            if record is not None and slot_batches:
                record.append(tuple(slot_batches))

        if data_count:
            per_kind[data_kind] += data_count
        stats.honest_transmissions += honest_total
        stats.byzantine_transmissions += byz_total
        if not self._skip_round_end:
            for nid in self._honest_ids:
                nodes[nid].on_round_end(round_index)
        return transmitted

    def _flush(self, batch, multiplicity: int, round_index: int) -> None:
        """Distribute one resolved batch ``multiplicity`` times at once."""
        stats = self.stats
        size = len(batch)
        stats.deliveries += size * multiplicity
        corrupted = getattr(batch, "corrupted_count", None)
        if corrupted is None:  # reference-resolver plain list
            corrupted = sum(1 for d in batch if d.corrupted)
        stats.corrupted_deliveries += corrupted * multiplicity
        engine = self.engine
        if engine is not None:
            engine.distribute(batch, round_index, multiplicity)
            newly = engine.newly_pending
            if newly:
                scan = self._scan
                in_scan = self._in_scan
                for nid in newly:
                    if not in_scan[nid]:
                        in_scan[nid] = 1
                        scan.append(nid)
                newly.clear()
        else:
            nodes = self.nodes
            for _ in range(multiplicity):
                for delivery in batch:
                    node = nodes.get(delivery.receiver)
                    if node is not None:  # honest receiver
                        node.on_receive(
                            delivery.sender, delivery.value, delivery.kind
                        )
        if not self._observe_stateless:
            observe = self.adversary.observe
            for _ in range(multiplicity):
                observe(batch)

    # -- predictable rounds (whole-round memo) -------------------------------

    def _round_signature(self) -> tuple:
        """Sign this round's entire honest traffic without mutating state.

        Only valid when the adversary is inactive and every node's
        ``peek_burst`` is stable for the round (``PEEK_STABILITY``): the
        signature then fully determines every burst of every occupied
        slot, because bucketed senders cannot receive anything during
        their own slot (TDMA puts co-owners out of range) and peeked
        sends survive mid-round receives by contract.
        """
        ledger = self.ledger
        nodes = self.nodes
        by_slot = self._slot_buckets
        batch = self.batch_per_slot
        parts = []
        for slot in self._occupied:
            entries = []
            for nid in by_slot[slot]:
                value, kind, count = nodes[nid].peek_burst(batch)
                remaining = ledger.remaining(nid)
                if remaining is not None and remaining < count:
                    count = remaining
                if count:
                    entries.append((nid, value, kind, count))
            if entries:
                parts.append((slot, tuple(entries)))
        return tuple(parts)

    def _run_round_predictable(self, round_index: int) -> bool:
        signature = self._round_signature()
        if not signature:
            # A silent round: nothing to send anywhere, but round-end
            # hooks (timers, quiet windows) still fire.
            if not self._skip_round_end:
                nodes = self.nodes
                for nid in self._honest_ids:
                    nodes[nid].on_round_end(round_index)
            return False
        cached = self.medium.round_memo_get(signature)
        if cached is not None:
            self._replay_round(round_index, signature, cached)
            return True
        record: list[tuple] = []
        transmitted = self._run_slot_loop(
            round_index, self._occupied, False, record
        )
        self.medium.round_memo_put(signature, tuple(record))
        return transmitted

    def _replay_round(
        self, round_index: int, signature: tuple, cached: tuple
    ) -> None:
        """Re-enact a memoized round: state changes, no re-resolution."""
        ledger = self.ledger
        nodes = self.nodes
        stats = self.stats
        per_kind = stats.per_kind_honest
        for (slot, entries), batches in zip(signature, cached):
            for nid, _value, kind, count in entries:
                node = nodes[nid]
                for _ in range(count):
                    node.pop_send()
                ledger.charge(nid, count)
                stats.honest_transmissions += count
                per_kind[kind] += count
            index = 0
            total = len(batches)
            while index < total:
                batch = batches[index]
                end = index + 1
                while end < total and batches[end] is batch:
                    end += 1
                self._flush(batch, end - index, round_index)
                index = end
        if not self._skip_round_end:
            for nid in self._honest_ids:
                nodes[nid].on_round_end(round_index)

    # -- reference round loop ------------------------------------------------

    def _run_round_reference(self, round_index: int) -> bool:
        """The historical slot-by-slot loop (the fast path's referee)."""
        schedule = self.schedule
        ledger = self.ledger
        by_slot = self._slot_buckets
        for bucket in by_slot:
            bucket.clear()
        for nid in self._honest_ids:
            node = self.nodes[nid]
            if node.has_pending() and ledger.can_send(nid):
                by_slot[schedule.slot_of(nid)].append(nid)

        transmitted = False
        for slot in range(schedule.period):
            # `batch_per_slot > 1` stretches each slot into consecutive
            # sub-slots in which the slot's owners drain several pending
            # messages back-to-back. Every sub-slot is a full medium
            # round (adversary consulted, budgets charged per message),
            # so all counting arguments are untouched — only wall-clock
            # round counts compress. Used by heavy experiments such as
            # Figure 2's 2001-repetition source phase.
            for _burst in range(self.batch_per_slot):
                honest_txs: list[Transmission] = []
                for nid in by_slot[slot]:  # at most a few per class
                    node = self.nodes[nid]
                    if not node.has_pending() or not ledger.can_send(nid):
                        continue
                    value, kind = node.pop_send()
                    ledger.charge(nid)
                    honest_txs.append(Transmission(nid, value, kind))
                    self.stats.per_kind_honest[kind] += 1

                byz_txs = self.adversary.on_slot(round_index, slot, honest_txs)
                for tx in byz_txs:
                    if not self.table.is_bad(tx.sender):
                        raise ConfigurationError(
                            f"adversary transmitted from honest node {tx.sender}"
                        )
                    ledger.charge(tx.sender)

                if not honest_txs and not byz_txs:
                    break
                transmitted = True
                self.stats.honest_transmissions += len(honest_txs)
                self.stats.byzantine_transmissions += len(byz_txs)

                deliveries = self.medium.resolve_slot(honest_txs, byz_txs)
                self._distribute(deliveries, round_index, slot)

        for nid in self._honest_ids:
            self.nodes[nid].on_round_end(round_index)
        return transmitted

    def _distribute(
        self, deliveries: list[Delivery], round_index: int, slot: int
    ) -> None:
        trace_on = self.tracer.enabled
        for delivery in deliveries:
            self.stats.deliveries += 1
            if delivery.corrupted:
                self.stats.corrupted_deliveries += 1
            if trace_on:
                self.tracer.emit(
                    "radio.deliver",
                    (round_index, slot),
                    receiver=delivery.receiver,
                    sender=delivery.sender,
                    value=delivery.value,
                    corrupted=delivery.corrupted,
                )
            node = self.nodes.get(delivery.receiver)
            if node is not None:  # honest receiver
                node.on_receive(delivery.sender, delivery.value, delivery.kind)
        self.adversary.observe(deliveries)

    # -- termination --------------------------------------------------------

    def _any_honest_active(self) -> bool:
        ledger = self.ledger
        nodes = self.nodes
        scan = self._scan
        candidates = scan if scan is not None else self._honest_ids
        return any(
            nodes[nid].has_pending() and ledger.can_send(nid)
            for nid in candidates
        )

    def _quiescent(self) -> bool:
        return not self._any_honest_active() and not self.adversary.has_pending()


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="round-driver",
        flag_module="repro.radio.mac",
        flag_attr="DEFAULT_FAST_DRIVER",
        fast="repro.radio.mac.RoundDriver._run_round_fast",
        reference="repro.radio.mac.RoundDriver._run_round_reference",
        differential_test="tests/test_scenario_fastpath.py",
        fuzz_leg="fast",
        description="batched round loop (burst dedup, whole-round memo) "
        "vs the per-delivery reference loop",
    )
)
