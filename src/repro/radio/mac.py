"""Slotted-round MAC driver.

Drives the whole network through TDMA rounds: one round is one pass over
the ``(2r+1)^2`` slot classes; in its owned slot every honest node with
pending traffic (and remaining budget) performs one local broadcast. The
adversary is consulted at every slot and may inject Byzantine
transmissions anywhere, budget permitting.

The driver is deliberately independent of any concrete protocol or
adversary: both are structural interfaces (:class:`ProtocolNodeLike`,
:class:`AdversaryLike`) so the radio layer never imports the higher
layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.network.grid import Grid
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.medium import Delivery, Medium
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.radio.schedule import TdmaSchedule
from repro.sim.trace import NULL_TRACER, Tracer
from repro.types import NodeId, Value


@runtime_checkable
class ProtocolNodeLike(Protocol):
    """What the driver needs from an honest protocol node."""

    def has_pending(self) -> bool:
        """Does the node currently want to transmit?"""

    def pop_send(self) -> tuple[Value, MessageKind]:
        """Dequeue the next message to transmit (called once per owned slot)."""

    def on_receive(self, sender: NodeId, value: Value, kind: MessageKind) -> None:
        """Handle one delivered message."""

    def on_round_end(self, round_index: int) -> None:
        """Hook run after every full round (timers, quiet windows)."""


@runtime_checkable
class AdversaryLike(Protocol):
    """What the driver needs from the adversary (a single coordinated mind)."""

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        """Byzantine transmissions for this slot (may be empty)."""

    def observe(self, deliveries: list[Delivery]) -> None:
        """Full omniscient view of what was just delivered."""

    def has_pending(self) -> bool:
        """Does the adversary still intend to transmit spontaneously?"""


@dataclass(frozen=True)
class RunLimits:
    """Bounds on a run.

    ``max_rounds`` is a hard stop; runs that hit it are reported as not
    quiescent (either the protocol livelocked or — in impossibility
    experiments — the run was intentionally capped after stalling).
    """

    max_rounds: int

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


@dataclass
class RunStats:
    """Aggregate statistics of one driver run."""

    rounds: int = 0
    honest_transmissions: int = 0
    byzantine_transmissions: int = 0
    deliveries: int = 0
    corrupted_deliveries: int = 0
    quiescent: bool = False
    idle_rounds: int = 0
    per_kind_honest: dict[MessageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MessageKind}
    )


class RoundDriver:
    """Runs the slotted network to quiescence or a round limit."""

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        nodes: Mapping[NodeId, ProtocolNodeLike],
        adversary: AdversaryLike,
        ledger: BudgetLedger,
        *,
        batch_per_slot: int = 1,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        missing = [nid for nid in table.good_ids if nid not in nodes]
        if missing:
            raise ConfigurationError(
                f"every honest node needs a protocol instance; missing {missing[:5]}"
            )
        if batch_per_slot < 1:
            raise ConfigurationError("batch_per_slot must be >= 1")
        self.grid = grid
        self.table = table
        self.nodes = nodes
        self.adversary = adversary
        self.ledger = ledger
        self.batch_per_slot = batch_per_slot
        self.schedule = TdmaSchedule(grid)
        self.medium = Medium(grid)
        self.tracer = tracer
        self.stats = RunStats()
        self._honest_ids = list(table.good_ids)
        # Reusable per-slot sender buckets: cleared and refilled every
        # round so steady-state rounds allocate no per-slot containers
        # (the medium's scratch buffers are likewise reused).
        self._slot_buckets: list[list[NodeId]] = [
            [] for _ in range(self.schedule.period)
        ]

    # -- main loop ----------------------------------------------------------

    def run(self, limits: RunLimits) -> RunStats:
        for round_index in range(limits.max_rounds):
            transmitted = self._run_round(round_index)
            self.stats.rounds = round_index + 1
            if not transmitted:
                self.stats.idle_rounds += 1
            if self._quiescent():
                self.stats.quiescent = True
                break
            if not transmitted and not self._any_honest_active():
                # The adversary claims pending work but produced nothing for
                # a whole round while honest nodes are done: treat as done
                # to avoid spinning (a liar with budget but no trigger).
                self.stats.quiescent = True
                break
        return self.stats

    def _run_round(self, round_index: int) -> bool:
        schedule = self.schedule
        ledger = self.ledger
        by_slot = self._slot_buckets
        for bucket in by_slot:
            bucket.clear()
        for nid in self._honest_ids:
            node = self.nodes[nid]
            if node.has_pending() and ledger.can_send(nid):
                by_slot[schedule.slot_of(nid)].append(nid)

        transmitted = False
        for slot in range(schedule.period):
            # `batch_per_slot > 1` stretches each slot into consecutive
            # sub-slots in which the slot's owners drain several pending
            # messages back-to-back. Every sub-slot is a full medium
            # round (adversary consulted, budgets charged per message),
            # so all counting arguments are untouched — only wall-clock
            # round counts compress. Used by heavy experiments such as
            # Figure 2's 2001-repetition source phase.
            for _burst in range(self.batch_per_slot):
                honest_txs: list[Transmission] = []
                for nid in by_slot[slot]:  # at most a few per class
                    node = self.nodes[nid]
                    if not node.has_pending() or not ledger.can_send(nid):
                        continue
                    value, kind = node.pop_send()
                    ledger.charge(nid)
                    honest_txs.append(Transmission(nid, value, kind))
                    self.stats.per_kind_honest[kind] += 1

                byz_txs = self.adversary.on_slot(round_index, slot, honest_txs)
                for tx in byz_txs:
                    if not self.table.is_bad(tx.sender):
                        raise ConfigurationError(
                            f"adversary transmitted from honest node {tx.sender}"
                        )
                    ledger.charge(tx.sender)

                if not honest_txs and not byz_txs:
                    break
                transmitted = True
                self.stats.honest_transmissions += len(honest_txs)
                self.stats.byzantine_transmissions += len(byz_txs)

                deliveries = self.medium.resolve_slot(honest_txs, byz_txs)
                self._distribute(deliveries, round_index, slot)

        for nid in self._honest_ids:
            self.nodes[nid].on_round_end(round_index)
        return transmitted

    def _distribute(
        self, deliveries: list[Delivery], round_index: int, slot: int
    ) -> None:
        trace_on = self.tracer.enabled
        for delivery in deliveries:
            self.stats.deliveries += 1
            if delivery.corrupted:
                self.stats.corrupted_deliveries += 1
            if trace_on:
                self.tracer.emit(
                    "radio.deliver",
                    (round_index, slot),
                    receiver=delivery.receiver,
                    sender=delivery.sender,
                    value=delivery.value,
                    corrupted=delivery.corrupted,
                )
            node = self.nodes.get(delivery.receiver)
            if node is not None:  # honest receiver
                node.on_receive(delivery.sender, delivery.value, delivery.kind)
        self.adversary.observe(deliveries)

    # -- termination --------------------------------------------------------

    def _any_honest_active(self) -> bool:
        ledger = self.ledger
        return any(
            self.nodes[nid].has_pending() and ledger.can_send(nid)
            for nid in self._honest_ids
        )

    def _quiescent(self) -> bool:
        return not self._any_honest_active() and not self.adversary.has_pending()
