"""Shared radio medium: per-slot delivery resolution.

Semantics (paper §1.2):

- a local broadcast reaches every node within L∞ distance ``r`` of the
  sender;
- if a receiver is in range of two or more concurrent transmissions, the
  result at that receiver is adversary-controlled: a wrong message or no
  message at all, with no indication that anything abnormal happened;
- honest nodes follow the TDMA schedule, so a collision implies at least
  one Byzantine transmission is involved.

The medium is stateless; :class:`~repro.radio.mac.RoundDriver` feeds it
the transmissions of one slot and distributes the resulting deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleConflictError
from repro.network.grid import Grid
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.types import NodeId, Value


@dataclass(frozen=True, slots=True)
class Delivery:
    """One value delivered to one receiver in one slot.

    ``corrupted`` marks deliveries manufactured through a collision — it
    is *simulation metadata* for metrics and adversary bookkeeping; the
    receiving protocol node never sees it (receivers cannot detect
    collisions in this model).
    """

    receiver: NodeId
    sender: NodeId
    value: Value
    kind: MessageKind
    corrupted: bool = False


class Medium:
    """Resolves concurrent transmissions into per-receiver deliveries."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid

    def resolve_slot(
        self,
        honest: list[Transmission],
        byzantine: list[BadTransmission],
    ) -> list[Delivery]:
        """Compute all deliveries for one slot.

        Honest transmissions in the same slot must be mutually
        non-interfering (the TDMA coloring guarantees it); a violation
        raises :class:`ScheduleConflictError` because it indicates a bug,
        not an attack.
        """
        if not honest and not byzantine:
            return []

        # Radios are half-duplex: a node transmitting in this slot cannot
        # receive. (Only relevant when two Byzantine nodes are adjacent —
        # honest same-slot senders are out of range by TDMA construction.)
        transmitting = {tx.sender for tx in honest} | {tx.sender for tx in byzantine}

        heard: dict[NodeId, list[Transmission | BadTransmission]] = {}
        for tx in honest:
            for receiver in self.grid.neighbors(tx.sender):
                if receiver not in transmitting:
                    heard.setdefault(receiver, []).append(tx)
        for tx in byzantine:
            for receiver in self.grid.neighbors(tx.sender):
                if receiver not in transmitting:
                    heard.setdefault(receiver, []).append(tx)

        deliveries: list[Delivery] = []
        for receiver, txs in heard.items():
            if len(txs) == 1:
                tx = txs[0]
                deliveries.append(
                    Delivery(receiver, tx.sender, tx.value, tx.kind, corrupted=False)
                )
                continue
            bad_txs = [tx for tx in txs if isinstance(tx, BadTransmission)]
            if not bad_txs:
                senders = [self.grid.coord_of(tx.sender) for tx in txs]
                raise ScheduleConflictError(
                    f"honest transmissions collided at receiver "
                    f"{self.grid.coord_of(receiver)}: senders {senders}"
                )
            # The adversary owns the collision outcome at this receiver.
            # Deterministic tie-break: the lowest-id Byzantine transmitter
            # involved dictates what the receiver perceives.
            controller = min(bad_txs, key=lambda tx: tx.sender)
            if controller.silence_at_collision:
                continue  # receiver hears nothing and notices nothing
            apparent_sender = (
                controller.spoof_sender
                if controller.spoof_sender is not None
                else controller.sender
            )
            deliveries.append(
                Delivery(
                    receiver,
                    apparent_sender,
                    controller.value,
                    controller.kind,
                    corrupted=True,
                )
            )
        deliveries.sort(key=lambda d: (d.receiver, d.sender))
        return deliveries
