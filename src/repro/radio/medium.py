"""Shared radio medium: per-slot delivery resolution.

Semantics (paper §1.2):

- a local broadcast reaches every node within L∞ distance ``r`` of the
  sender;
- if a receiver is in range of two or more concurrent transmissions, the
  result at that receiver is adversary-controlled: a wrong message or no
  message at all, with no indication that anything abnormal happened;
- honest nodes follow the TDMA schedule, so a collision implies at least
  one Byzantine transmission is involved.

The medium is stateless semantically but keeps *reusable scratch
buffers*; :class:`~repro.radio.mac.RoundDriver` feeds it the
transmissions of one slot and distributes the resulting deliveries.

Fast path
---------

``resolve_slot`` is the hottest call in the simulator (every slot of
every run lands here), so it avoids the historical per-slot dict/set
churn:

- slots are memoized whole: transmissions are frozen (hashable)
  dataclasses, so ``(tuple(honest), tuple(byzantine))`` exactly keys
  the resulting delivery list, which is cached as an immutable tuple
  and copied into a fresh list on every hit. Steady-state traffic is
  extremely repetitive (E2's source repeats one slot 2001 times against
  the same planned jams), so the memo carries the bulk of a run;
- memo misses with a single transmission reduce to one pass over the
  sender's sorted neighbors (no collision is possible);
- multi-transmission misses run over dense id-indexed scratch buffers
  (a ``bytearray`` heard-count, a ``bytearray`` transmitting mask, the
  controlling Byzantine sender per receiver, and a touched-receiver
  scratch list), iterating :meth:`~repro.network.grid.Grid.neighbors_sorted`
  so deliveries come out already ordered by receiver.

The historical dict-based implementation is preserved as
``resolve_slot_reference``; the determinism suite asserts both produce
byte-for-byte identical delivery lists, and ``python -m repro bench``
records the speedup trajectory in ``BENCH_slot_resolution.json``.

Since the scenario fast path (``python -m repro bench scenario``), the
fast resolver returns a :class:`DeliveryBatch` — a ``list`` subclass
carrying a precomputed ``corrupted_count`` — and memo hits return the
*same cached batch object* rather than a fresh copy, so callers must
treat resolver output as immutable. Identity-stable batches are what
lets the round driver and the flat protocol engines cache per-batch
distribution plans (keyed by ``id(batch)`` while holding the batch
alive). A :class:`Medium` also owns the *whole-round memo*
(:meth:`round_memo_get` / :meth:`round_memo_put`): the driver keys a
steady-state round's entire transmission pattern by the tuple of its
slot signatures, so repeated rounds (silent rounds, relay plateaus,
repeated retransmission waves) resolve in one dict hit.

``spoof_sender`` hygiene: an apparent sender outside the grid raises
:class:`~repro.errors.ConfigurationError` (an adversary bug, not an
attack), and a transmission spoofing the *receiver's own id* falls back
to the controller's real id — a node cannot appear to hear itself.
Both paths enforce the same rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ScheduleConflictError
from repro.network.grid import Grid
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.types import NodeId, Value

#: Process-wide default for :class:`Medium`'s ``fast`` switch. Tests
#: monkeypatch this to drive whole experiments through the reference
#: resolver when checking equivalence.
DEFAULT_FAST = True

#: Slot-memo bound: far above any real run's distinct slot-pattern
#: population, but keeps a pathological transmission stream from growing
#: the memo without bound (the memo is simply dropped when full).
_SLOT_MEMO_LIMIT = 2048

#: Whole-round memo bound (each entry holds one round's batch tuple).
_ROUND_MEMO_LIMIT = 512


@dataclass(frozen=True, slots=True)
class Delivery:
    """One value delivered to one receiver in one slot.

    ``corrupted`` marks deliveries manufactured through a collision — it
    is *simulation metadata* for metrics and adversary bookkeeping; the
    receiving protocol node never sees it (receivers cannot detect
    collisions in this model).
    """

    receiver: NodeId
    sender: NodeId
    value: Value
    kind: MessageKind
    corrupted: bool = False


class BatchPlanCache:
    """``id(batch) -> plan`` memo with an identity guard.

    Delivery batches are identity-stable (memo hits return the same
    object), so consumers that precompute per-batch *plans* — regrouped
    delivery views for the flat protocol engines, filtered receiver
    lists for adversary bookkeeping — key them by ``id(batch)``. Each
    entry holds the batch itself, pinning its id for the entry's
    lifetime; the identity recheck guards recycled addresses after a
    clear. Bounded: dropped wholesale when full.
    """

    __slots__ = ("_plans", "limit")

    def __init__(self, limit: int = 4096) -> None:
        self.limit = limit
        self._plans: dict[int, tuple] = {}

    def get(self, batch):
        entry = self._plans.get(id(batch))
        if entry is not None and entry[1] is batch:
            return entry[0]
        return None

    def put(self, batch, plan) -> None:
        if len(self._plans) >= self.limit:
            self._plans.clear()
        self._plans[id(batch)] = (plan, batch)


#: Shared plan caches keyed by what the plan's content depends on (e.g.
#: ``("threshold", n, good-ids)``), so repeated runs of one scenario
#: shape — a sweep's points inside one worker — reuse plans instead of
#: rebuilding them per run. Process-local, like the batches themselves.
_PLAN_CACHES: dict[tuple, BatchPlanCache] = {}
_PLAN_CACHE_REGISTRY_LIMIT = 64


def shared_plan_cache(signature: tuple) -> BatchPlanCache:
    """The process-wide :class:`BatchPlanCache` for a plan signature.

    Callers must fold *everything* their plan derives from (beyond the
    batch content itself) into ``signature`` — two consumers with equal
    signatures will happily share plans.
    """
    cache = _PLAN_CACHES.get(signature)
    if cache is None:
        if len(_PLAN_CACHES) >= _PLAN_CACHE_REGISTRY_LIMIT:
            _PLAN_CACHES.clear()
        cache = _PLAN_CACHES[signature] = BatchPlanCache()
    return cache


class DeliveryBatch(list):
    """One slot's delivery list plus precomputed aggregates.

    A plain ``list`` to every existing consumer (equality, iteration,
    ``len``), with ``corrupted_count`` attached so the driver's stats
    update is O(1) instead of one pass per slot. Memo hits hand out the
    same batch object every time, which makes ``id(batch)`` a stable key
    for per-batch distribution plans **as long as the keeper also holds a
    strong reference to the batch** (see the flat protocol engines).
    Treat batches as immutable.
    """

    __slots__ = ("corrupted_count",)

    def __init__(self, deliveries=(), corrupted_count: int = 0) -> None:
        super().__init__(deliveries)
        self.corrupted_count = corrupted_count


def _apparent_sender(
    controller: BadTransmission, receiver: NodeId, n: int
) -> NodeId:
    """The sender id a collision victim perceives, validated/clamped.

    Out-of-grid spoof ids are a configuration bug; spoofing the receiver
    itself clamps to the controller's real id (see module docstring).
    """
    spoof = controller.spoof_sender
    if spoof is None:
        return controller.sender
    if not 0 <= spoof < n:
        raise ConfigurationError(
            f"spoof_sender {spoof} from Byzantine node {controller.sender} "
            f"is outside the grid (n={n})"
        )
    if spoof == receiver:
        return controller.sender
    return spoof


class Medium:
    """Resolves concurrent transmissions into per-receiver deliveries."""

    def __init__(self, grid: Grid, *, fast: bool | None = None) -> None:
        self.grid = grid
        self.fast = DEFAULT_FAST if fast is None else fast
        # Reusable flat scratch (multi-transmission slots), allocated on
        # the first multi-transmission slot: vectorized-kernel runs (and
        # single-transmission workloads) never resolve one, and five
        # O(n) buffers are real money on a 10^6-node grid. All buffers
        # are restored to their idle state after every call — including
        # on the ScheduleConflictError path — via the touched list.
        self._scratch_ready = False
        self._transmitting: bytearray
        self._heard: bytearray
        self._single: list[int]
        self._ctrl_sender: list[int]
        self._ctrl_idx: list[int]
        self._touched: list[NodeId]
        # (tuple(honest), tuple(byzantine)) -> DeliveryBatch. Transmissions
        # are frozen dataclasses, so the key captures the slot's entire
        # input, including list order (which breaks equal-id Byzantine
        # ties). Hits return the cached batch itself (no copy).
        self._slot_memo: dict[tuple, DeliveryBatch] = {}
        # Whole-round memo: round signature -> whatever the driver stored
        # (a tuple of per-slot sender specs and batch tuples). Owned here
        # so warm Medium instances carry it across runs of one grid.
        self._round_memo: dict[tuple, tuple] = {}

    def resolve_slot(
        self,
        honest: list[Transmission],
        byzantine: list[BadTransmission],
    ) -> list[Delivery]:
        """Compute all deliveries for one slot.

        Honest transmissions in the same slot must be mutually
        non-interfering (the TDMA coloring guarantees it); a violation
        raises :class:`ScheduleConflictError` because it indicates a bug,
        not an attack.
        """
        if not honest and not byzantine:
            return []
        if not self.fast:
            return self.resolve_slot_reference(honest, byzantine)
        key = (tuple(honest), tuple(byzantine))
        cached = self._slot_memo.get(key)
        if cached is not None:
            return cached
        if len(honest) + len(byzantine) == 1:
            # A lone transmission: no collision is possible anywhere, so
            # every neighbor hears it verbatim (a lone Byzantine message
            # is a plain lie — spoof_sender only acts at collisions).
            tx = honest[0] if honest else byzantine[0]
            batch = DeliveryBatch(
                Delivery(receiver, tx.sender, tx.value, tx.kind, False)
                for receiver in self.grid.neighbors_sorted(tx.sender)
            )
        else:
            batch = self._resolve_flat(honest, byzantine)
        if len(self._slot_memo) >= _SLOT_MEMO_LIMIT:
            self._slot_memo.clear()
        self._slot_memo[key] = batch
        return batch

    # -- whole-round memo --------------------------------------------------

    def round_memo_get(self, signature: tuple) -> tuple | None:
        """Look up a previously stored round by its transmission signature."""
        return self._round_memo.get(signature)

    def round_memo_put(self, signature: tuple, value: tuple) -> None:
        """Store one resolved round (bounded; dropped wholesale when full)."""
        if len(self._round_memo) >= _ROUND_MEMO_LIMIT:
            self._round_memo.clear()
        self._round_memo[signature] = value

    # -- fast path ---------------------------------------------------------

    def _ensure_scratch(self) -> None:
        n = self.grid.n
        self._transmitting = bytearray(n)
        self._heard = bytearray(n)  # 0, 1, or 2 meaning "two or more"
        self._single = [0] * n  # tx index while heard == 1
        self._ctrl_sender = [n] * n  # min Byzantine sender heard (n = none)
        self._ctrl_idx = [0] * n  # its index into the byzantine list
        self._touched = []
        self._scratch_ready = True

    def _resolve_flat(
        self,
        honest: list[Transmission],
        byzantine: list[BadTransmission],
    ) -> DeliveryBatch:
        if not self._scratch_ready:
            self._ensure_scratch()
        grid = self.grid
        n = grid.n
        neighbors = grid._neighbors_sorted
        transmitting = self._transmitting
        heard = self._heard
        single = self._single
        ctrl_sender = self._ctrl_sender
        ctrl_idx = self._ctrl_idx
        touched = self._touched
        n_honest = len(honest)

        # Radios are half-duplex: a node transmitting in this slot cannot
        # receive. (Only relevant when two Byzantine nodes are adjacent —
        # honest same-slot senders are out of range by TDMA construction.)
        for tx in honest:
            transmitting[tx.sender] = 1
        for tx in byzantine:
            transmitting[tx.sender] = 1

        try:
            for index, tx in enumerate(honest):
                for receiver in neighbors[tx.sender]:
                    if transmitting[receiver]:
                        continue
                    count = heard[receiver]
                    if count == 0:
                        heard[receiver] = 1
                        single[receiver] = index
                        touched.append(receiver)
                    elif count == 1:
                        heard[receiver] = 2
            for bindex, tx in enumerate(byzantine):
                sender = tx.sender
                for receiver in neighbors[sender]:
                    if transmitting[receiver]:
                        continue
                    count = heard[receiver]
                    if count == 0:
                        heard[receiver] = 1
                        single[receiver] = n_honest + bindex
                        touched.append(receiver)
                    elif count == 1:
                        heard[receiver] = 2
                    # Deterministic tie-break mirror of the reference
                    # path: the lowest-id Byzantine transmitter heard
                    # (earliest in the list on equal ids) controls the
                    # collision outcome at this receiver.
                    if sender < ctrl_sender[receiver]:
                        ctrl_sender[receiver] = sender
                        ctrl_idx[receiver] = bindex

            touched.sort()
            deliveries = DeliveryBatch()
            append = deliveries.append
            corrupted = 0
            for receiver in touched:
                if heard[receiver] == 1:
                    index = single[receiver]
                    tx = (
                        honest[index]
                        if index < n_honest
                        else byzantine[index - n_honest]
                    )
                    append(Delivery(receiver, tx.sender, tx.value, tx.kind, False))
                    continue
                if ctrl_sender[receiver] == n:
                    senders = [
                        grid.coord_of(tx.sender)
                        for tx in honest
                        if grid.are_neighbors(tx.sender, receiver)
                    ]
                    raise ScheduleConflictError(
                        f"honest transmissions collided at receiver "
                        f"{grid.coord_of(receiver)}: senders {senders}"
                    )
                # The adversary owns the collision outcome at this receiver.
                controller = byzantine[ctrl_idx[receiver]]
                if controller.silence_at_collision:
                    continue  # receiver hears nothing and notices nothing
                corrupted += 1
                append(
                    Delivery(
                        receiver,
                        _apparent_sender(controller, receiver, n),
                        controller.value,
                        controller.kind,
                        True,
                    )
                )
            deliveries.corrupted_count = corrupted
            return deliveries
        finally:
            for tx in honest:
                transmitting[tx.sender] = 0
            for tx in byzantine:
                transmitting[tx.sender] = 0
            for receiver in touched:
                heard[receiver] = 0
                ctrl_sender[receiver] = n
            touched.clear()

    # -- reference path ----------------------------------------------------

    def resolve_slot_reference(
        self,
        honest: list[Transmission],
        byzantine: list[BadTransmission],
    ) -> list[Delivery]:
        """Historical dict-based resolver (the fast path's referee).

        Kept verbatim (plus the shared ``spoof_sender`` hygiene) so the
        determinism suite and the benchmark harness can compare the two
        implementations transmission-for-transmission.
        """
        if not honest and not byzantine:
            return []

        transmitting = {tx.sender for tx in honest} | {tx.sender for tx in byzantine}

        heard: dict[NodeId, list[Transmission | BadTransmission]] = {}
        for tx in honest:
            for receiver in self.grid.neighbors(tx.sender):
                if receiver not in transmitting:
                    heard.setdefault(receiver, []).append(tx)
        for tx in byzantine:
            for receiver in self.grid.neighbors(tx.sender):
                if receiver not in transmitting:
                    heard.setdefault(receiver, []).append(tx)

        deliveries: list[Delivery] = []
        for receiver, txs in heard.items():
            if len(txs) == 1:
                tx = txs[0]
                deliveries.append(
                    Delivery(receiver, tx.sender, tx.value, tx.kind, corrupted=False)
                )
                continue
            bad_txs = [tx for tx in txs if isinstance(tx, BadTransmission)]
            if not bad_txs:
                senders = [self.grid.coord_of(tx.sender) for tx in txs]
                raise ScheduleConflictError(
                    f"honest transmissions collided at receiver "
                    f"{self.grid.coord_of(receiver)}: senders {senders}"
                )
            # The adversary owns the collision outcome at this receiver.
            # Deterministic tie-break: the lowest-id Byzantine transmitter
            # involved dictates what the receiver perceives.
            controller = min(bad_txs, key=lambda tx: tx.sender)
            if controller.silence_at_collision:
                continue  # receiver hears nothing and notices nothing
            deliveries.append(
                Delivery(
                    receiver,
                    _apparent_sender(controller, receiver, self.grid.n),
                    controller.value,
                    controller.kind,
                    corrupted=True,
                )
            )
        deliveries.sort(key=lambda d: (d.receiver, d.sender))
        return deliveries


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="slot-resolver",
        flag_module="repro.radio.medium",
        flag_attr="DEFAULT_FAST",
        fast="repro.radio.medium.Medium.resolve_slot",
        reference="repro.radio.medium.Medium.resolve_slot_reference",
        differential_test="tests/test_radio_medium.py",
        fuzz_leg="fast",
        description="CSR flat-buffer slot resolution vs the dict reference",
    )
)
