"""Randomized :class:`~repro.scenario.spec.ScenarioSpec` sampling.

The sampler draws whole scenarios from the component *name registries*
(:mod:`repro.scenario.registries`) — random grids, placements, budgets,
protocols, behaviors, run limits, and seeds — deliberately including the
degenerate shapes the hand-written presets never exercise:

- 1xN bounded stripes (a single row of nodes);
- zero-budget adversaries (``mf = 0``) and zero bad nodes (``t = 0``);
- bad-node densities saturated at the model bound
  ``t = r(2r+1) - 1`` (:func:`repro.analysis.bounds.max_locally_bounded_t`);
- tiny round caps (``max_rounds = 1``) that must stop every protocol
  mid-flight without tripping any accounting invariant.

Sampling is *rejection-based*: a candidate spec is accepted only when
:func:`repro.scenario.runner.validate` proves it runnable (grid
constraints, placement local-boundedness, source not corrupted, model
bounds). That keeps the sampler honest as new components register
themselves — a new placement with new constraints never requires sampler
edits, it just rejects more candidates.

Determinism: :meth:`SpecSampler.case_spec` is a pure function of
``(master_seed, index)`` via :func:`repro.sim.rng.derive_seed`, so a fuzz
run's case list is identical across processes, worker counts, and hosts.
"""

from __future__ import annotations

import random

from repro.adversary.placement import (
    BernoulliPlacement,
    LatticePlacement,
    RandomPlacement,
    StripePlacement,
)
from repro.analysis.bounds import max_locally_bounded_t
from repro.errors import ReproError
from repro.network.grid import GridSpec
from repro.scenario.runner import validate
from repro.scenario.spec import ScenarioSpec
from repro.sim.rng import derive_seed

#: Protocols the sampler draws from by default, with the behaviors each
#: can face. Reactive scenarios need ``mmax`` (integrity-code length) and
#: run long, so their behavior pool is the coded jammer family; the
#: threshold protocols face every generic behavior. ``figure2-defense``
#: is excluded: its jam plan is hardwired to the Figure-2 lattice family.
PROTOCOL_BEHAVIORS: dict[str, tuple[str | None, ...]] = {
    "b": (None, "jam", "lie", "spoof", "none"),
    "koo": (None, "jam", "lie", "none"),
    "heter": (None, "jam", "lie", "none"),
    "cpa": (None, "jam", "lie", "spoof", "none"),
    "reactive": (None, "coded", "none"),
}

#: How many rejected candidates the sampler tolerates before giving up.
#: Rejections are common (a random stripe may cross the source, a random
#: ``t`` may not fit a lattice cluster) but runaway rejection means the
#: sampler and the validators disagree about the spec space — surface it.
MAX_ATTEMPTS = 120


def _sample_grid(rng: random.Random) -> GridSpec:
    """A random topology: torus, bounded rectangle, or degenerate stripe."""
    r = 1 if rng.random() < 0.85 else 2
    side = 2 * r + 1
    shape = rng.random()
    if shape < 0.60:
        # Torus: each dimension a multiple of 2r+1, at least 2*(2r+1).
        width = side * rng.choice((2, 3) if r == 1 else (2,))
        height = side * rng.choice((2, 3) if r == 1 else (2,))
        return GridSpec(width=width, height=height, r=r, torus=True)
    if shape < 0.80:
        # Degenerate bounded stripe: 1xN or Nx1.
        length = rng.randint(2, 24)
        if rng.random() < 0.5:
            return GridSpec(width=length, height=1, r=r, torus=False)
        return GridSpec(width=1, height=length, r=r, torus=False)
    # Small bounded rectangle.
    return GridSpec(
        width=rng.randint(2, 12), height=rng.randint(2, 12), r=r, torus=False
    )


def _sample_t(rng: random.Random, r: int) -> int:
    """Bad-node density: usually small, sometimes saturated at the bound."""
    max_t = max_locally_bounded_t(r)
    roll = rng.random()
    if roll < 0.10:
        return 0
    if roll < 0.22:
        return max_t  # just under the impossibility bound t < r(2r+1)
    return rng.randint(1, min(3, max_t))


def _sample_placement(rng: random.Random, grid: GridSpec, t: int):
    """A placement plausible for (grid, t); validation rejects misfits."""
    side = 2 * grid.r + 1
    seed = rng.randint(0, 10**6)
    if t == 0:
        # RandomPlacement requires t >= 1; with count=0 it corrupts
        # nobody, which is the only locally-0-bounded bad set.
        return RandomPlacement(t=1, count=0, seed=seed)
    roll = rng.random()
    if roll < 0.5:
        count = rng.choice((0, 1, 2, rng.randint(0, max(1, grid.width))))
        return RandomPlacement(t=t, count=count, seed=seed)
    if roll < 0.7 and grid.torus and t <= grid.r * side:
        return StripePlacement(
            y0=rng.randint(1, max(1, grid.height - grid.r)),
            t=t,
            victims_above=rng.random() < 0.5,
        )
    if roll < 0.85 and grid.torus:
        return LatticePlacement(
            x0=rng.randint(0, side - 1),
            y0=rng.randint(1, side - 1),
            cluster=rng.randint(1, t),
        )
    return BernoulliPlacement(p=rng.uniform(0.0, 0.12), seed=seed)


def sample_spec(
    rng: random.Random,
    *,
    protocols: tuple[str, ...] | None = None,
    behavior: str | None | type(...) = ...,
) -> ScenarioSpec:
    """Draw one *valid* scenario; raises after :data:`MAX_ATTEMPTS` rejects.

    ``protocols`` restricts the protocol pool; ``behavior`` pins the
    behavior name (``None`` means "the protocol's default"), which is how
    the capability tests fuzz a single adversary class.
    """
    pool = tuple(protocols) if protocols is not None else tuple(PROTOCOL_BEHAVIORS)
    last_error: Exception | None = None
    for _ in range(MAX_ATTEMPTS):
        protocol = rng.choice(pool)
        grid = _sample_grid(rng)
        t = _sample_t(rng, grid.r)
        mf = rng.randint(0, 4)
        chosen_behavior = (
            rng.choice(PROTOCOL_BEHAVIORS.get(protocol, (None,)))
            if behavior is ...
            else behavior
        )
        behavior_params: dict = {}
        protocol_params: dict = {}
        mmax = None
        if protocol == "reactive":
            mmax = rng.choice((10, 100, 10**4))
            if rng.random() < 0.25:
                protocol_params["quiet_limit"] = rng.randint(2, 12)
            if chosen_behavior == "coded" and rng.random() < 0.3:
                behavior_params["p_forge"] = round(rng.uniform(0.0, 0.4), 3)
        elif protocol == "b" and rng.random() < 0.15:
            protocol_params["relay_override"] = rng.randint(1, 4)
        placement = _sample_placement(rng, grid, t)
        validate_local_bound = not isinstance(placement, BernoulliPlacement)
        roll = rng.random()
        if roll < 0.15:
            max_rounds: int | None = 1  # hard stop mid-flight
        elif roll < 0.75:
            max_rounds = rng.randint(2, 60)
        else:
            max_rounds = None  # the protocol's generous default cap
        source = (0, 0)
        if rng.random() < 0.2:
            source = (
                rng.randrange(grid.width),
                rng.randrange(grid.height),
            )
        protected = None
        try:
            candidate = ScenarioSpec(
                grid=grid,
                t=t,
                mf=mf,
                placement=placement,
                protocol=protocol,
                behavior=chosen_behavior,
                m=None if rng.random() < 0.35 else rng.randint(1, 6),
                mmax=mmax,
                source=source,
                seed=rng.randint(0, 10**6),
                protected=protected,
                max_rounds=max_rounds,
                batch_per_slot=rng.randint(1, 3),
                validate_local_bound=validate_local_bound,
                protocol_params=protocol_params,
                behavior_params=behavior_params,
            )
            grid_live = validate(candidate)
        except ReproError as exc:
            last_error = exc
            continue
        if rng.random() < 0.2 and grid_live.n > 2:
            # Focus the adversary on a random victim subset.
            count = rng.randint(1, max(1, grid_live.n // 4))
            victims = tuple(
                sorted(rng.sample(range(grid_live.n), count))
            )
            candidate = candidate.replace(protected=victims)
        return candidate
    raise ReproError(
        f"spec sampler rejected {MAX_ATTEMPTS} candidates in a row; "
        f"last error: {last_error}"
    )


class SpecSampler:
    """Deterministic per-index scenario sampling for a fuzz run.

    ``case_spec(i)`` depends only on ``(master_seed, i)`` — never on how
    many cases were drawn before, which worker draws it, or wall-clock —
    so a fuzz run's verdicts are reproducible case-by-case.
    """

    def __init__(
        self,
        master_seed: int,
        *,
        protocols: tuple[str, ...] | None = None,
        behavior: str | None | type(...) = ...,
    ) -> None:
        self.master_seed = master_seed
        self.protocols = protocols
        self.behavior = behavior

    def case_spec(self, index: int) -> ScenarioSpec:
        rng = random.Random(derive_seed(self.master_seed, "fuzz-spec", index))
        return sample_spec(
            rng, protocols=self.protocols, behavior=self.behavior
        )
