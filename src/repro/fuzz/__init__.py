"""repro.fuzz — scenario fuzzing and differential verification.

The paper's claims are safety/liveness properties of broadcast under
Byzantine interference; the repository's fast-path PRs additionally
claim bit-identical equivalence between every optimized path and its
preserved reference implementation. This package checks both claims on
*sampled* scenarios instead of hand-written presets:

- :mod:`repro.fuzz.sampler` — deterministic random
  :class:`~repro.scenario.ScenarioSpec` sampling from the component
  registries, degenerate shapes included;
- :mod:`repro.fuzz.runner` — per-case differential execution (all fast
  layers vs all reference layers) plus greedy spec shrinking;
- :mod:`repro.fuzz.oracles` — the pluggable ``Invariant`` registry of
  protocol-independent run oracles;
- :mod:`repro.fuzz.corpus` — minimized JSON repros and their replay;
- :mod:`repro.fuzz.cli` — ``python -m repro fuzz run|replay``.

Typical use::

    python -m repro fuzz run --cases 200 --seed 0 --workers 4
    python -m repro fuzz replay tests/corpus
"""

from repro.fuzz.corpus import ReproRecord, load_repro, replay, repro_paths, write_repro
from repro.fuzz.oracles import (
    Invariant,
    OracleContext,
    check_invariants,
    invariant,
    invariants,
)
from repro.fuzz.runner import (
    CaseResult,
    FuzzCase,
    check_spec,
    compare_reports,
    run_case,
    shrink_candidates,
    shrink_spec,
    validation_probes,
)
from repro.fuzz.sampler import PROTOCOL_BEHAVIORS, SpecSampler, sample_spec

__all__ = [
    "CaseResult",
    "FuzzCase",
    "Invariant",
    "OracleContext",
    "PROTOCOL_BEHAVIORS",
    "ReproRecord",
    "SpecSampler",
    "check_invariants",
    "check_spec",
    "compare_reports",
    "invariant",
    "invariants",
    "load_repro",
    "replay",
    "repro_paths",
    "run_case",
    "sample_spec",
    "shrink_candidates",
    "shrink_spec",
    "validation_probes",
    "write_repro",
]
