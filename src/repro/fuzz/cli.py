"""CLI entry points for ``python -m repro fuzz run|replay``.

``fuzz run`` samples scenarios (fixed count or wall-clock budget), fans
the cases out over the parallel sweep substrate, shrinks and writes any
failures to the corpus directory, and prints a deterministic digest of
``(case hash, verdict)`` pairs — two runs with the same ``--seed`` and
``--cases`` print the same digest whatever ``--workers`` is, which is
how CI (and a suspicious human) can verify determinism cheaply.

``fuzz replay`` re-executes repro documents (files or corpus
directories) through the same checks; exit status is the number of
still-failing repros, capped for shell safety.
"""

from __future__ import annotations

import hashlib
import time

from repro.fuzz.corpus import replay, write_repro
from repro.fuzz.runner import (
    CaseResult,
    FuzzCase,
    check_spec,
    run_case,
    shrink_spec,
    validation_probes,
)
from repro.fuzz.sampler import SpecSampler
from repro.runner.parallel import SweepProgress, sweep

#: At most this many failing cases are shrunk/written per run — shrinking
#: re-runs scenarios dozens of times, and one root cause usually explains
#: a whole cluster of failing cases.
MAX_SHRINKS = 5

#: First sweep batch in ``--time-budget`` mode; later batches scale to
#: the measured case rate (a spawn worker pool is rebuilt per batch, so
#: many tiny batches would spend the budget on interpreter startup).
TIME_BUDGET_CHUNK = 16

#: Ceiling on one adaptive batch (bounds budget overshoot).
TIME_BUDGET_MAX_CHUNK = 1024


def _digest(results: list[CaseResult]) -> str:
    """Stable digest over (case hash, verdict) in case order."""
    hasher = hashlib.sha256()
    for result in sorted(results, key=lambda r: r.index):
        verdict = "ok" if result.ok else "fail"
        hasher.update(f"{result.index}:{result.case_hash}:{verdict}\n".encode())
    return hasher.hexdigest()[:16]


def _report_failures(
    cases: dict[int, FuzzCase],
    results: list[CaseResult],
    corpus_dir: str,
) -> int:
    """Shrink + persist failing cases; returns how many cases failed."""
    failing = [result for result in results if not result.ok]
    for result in failing[:MAX_SHRINKS]:
        case = cases[result.index]
        print(f"-- case {result.index} [{result.case_hash[:12]}] FAILED --")
        for message in result.failures:
            print(f"   {message}")
        shrunk, shrunk_failures = shrink_spec(
            case.spec, list(result.failures), check=check_spec
        )
        path = write_repro(
            corpus_dir, shrunk, shrunk_failures, original=case.spec
        )
        print(
            f"   minimized to {shrunk.grid.width}x{shrunk.grid.height} "
            f"grid, repro written to {path}"
        )
    if len(failing) > MAX_SHRINKS:
        print(
            f"-- {len(failing) - MAX_SHRINKS} further failing case(s) "
            "not shrunk (one root cause usually explains a cluster) --"
        )
    return len(failing)


def fuzz_run_command(
    *,
    cases: int | None,
    time_budget: float | None,
    seed: int,
    workers: int,
    corpus_dir: str,
    show_progress: bool = True,
) -> int:
    """``python -m repro fuzz run``; returns the process exit status."""
    if (cases is None) == (time_budget is None):
        print("error: pass exactly one of --cases or --time-budget")
        return 2
    probe_failures = validation_probes()
    for message in probe_failures:
        print(f"-- validation probe FAILED: {message}")

    sampler = SpecSampler(seed)
    progress = SweepProgress("fuzz") if show_progress else None
    started = time.perf_counter()
    case_index = 0
    all_cases: dict[int, FuzzCase] = {}
    results: list[CaseResult] = []

    def run_batch(count: int) -> None:
        nonlocal case_index
        batch = [
            FuzzCase(index=i, spec=sampler.case_spec(i))
            for i in range(case_index, case_index + count)
        ]
        case_index += count
        for case in batch:
            all_cases[case.index] = case
        outcome = sweep(batch, run_case, workers=workers, progress=progress)
        results.extend(outcome.results)

    if cases is not None:
        run_batch(cases)
    else:
        while True:
            elapsed = time.perf_counter() - started
            remaining = time_budget - elapsed
            if remaining <= 0:
                break
            if results and elapsed > 0:
                # Size the batch to roughly half the remaining budget at
                # the measured rate: few enough batches that per-batch
                # pool spawns stay negligible, small enough that the
                # last batch cannot badly overshoot the budget.
                rate = len(results) / elapsed
                count = int(rate * remaining / 2)
                count = max(TIME_BUDGET_CHUNK, min(count, TIME_BUDGET_MAX_CHUNK))
            else:
                count = TIME_BUDGET_CHUNK
            run_batch(count)

    elapsed = time.perf_counter() - started
    failed = _report_failures(all_cases, results, corpus_dir)
    ok = len(results) - failed
    print(
        f"fuzz: {len(results)} case(s), {ok} ok, {failed} failing, "
        f"{len(probe_failures)} probe failure(s) in {elapsed:.1f}s "
        f"[seed {seed}, digest {_digest(results)}]"
    )
    return 1 if failed or probe_failures else 0


def fuzz_replay_command(targets: list[str]) -> int:
    """``python -m repro fuzz replay``; exit = failing repro count (<=99)."""
    results = replay(targets)
    if not results:
        print("no repro files found")
        return 2
    failing = 0
    for path, failures in results:
        if failures:
            failing += 1
            print(f"{path}: FAIL")
            for message in failures:
                print(f"   {message}")
        else:
            print(f"{path}: ok")
    print(f"replay: {len(results)} repro(s), {failing} failing")
    return min(failing, 99)
