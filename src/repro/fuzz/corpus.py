"""Failure corpus: minimized repros as standalone JSON files.

When a fuzz case fails, the shrunk spec and its failure messages are
written to a corpus directory as one self-contained JSON document. The
file re-executes with ``python -m repro fuzz replay <file-or-dir>``,
which re-runs the full differential + oracle check suite on the embedded
spec — red while the bug lives, green once fixed.

A fixed bug's repro belongs in ``tests/corpus/``: CI replays that
directory on every push, so the scenario that found the bug becomes a
permanent regression test (see README "Fuzzing").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.fuzz.runner import check_spec
from repro.scenario.spec import ScenarioSpec

#: Schema version of a repro document.
FORMAT = 1


@dataclass(frozen=True)
class ReproRecord:
    """One loaded corpus entry."""

    path: Path
    spec: ScenarioSpec
    failures: tuple[str, ...]
    original: ScenarioSpec | None = None


def write_repro(
    directory: str | Path,
    spec: ScenarioSpec,
    failures: list[str],
    *,
    original: ScenarioSpec | None = None,
) -> Path:
    """Write one minimized repro; returns its path.

    The filename is derived from the spec's content hash, so re-finding
    the same minimized scenario overwrites rather than duplicates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, Any] = {
        "format": FORMAT,
        "case": spec.content_hash(),
        "failures": list(failures),
        "spec": spec.to_dict(),
    }
    if original is not None and original != spec:
        payload["original"] = original.to_dict()
    path = directory / f"repro-{spec.content_hash()[:12]}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path


def load_repro(path: str | Path) -> ReproRecord:
    """Parse one repro document (errors name the offending file)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"unreadable repro {path}: {exc}") from None
    if not isinstance(payload, dict) or "spec" not in payload:
        raise ConfigurationError(
            f"repro {path} is not an object with a 'spec' key"
        )
    spec = ScenarioSpec.from_dict(payload["spec"])
    original = (
        ScenarioSpec.from_dict(payload["original"])
        if "original" in payload
        else None
    )
    return ReproRecord(
        path=path,
        spec=spec,
        failures=tuple(payload.get("failures", ())),
        original=original,
    )


def repro_paths(target: str | Path) -> list[Path]:
    """Resolve a replay target: one file, or every ``*.json`` in a dir."""
    target = Path(target)
    if target.is_dir():
        return sorted(target.glob("*.json"))
    if target.is_file():
        return [target]
    raise ConfigurationError(f"no repro file or corpus directory at {target}")


def replay(
    targets: list[str | Path],
    *,
    check: Callable[[ScenarioSpec], list[str]] = check_spec,
) -> list[tuple[Path, list[str]]]:
    """Re-execute every repro; returns ``(path, current failures)`` pairs.

    A committed (fixed-bug) corpus replays to all-empty failure lists; a
    fresh failure's repro keeps failing until the bug is fixed.
    """
    results: list[tuple[Path, list[str]]] = []
    for target in targets:
        for path in repro_paths(target):
            record = load_repro(path)
            results.append((path, check(record.spec)))
    return results
