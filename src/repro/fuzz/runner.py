"""Differential case execution for the fuzz subsystem.

One fuzz *case* runs a sampled :class:`~repro.scenario.spec.ScenarioSpec`
twice — once with every fast-path layer enabled (batched round driver,
flat protocol engines, fast slot resolver, warm world) and once with all
of them forced onto the historical reference implementations — and then:

1. asserts the two :class:`~repro.runner.report.BroadcastReport` objects
   are identical in every observable (outcome, costs, statistics, and
   the per-node protocol state the reference implementations maintain);
2. checks every applicable :mod:`repro.fuzz.oracles` invariant on *both*
   reports.

When NumPy is installed a third leg runs with the whole-grid vectorized
kernel enabled (:mod:`repro.protocols.vectorized`) and is compared
against the reference report the same way — every sampled case then
cross-checks vectorized vs flat vs reference.

A deterministic slice of cases (selected by content hash, so the CI
digest repeats across worker counts) additionally runs a **chaos leg**:
the same spec swept repeatedly over a throwaway result cache with a
fixed :class:`repro.chaos.FaultPlan` armed (a failed cache store, then a
truncated cache entry), asserting every recovery path still produces the
fault-free bytes.

Any violation is a *failure*: the case's spec is greedily shrunk
(:func:`shrink_spec`) toward a smaller scenario that still fails, which
the corpus layer writes out as a replayable JSON repro.

Cases are picklable (:class:`FuzzCase`) and executed by a module-level
function (:func:`run_case`), so fuzzing rides
:func:`repro.runner.parallel.sweep` — workers, progress, determinism —
exactly like every other workload in this repository.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import repro.protocols.vectorized as vectorized
import repro.scenario.runner as scenario_runner
import repro.seams as seams
from repro.adversary.placement import BernoulliPlacement, RandomPlacement
from repro.chaos import inject as chaos_inject
from repro.chaos.plan import Fault, FaultPlan
from repro.errors import ConfigurationError, ReproError
from repro.fuzz.oracles import OracleContext, check_invariants
from repro.network.grid import GridSpec
from repro.runner.parallel import ResultCache, encode_result
from repro.runner.parallel import sweep as cache_sweep
from repro.scenario.runner import run as run_scenario
from repro.scenario.runner import validate
from repro.scenario.spec import ScenarioSpec

def _mode_flags() -> list[tuple[Any, Any]]:
    """(seam, flag module) pairs for every registered fast/reference seam.

    The flag list used to be hard-coded here; it now comes from
    :mod:`repro.seams`, so a newly registered seam is exercised by every
    fuzz case automatically — and a seam that registers *without* a fuzz
    leg aborts the run loudly (see :func:`repro.seams.fuzz_flags`)
    instead of silently escaping the differential net.
    """
    return list(seams.fuzz_flags())


def _run_mode(spec: ScenarioSpec, *, fast: bool, vector: bool = False):
    """Run ``spec`` with all fast-path layers forced on or off.

    ``vector=True`` (implies ``fast``) additionally enables the
    ``fuzz_leg="vector"`` seams (the NumPy whole-grid kernel) — which
    engage only for eligible specs, so a vector-mode report may still
    come from the flat engine; callers that need to know check
    ``isinstance(report.nodes, vectorized.LazyNodeMap)``. Plain fast
    runs keep vector seams *off* so the flat engines stay under test.

    Returns ``(report, medium)``; the medium is only captured for warm
    fast runs (it feeds the delivery-batch immutability oracle).
    """
    flags = _mode_flags()
    saved = [getattr(module, seam.flag_attr) for seam, module in flags]
    for seam, module in flags:
        value = fast if seam.fuzz_leg == "fast" else fast and vector
        setattr(module, seam.flag_attr, value)
    try:
        report = run_scenario(spec)
        medium = scenario_runner._world_for(spec)[2] if fast else None
        return report, medium
    finally:
        for (seam, module), value in zip(flags, saved):
            setattr(module, seam.flag_attr, value)


# -- report comparison ---------------------------------------------------------


def compare_reports(fast: Any, reference: Any) -> list[str]:
    """Describe every observable difference between two runs of one spec.

    The byte-identical contract of the fast-path PRs, as data instead of
    assertions: an empty list means the reports agree on outcome, costs,
    statistics, and per-node protocol state (decision plus whichever of
    ``received_total`` / ``value_counts`` / ``endorsements`` the node
    class maintains).
    """
    failures: list[str] = []
    if fast.outcome != reference.outcome:
        failures.append(
            f"outcome differs: fast={fast.outcome} reference={reference.outcome}"
        )
    if fast.costs != reference.costs:
        failures.append(
            f"costs differ: fast={fast.costs} reference={reference.costs}"
        )
    if fast.stats != reference.stats:
        failures.append(
            f"stats differ: fast={fast.stats} reference={reference.stats}"
        )
    for nid, ref_node in reference.nodes.items():
        node = fast.nodes[nid]
        for attr in ("decided", "accepted_value", "decide_round"):
            if getattr(node, attr) != getattr(ref_node, attr):
                failures.append(
                    f"node {nid} {attr} differs: fast="
                    f"{getattr(node, attr)!r} reference={getattr(ref_node, attr)!r}"
                )
        if hasattr(ref_node, "received_total") and (
            node.received_total != ref_node.received_total
        ):
            failures.append(
                f"node {nid} received_total differs: "
                f"fast={node.received_total} reference={ref_node.received_total}"
            )
        if hasattr(ref_node, "value_counts") and (
            node.value_counts != ref_node.value_counts
        ):
            failures.append(f"node {nid} value_counts differ")
        if hasattr(ref_node, "endorsements") and (
            dict(node.endorsements) != dict(ref_node.endorsements)
        ):
            failures.append(f"node {nid} endorsements differ")
        if len(failures) >= 8:
            failures.append("... (further node differences suppressed)")
            break
    return failures


#: One in this many cases (chosen by content hash, not randomness, so
#: the fixed-seed CI digest is identical for any worker count) also runs
#: the chaos leg.
_CHAOS_GATE = 8

#: The fixed chaos-leg schedule: a failed store, then a mangled entry.
_CHAOS_PLAN = FaultPlan(
    seed=0,
    faults=(
        Fault(kind="cache-write-fail", mode="enospc"),
        Fault(kind="cache-corrupt", mode="truncate"),
    ),
)


def _chaos_gated(spec: ScenarioSpec) -> bool:
    return int(spec.content_hash()[:2], 16) % _CHAOS_GATE == 0


def _result_bytes(outcome: Any) -> bytes:
    return json.dumps(
        encode_result(outcome), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _chaos_probe(spec: ScenarioSpec) -> list[str]:
    """Chaos leg: cached sweeps under injected cache faults stay byte-stable.

    Four sweeps of the same point over one throwaway cache walk every
    cache recovery path in order — store fails (ENOSPC), store lands,
    entry found truncated (recompute + overwrite), clean cache hit — and
    each one must serialize to the fault-free golden bytes.
    """
    golden = _result_bytes(scenario_runner.run_summary(spec))
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-chaos-") as cache_dir:
        cache = ResultCache(cache_dir, namespace="scenario")
        with chaos_inject.armed(_CHAOS_PLAN):
            for attempt in range(4):
                result = cache_sweep(
                    [spec], scenario_runner.run_summary, workers=1, cache=cache
                )
                got = _result_bytes(result.results[0])
                if got != golden:
                    failures.append(
                        f"[chaos] sweep attempt {attempt} under "
                        f"{_CHAOS_PLAN.describe()} diverged from the "
                        "fault-free bytes"
                    )
        if cache.stats.recovered < 1:
            failures.append(
                "[chaos] the corrupted cache entry was never detected and "
                "recovered (ResultCache.stats.recovered stayed 0)"
            )
    return failures


def check_spec(spec: ScenarioSpec) -> list[str]:
    """All failures of one spec: differential mismatches + oracle hits."""
    # Fresh warm-world caches per case: the fast run still exercises the
    # warm path *within* its own run, but the medium the immutability
    # oracle inspects holds only this case's memoized batches — a
    # mutation found here is this spec's doing, so the shrunk repro
    # reproduces in a cold process (the corpus replay contract).
    scenario_runner._GRIDS.clear()
    scenario_runner._MEDIA.clear()
    scenario_runner._TABLES.clear()
    try:
        fast_report, medium = _run_mode(spec, fast=True)
    except Exception as exc:  # a crash is itself a finding
        return [f"[fast] run raised {type(exc).__name__}: {exc}"]
    try:
        reference_report, _ = _run_mode(spec, fast=False)
    except Exception as exc:
        return [f"[reference] run raised {type(exc).__name__}: {exc}"]
    failures = compare_reports(fast_report, reference_report)
    failures.extend(
        check_invariants(
            OracleContext(spec=spec, report=fast_report, medium=medium, mode="fast")
        )
    )
    failures.extend(
        check_invariants(
            OracleContext(spec=spec, report=reference_report, mode="reference")
        )
    )
    # Third leg of the differential: the NumPy whole-grid kernel. For
    # kernel-ineligible specs this replays the flat path (still a valid
    # determinism check); eligible ones cross-check the kernel proper.
    if vectorized.available():
        try:
            vector_report, vector_medium = _run_mode(spec, fast=True, vector=True)
        except Exception as exc:
            failures.append(f"[vector] run raised {type(exc).__name__}: {exc}")
            return failures
        failures.extend(
            f"[vector] {message}"
            for message in compare_reports(vector_report, reference_report)
        )
        failures.extend(
            check_invariants(
                OracleContext(
                    spec=spec,
                    report=vector_report,
                    medium=vector_medium,
                    mode="vector",
                )
            )
        )
    # Chaos leg on a deterministic slice of healthy cases: differential
    # findings above stay unpolluted by injected-fault noise.
    if not failures and _chaos_gated(spec):
        failures.extend(_chaos_probe(spec))
    return failures


# -- the sweep point -----------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """One picklable fuzz point: a case index plus its sampled spec."""

    index: int
    spec: ScenarioSpec

    def __canonical_json__(self) -> dict:
        return {"index": self.index, "spec": self.spec.to_dict()}


@dataclass(frozen=True)
class CaseResult:
    """Flat, picklable verdict of one fuzz case."""

    index: int
    case_hash: str
    failures: tuple[str, ...]
    rounds: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_case(case: FuzzCase) -> CaseResult:
    """Execute one fuzz case (module-level: spawn-worker safe)."""
    failures = check_spec(case.spec)
    return CaseResult(
        index=case.index,
        case_hash=case.spec.content_hash(),
        failures=tuple(failures),
    )


# -- shrinking -----------------------------------------------------------------


def _shrunk_grids(grid: GridSpec) -> Iterator[GridSpec]:
    side = 2 * grid.r + 1
    if grid.torus:
        for width, height in (
            (max(2 * side, side * (grid.width // side // 2)),
             max(2 * side, side * (grid.height // side // 2))),
            (2 * side, grid.height),
            (grid.width, 2 * side),
        ):
            if (width, height) != (grid.width, grid.height):
                yield GridSpec(width=width, height=height, r=grid.r, torus=True)
    else:
        for width, height in (
            (max(1, grid.width // 2), max(1, grid.height // 2)),
            (max(1, grid.width // 2), grid.height),
            (grid.width, max(1, grid.height // 2)),
        ):
            if (width, height) != (grid.width, grid.height):
                yield GridSpec(width=width, height=height, r=grid.r, torus=False)


def shrink_candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Simpler variants of ``spec``, most aggressive reductions first.

    Candidates may be invalid (a halved grid can orphan a stripe) — the
    shrink loop validates before re-running, so this generator only has
    to be *plausible*, not correct.
    """
    for grid in _shrunk_grids(spec.grid):
        yield spec.replace(grid=grid)
    placement = spec.placement
    if isinstance(placement, RandomPlacement) and placement.count > 0:
        yield spec.replace(
            placement=RandomPlacement(
                t=placement.t, count=placement.count // 2, seed=placement.seed
            )
        )
    if isinstance(placement, BernoulliPlacement) and placement.p > 0.01:
        yield spec.replace(
            placement=BernoulliPlacement(p=placement.p / 2, seed=placement.seed)
        )
    if spec.max_rounds is None:
        yield spec.replace(max_rounds=30)
    elif spec.max_rounds > 1:
        yield spec.replace(max_rounds=max(1, spec.max_rounds // 2))
    if spec.mf > 0:
        yield spec.replace(mf=spec.mf // 2)
    if spec.m is not None and spec.m > 1:
        yield spec.replace(m=spec.m // 2)
    if spec.mmax is not None and spec.mmax > 10:
        yield spec.replace(mmax=10)
    if spec.batch_per_slot > 1:
        yield spec.replace(batch_per_slot=1)
    if spec.protected is not None:
        yield spec.replace(protected=None)
    if spec.behavior_params:
        yield spec.replace(behavior_params={})
    if spec.protocol_params:
        yield spec.replace(protocol_params={})


def shrink_spec(
    spec: ScenarioSpec,
    failures: list[str],
    *,
    check: Callable[[ScenarioSpec], list[str]] = check_spec,
    max_attempts: int = 40,
) -> tuple[ScenarioSpec, list[str]]:
    """Greedily minimize a failing spec while it keeps failing.

    Each round tries the candidates of :func:`shrink_candidates` in
    order; the first candidate that still fails becomes the new current
    spec. Stops at a fixpoint (no candidate fails) or after
    ``max_attempts`` re-runs. Returns the minimized spec and its
    failures — always a failing pair (at worst the input itself).
    """
    current, current_failures = spec, list(failures)
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in shrink_candidates(current):
            if attempts >= max_attempts:
                break
            try:
                validate(candidate)
            except ReproError:
                continue
            attempts += 1
            candidate_failures = check(candidate)
            if candidate_failures:
                current, current_failures = candidate, candidate_failures
                progressed = True
                break
    return current, current_failures


# -- validation probes ---------------------------------------------------------


def validation_probes() -> list[str]:
    """Once-per-run checks that *invalid* configurations fail loudly.

    The sampler only emits valid specs, so the rejection edges — bad-node
    density at/over the model bound ``t < r(2r+1)``, unknown scenario
    keys — are probed explicitly here instead.
    """
    failures: list[str] = []
    grid = GridSpec(width=9, height=9, r=1, torus=True)
    placement = RandomPlacement(t=1, count=0, seed=0)
    try:
        # t == r(2r+1) is one past the largest admissible density.
        ScenarioSpec(grid=grid, t=3, mf=1, placement=placement)
    except ConfigurationError:
        pass
    else:
        failures.append("over-bound t = r(2r+1) was not rejected")
    try:
        ScenarioSpec(grid=grid, t=1, mf=1, placement=placement, max_rounds=0)
    except ConfigurationError:
        pass
    else:
        failures.append("max_rounds=0 was not rejected")
    probe = ScenarioSpec(grid=grid, t=1, mf=1, placement=placement)
    payload = probe.to_dict()
    payload["behaviour"] = "jam"
    try:
        ScenarioSpec.from_dict(payload)
    except ConfigurationError as exc:
        if "behavior" not in str(exc):
            failures.append(
                f"unknown-key error does not name the expected field: {exc}"
            )
    else:
        failures.append("unknown scenario key 'behaviour' was not rejected")
    return failures
