"""Protocol-independent run oracles, as a pluggable ``Invariant`` registry.

Each :class:`Invariant` is a named predicate over a finished run: it sees
an :class:`OracleContext` (the spec, the live
:class:`~repro.runner.report.BroadcastReport`, and — when the run used
the warm fast path — the :class:`~repro.radio.medium.Medium`) and returns
``None`` when satisfied or a human-readable violation message. The fuzz
runner checks every *applicable* invariant on every case, on both the
fast-path and the reference-path reports.

Invariants register themselves into :data:`invariants` (the same
:class:`~repro.scenario.registries.Registry` machinery protocols and
behaviors use), so a new protocol family can ship its own oracles without
touching this module::

    from repro.fuzz.oracles import OracleContext, invariant

    @invariant("my-protocol-rule", applies=lambda spec: spec.protocol == "mine")
    def _check(ctx: OracleContext) -> str | None:
        ...

The bundled set covers the paper's safety claims (validity and agreement
under the locally-bounded, message-bounded adversary — Lemma 1 makes the
acceptance threshold ``t*mf + 1`` unreachable by wrong values for the
threshold protocols), the run-limit contract (nothing decides after the
round cap), conservation between the driver's statistics and the budget
ledger, delivery geometry, and the immutability contract on memoized
:class:`~repro.radio.medium.DeliveryBatch` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.radio.medium import DeliveryBatch, Medium
from repro.scenario.registries import Registry
from repro.scenario.spec import ScenarioSpec

#: Protocols whose acceptance rule is the ``t*mf + 1`` copy threshold.
#: For them Lemma 1 gives unconditional safety: a receiver hears at most
#: ``t * mf`` wrong copies (``t`` bad nodes per neighborhood, ``mf``
#: messages each), so wrong decisions are impossible whatever the
#: adversary does — the strongest protocol-independent oracle we have.
THRESHOLD_PROTOCOLS = frozenset({"b", "koo", "heter"})


@dataclass(frozen=True)
class OracleContext:
    """Everything an invariant may inspect about one finished run.

    Attributes:
        spec: the scenario that ran.
        report: the live :class:`~repro.runner.report.BroadcastReport`.
        medium: the run's :class:`~repro.radio.medium.Medium` when the
            caller has it (fast-path runs via the warm world); ``None``
            otherwise — medium-dependent invariants skip silently.
        mode: ``"fast"`` or ``"reference"`` (labels failure messages).
    """

    spec: ScenarioSpec
    report: Any
    medium: Medium | None = None
    mode: str = "fast"


@dataclass(frozen=True)
class Invariant:
    """One named run oracle."""

    name: str
    check: Callable[[OracleContext], str | None]
    applies: Callable[[ScenarioSpec], bool]
    description: str = ""


invariants: Registry[Invariant] = Registry("invariant")


def invariant(
    name: str,
    *,
    applies: Callable[[ScenarioSpec], bool] = lambda spec: True,
    description: str = "",
) -> Callable[[Callable[[OracleContext], str | None]], Callable]:
    """Decorator registering a check function as a named invariant."""

    def decorate(check: Callable[[OracleContext], str | None]) -> Callable:
        invariants.register(
            name,
            Invariant(
                name=name, check=check, applies=applies, description=description
            ),
        )
        return check

    return decorate


def check_invariants(ctx: OracleContext) -> list[str]:
    """Run every applicable invariant; collect violations as messages."""
    failures: list[str] = []
    for name in invariants.names():
        inv = invariants.get(name)
        if not inv.applies(ctx.spec):
            continue
        message = inv.check(ctx)
        if message is not None:
            failures.append(f"[{ctx.mode}] {name}: {message}")
    return failures


# -- bundled invariants --------------------------------------------------------


def _threshold_safe(spec: ScenarioSpec) -> bool:
    """Lemma 1 applies: threshold acceptance + locally-bounded bad set."""
    return spec.protocol in THRESHOLD_PROTOCOLS and spec.validate_local_bound


def _decided_good(report: Any) -> list[tuple[int, Any]]:
    """(node id, node) for every decided good non-source node."""
    table = report.table
    return [
        (nid, report.nodes[nid])
        for nid in table.good_ids
        if nid != table.source and report.nodes[nid].decided
    ]


@invariant(
    "validity",
    applies=_threshold_safe,
    description="no good node ever decides a value other than vtrue "
    "(Lemma 1: wrong copies cannot reach t*mf + 1)",
)
def _check_validity(ctx: OracleContext) -> str | None:
    wrong = [
        (nid, node.accepted_value)
        for nid, node in _decided_good(ctx.report)
        if node.accepted_value != ctx.spec.vtrue
    ]
    if wrong:
        return f"good nodes decided wrong values: {wrong[:5]}"
    return None


@invariant(
    "agreement",
    applies=_threshold_safe,
    description="all decided good nodes agree on one value",
)
def _check_agreement(ctx: OracleContext) -> str | None:
    values = {node.accepted_value for _, node in _decided_good(ctx.report)}
    if len(values) > 1:
        return f"decided good nodes disagree: {sorted(map(repr, values))}"
    return None


@invariant(
    "round-cap",
    description="the run respects max_rounds and no node decides after "
    "the final round",
)
def _check_round_cap(ctx: OracleContext) -> str | None:
    stats = ctx.report.stats
    cap = ctx.spec.max_rounds
    if cap is not None and stats.rounds > cap:
        return f"ran {stats.rounds} rounds past the cap {cap}"
    for nid, node in _decided_good(ctx.report):
        decide_round = node.decide_round
        if decide_round is None:
            return f"node {nid} decided without a decide_round"
        if not 0 <= decide_round <= stats.rounds:
            return (
                f"node {nid} decided at round {decide_round} outside the "
                f"run's {stats.rounds} rounds"
            )
    return None


@invariant(
    "budget-conservation",
    description="driver statistics and the budget ledger agree, and no "
    "node exceeds its budget",
)
def _check_budget_conservation(ctx: OracleContext) -> str | None:
    report = ctx.report
    ledger = report.ledger
    table = report.table
    honest_sent = sum(ledger.sent(nid) for nid in table.good_ids)
    bad_sent = sum(ledger.sent(nid) for nid in table.bad_ids)
    if report.stats.honest_transmissions != honest_sent:
        return (
            f"stats count {report.stats.honest_transmissions} honest "
            f"transmissions but the ledger charged {honest_sent}"
        )
    if report.stats.byzantine_transmissions != bad_sent:
        return (
            f"stats count {report.stats.byzantine_transmissions} byzantine "
            f"transmissions but the ledger charged {bad_sent}"
        )
    if report.costs.bad_total != bad_sent:
        return f"costs.bad_total {report.costs.bad_total} != ledger {bad_sent}"
    for nid in range(ledger.n):
        budget = ledger.budget_of(nid)
        if budget is not None and ledger.sent(nid) > budget:
            return f"node {nid} sent {ledger.sent(nid)} with budget {budget}"
    for bad in table.bad_ids:
        budget = ledger.budget_of(bad)
        if budget is None or budget > ctx.spec.mf:
            return f"bad node {bad} holds budget {budget!r} above mf={ctx.spec.mf}"
    return None


@invariant(
    "delivery-geometry",
    description="deliveries are bounded by transmissions x neighborhood "
    "size; corrupted deliveries by total deliveries",
)
def _check_delivery_geometry(ctx: OracleContext) -> str | None:
    stats = ctx.report.stats
    neighborhood = ctx.report.grid.spec.neighborhood_size
    total_tx = stats.honest_transmissions + stats.byzantine_transmissions
    if stats.deliveries > total_tx * neighborhood:
        return (
            f"{stats.deliveries} deliveries from {total_tx} transmissions "
            f"with neighborhoods of {neighborhood}"
        )
    if stats.corrupted_deliveries > stats.deliveries:
        return (
            f"{stats.corrupted_deliveries} corrupted of "
            f"{stats.deliveries} total deliveries"
        )
    return None


@invariant(
    "decision-consistency",
    description="decided/accepted_value/decide_round move together",
)
def _check_decision_consistency(ctx: OracleContext) -> str | None:
    table = ctx.report.table
    for nid in table.good_ids:
        node = ctx.report.nodes[nid]
        if node.decided and node.accepted_value is None:
            return f"node {nid} decided with no accepted value"
        if not node.decided and node.decide_round is not None:
            return f"undecided node {nid} carries decide_round {node.decide_round}"
    return None


@invariant(
    "delivery-batch-immutable",
    description="memoized DeliveryBatch objects still satisfy their own "
    "corrupted_count (a consumer mutating resolver output corrupts the memo)",
)
def _check_batch_immutability(ctx: OracleContext) -> str | None:
    medium = ctx.medium
    if medium is None:
        return None
    batches: list[DeliveryBatch] = list(medium._slot_memo.values())
    for cached_round in medium._round_memo.values():
        for slot_batches in cached_round:
            batches.extend(slot_batches)
    for batch in batches:
        if not isinstance(batch, DeliveryBatch):
            return f"memo holds a non-DeliveryBatch {type(batch).__name__}"
        recount = sum(1 for d in batch if d.corrupted)
        if recount != batch.corrupted_count:
            return (
                f"a memoized batch claims corrupted_count="
                f"{batch.corrupted_count} but holds {recount} corrupted "
                "deliveries — resolver output was mutated"
            )
    return None
