"""Runtime registry of fast/reference implementation seams.

Every performance PR in this repository follows the same contract: the
optimized path keeps its historical implementation alive as a *reference
twin*, selected by a module-level boolean flag (``DEFAULT_FAST``,
``DEFAULT_FLAT``, ...), and a differential test suite pins the two
byte-identical. That contract used to live only in prose (ROADMAP
"Standing rules") and in a hard-coded flag list inside
:mod:`repro.fuzz.runner`. This module makes it a first-class runtime
object: each seam-owning module registers a :class:`Seam` record at its
bottom (the same self-registration idiom as
:mod:`repro.scenario.registries`), and

- :mod:`repro.fuzz` flips *registered* seams — a new fast path is fuzzed
  differentially the moment it registers, and a seam that registers
  without declaring a fuzz leg fails the next fuzz run loudly;
- the static analyzer (``python -m repro check``) verifies every
  module defining a ``DEFAULT_*`` engine flag registers a seam (RPR101)
  and that each registered seam's differential test exists (RPR102).

This module is deliberately a leaf (stdlib + :mod:`repro.errors` only)
so seam sites can import it without cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: The fuzz legs a seam may declare. ``"fast"`` seams are switched on in
#: the fast leg and off in the reference leg of a differential run;
#: ``"vector"`` seams only engage in the third, vectorized leg (and stay
#: off in plain fast mode so the layer beneath them remains under test).
FUZZ_LEGS = ("fast", "vector")


@dataclass(frozen=True)
class Seam:
    """One fast/reference implementation pair behind a boolean flag.

    Attributes:
        name: stable registry key (``"slot-resolver"``).
        flag_module: dotted module owning the selection flag.
        flag_attr: the module-level boolean attribute (``"DEFAULT_FAST"``).
        fast: dotted path of the optimized implementation.
        reference: dotted path of its byte-identical reference twin.
        differential_test: repo-relative test file pinning the pair
            (the static analyzer verifies it exists and names the seam).
        fuzz_leg: ``"fast"`` or ``"vector"`` — how :mod:`repro.fuzz`
            drives this seam. ``None`` means "not wired into fuzz yet",
            which the fuzz runner treats as a hard error: a seam must
            not exist outside the differential net.
        description: one line for humans.
    """

    name: str
    flag_module: str
    flag_attr: str
    fast: str
    reference: str
    differential_test: str
    fuzz_leg: str | None = "fast"
    description: str = ""

    def __post_init__(self) -> None:
        for field_name in (
            "name",
            "flag_module",
            "flag_attr",
            "fast",
            "reference",
            "differential_test",
        ):
            if not getattr(self, field_name):
                raise ConfigurationError(
                    f"seam field {field_name!r} must be non-empty"
                )
        if self.fuzz_leg is not None and self.fuzz_leg not in FUZZ_LEGS:
            raise ConfigurationError(
                f"seam {self.name!r} declares unknown fuzz leg "
                f"{self.fuzz_leg!r}; known: {', '.join(FUZZ_LEGS)}"
            )

    def resolve_flag_module(self) -> Any:
        """Import and return the module holding this seam's flag.

        Fails with a self-describing error when the flag attribute has
        been renamed out from under the registration.
        """
        module = importlib.import_module(self.flag_module)
        if not hasattr(module, self.flag_attr):
            raise ConfigurationError(
                f"seam {self.name!r} points at "
                f"{self.flag_module}.{self.flag_attr}, which does not exist"
            )
        return module

    def current(self) -> bool:
        """The flag's current value."""
        return bool(getattr(self.resolve_flag_module(), self.flag_attr))


_SEAMS: dict[str, Seam] = {}


def register(seam: Seam) -> Seam:
    """Register a seam; duplicate names are rejected."""
    if seam.name in _SEAMS:
        raise ConfigurationError(f"seam {seam.name!r} is already registered")
    _SEAMS[seam.name] = seam
    return seam


def get(name: str) -> Seam:
    """Look a seam up; unknown names fail with the known set."""
    try:
        return _SEAMS[name]
    except KeyError:
        known = ", ".join(sorted(_SEAMS)) or "(none)"
        raise ConfigurationError(
            f"unknown seam {name!r}; registered: {known}"
        ) from None


def unregister(name: str) -> Seam:
    """Remove and return a registered seam (test doubles only)."""
    try:
        return _SEAMS.pop(name)
    except KeyError:
        raise ConfigurationError(f"seam {name!r} is not registered") from None


def names() -> tuple[str, ...]:
    return tuple(sorted(_SEAMS))


def all_seams() -> tuple[Seam, ...]:
    """Every registered seam, in stable (name-sorted) order.

    Callers that need the full set must import the seam-site modules
    first; :func:`load_seam_sites` does exactly that.
    """
    return tuple(_SEAMS[name] for name in sorted(_SEAMS))


#: The modules that register seams at import time. Kept as data so both
#: the fuzz runner and the tests can force full registration without
#: hard-coding import lists of their own.
SEAM_SITE_MODULES = (
    "repro.network.grid",
    "repro.radio.medium",
    "repro.radio.mac",
    "repro.protocols.flat",
    "repro.protocols.vectorized",
    "repro.scenario.runner",
    "repro.serve.service",
)


def load_seam_sites() -> tuple[Seam, ...]:
    """Import every known seam site, then return all registered seams."""
    for module in SEAM_SITE_MODULES:
        importlib.import_module(module)
    return all_seams()


# -- chaos injection points ----------------------------------------------------

#: The fault kinds :mod:`repro.chaos` can inject. Every kind must be
#: claimed by a registered :class:`ChaosPoint`; ``repro chaos run``
#: fails loudly on an injectable kind with no injection site.
CHAOS_KINDS = (
    "cache-corrupt",
    "cache-write-fail",
    "connection-reset",
    "worker-crash",
    "worker-slow",
)


@dataclass(frozen=True)
class ChaosPoint:
    """One deterministic fault-injection site.

    The chaos analogue of :class:`Seam`: where a seam pins a fast path to
    its reference twin, a chaos point pins an infrastructure fault to the
    recovery path that must absorb it byte-identically. Sites register at
    module bottom (same idiom as seams) so ``repro chaos`` can enumerate
    coverage without hard-coded lists.

    Attributes:
        name: stable registry key (``"pool-worker"``).
        module: dotted module whose code calls the injection hook.
        hook: dotted path of the :mod:`repro.chaos.inject` hook fired
            at this site.
        kinds: the :data:`CHAOS_KINDS` entries this site can inject.
        description: one line for humans.
    """

    name: str
    module: str
    hook: str
    kinds: tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        for field_name in ("name", "module", "hook"):
            if not getattr(self, field_name):
                raise ConfigurationError(
                    f"chaos point field {field_name!r} must be non-empty"
                )
        if not self.kinds:
            raise ConfigurationError(
                f"chaos point {self.name!r} must declare at least one kind"
            )
        unknown = [kind for kind in self.kinds if kind not in CHAOS_KINDS]
        if unknown:
            raise ConfigurationError(
                f"chaos point {self.name!r} declares unknown fault kinds "
                f"{', '.join(unknown)}; known: {', '.join(CHAOS_KINDS)}"
            )


_CHAOS: dict[str, ChaosPoint] = {}


def register_chaos(point: ChaosPoint) -> ChaosPoint:
    """Register a chaos point; duplicate names are rejected."""
    if point.name in _CHAOS:
        raise ConfigurationError(
            f"chaos point {point.name!r} is already registered"
        )
    _CHAOS[point.name] = point
    return point


def chaos_names() -> tuple[str, ...]:
    return tuple(sorted(_CHAOS))


def all_chaos_points() -> tuple[ChaosPoint, ...]:
    """Every registered chaos point, in stable (name-sorted) order."""
    return tuple(_CHAOS[name] for name in sorted(_CHAOS))


#: The modules that register chaos points at import time.
CHAOS_SITE_MODULES = (
    "repro.runner.parallel",
    "repro.serve.http",
)


def load_chaos_sites() -> tuple[ChaosPoint, ...]:
    """Import every known chaos site, then return all registered points."""
    for module in CHAOS_SITE_MODULES:
        importlib.import_module(module)
    return all_chaos_points()


def chaos_kinds_covered() -> frozenset[str]:
    """Fault kinds claimed by the registered (loaded) chaos points."""
    covered: set[str] = set()
    for point in load_chaos_sites():
        covered.update(point.kinds)
    return frozenset(covered)


def fuzz_flags() -> Iterator[tuple[Seam, Any]]:
    """(seam, flag module) pairs for the differential fuzz runner.

    Loads the seam sites first, then *fails loudly* on any seam that
    registered without a fuzz leg: every fast path must be inside the
    differential net, not next to it.
    """
    for seam in load_seam_sites():
        if seam.fuzz_leg is None:
            raise ConfigurationError(
                f"seam {seam.name!r} is registered without a fuzz leg; "
                "declare fuzz_leg='fast' (flipped between the fast and "
                "reference runs) or 'vector' (third, vectorized leg) so "
                "repro.fuzz exercises it differentially"
            )
        yield seam, seam.resolve_flag_module()
