"""Core discrete-event engine.

The engine is deliberately minimal: a priority queue of timestamped
events, a virtual clock, and callback scheduling. Determinism is a hard
requirement for reproducible experiments, so ties in time are broken by a
monotonically increasing sequence number (insertion order), never by
object identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

Callback = Callable[["Event"], None]


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A one-shot occurrence with an optional payload and callbacks.

    Events are created through :meth:`Simulator.schedule` (already timed)
    or :meth:`Simulator.event` (untimed; trigger later). Callbacks added
    after the event has fired run immediately — this removes a classic
    race in callback-style simulation code.
    """

    __slots__ = (
        "sim",
        "name",
        "payload",
        "_callbacks",
        "_fired",
        "_cancelled",
        "_queued",
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.payload: Any = None
        self._callbacks: list[Callback] = []
        self._fired = False
        self._cancelled = False
        self._queued = 0  # heap entries referencing this event

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def add_callback(self, callback: Callback) -> None:
        if self._fired:
            callback(self)
            return
        self._callbacks.append(callback)

    def cancel(self) -> None:
        """Prevent a scheduled event from firing (idempotent).

        Cancelling an already-fired event is a no-op: the callbacks have
        run and cannot be unrun, and callers tearing down timer chains
        (quiet windows, watchdogs) must be able to cancel blindly.
        ``cancelled`` stays ``False`` in that case — the event did fire.
        """
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        # Its queued entries no longer count as pending; they are lazily
        # discarded when they reach the top of the heap.
        self.sim._pending -= self._queued

    def _fire(self) -> None:
        if self._cancelled:
            return
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else ("cancelled" if self._cancelled else "pending")
        return f"<Event {self.name!r} {state}>"


class Simulator:
    """Event heap plus virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, lambda ev: print("at", sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._processed = 0
        self._pending = 0  # live count of non-cancelled queued entries

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (for diagnostics and tests)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Queued events that will still fire.

        A live counter maintained on push/pop/cancel — the historical
        implementation scanned the whole heap per call, which made
        polling it O(n).
        """
        return self._pending

    def event(self, name: str = "") -> Event:
        """Create an untimed event, to be triggered via :meth:`trigger`."""
        return Event(self, name)

    def schedule(
        self,
        delay: float,
        callback: Callback | None = None,
        *,
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule a new event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self, name)
        event.payload = payload
        if callback is not None:
            event.add_callback(callback)
        heapq.heappush(self._heap, _QueueEntry(self._now + delay, next(self._seq), event))
        event._queued += 1
        self._pending += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callback | None = None,
        *,
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule a new event at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback, name=name, payload=payload)

    def trigger(self, event: Event, delay: float = 0.0, payload: Any = None) -> None:
        """Arrange for an untimed event to fire ``delay`` from now."""
        if payload is not None:
            event.payload = payload
        if delay < 0:
            raise SimulationError(f"cannot trigger into the past (delay={delay})")
        heapq.heappush(self._heap, _QueueEntry(self._now + delay, next(self._seq), event))
        event._queued += 1
        if not event._cancelled:
            self._pending += 1

    def step(self) -> bool:
        """Fire the next pending event. Returns False if the heap is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            entry.event._queued -= 1
            if entry.event.cancelled:
                continue  # already uncounted at cancel time
            self._pending -= 1
            if entry.time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = entry.time
            self._processed += 1
            entry.event._fire()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            next_time = self._peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if self.step():
                fired += 1
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    def _peek_time(self) -> float | None:
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap).event._queued -= 1
        if not self._heap:
            return None
        return self._heap[0].time
