"""Deterministic random-number management.

Experiments must be exactly reproducible from a single seed, yet different
components (adversary choices, sub-bit sampling, placement shuffles) must
draw from *independent* streams so that adding a draw in one component
does not perturb another. We derive one ``random.Random`` substream per
named component from a master seed using SHA-256, which is stable across
Python versions and platforms (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(master_seed: int, *names: str | int) -> int:
    """Derive a 63-bit child seed from a master seed and a name path.

    The derivation is pure: the same ``(master_seed, names)`` always yields
    the same child seed.
    """
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") >> 1


class RngRegistry:
    """Lazily creates one independent :class:`random.Random` per component.

    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("adversary")
    >>> b = rngs.stream("coding")
    >>> a is rngs.stream("adversary")
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[tuple[str | int, ...], random.Random] = {}

    def stream(self, *names: str | int) -> random.Random:
        key = tuple(names)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, *names))
            self._streams[key] = stream
        return stream

    def spawn(self, *names: str | int) -> "RngRegistry":
        """Create a child registry rooted at a derived seed."""
        return RngRegistry(derive_seed(self.master_seed, *names))

    def seeds(self, *names: str | int, count: int) -> Iterator[int]:
        """Yield ``count`` derived seeds (for per-trial seeding in sweeps)."""
        for index in range(count):
            yield derive_seed(self.master_seed, *names, index)
