"""Discrete-event simulation substrate.

A small, dependency-free discrete-event engine in the style of SimPy:

- :class:`~repro.sim.engine.Simulator` — event heap + virtual clock;
- :class:`~repro.sim.process.Process` — generator-based cooperative
  processes (``yield delay`` / ``yield event``);
- :mod:`~repro.sim.rng` — deterministic seeded random streams, one
  independent substream per named component;
- :mod:`~repro.sim.trace` — structured event tracing for debugging and
  for experiment reports.

The slotted-radio layers of this package are driven either directly by the
engine or by the specialised round loop in :mod:`repro.radio.mac`, which is
faster for dense TDMA workloads; both share these primitives.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import Process, Timeout
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Timeout",
    "RngRegistry",
    "derive_seed",
    "TraceEvent",
    "Tracer",
]
