"""Generator-based cooperative processes on top of the event engine.

A process is a Python generator that yields either

- :class:`Timeout` — resume after a virtual-time delay, or
- :class:`~repro.sim.engine.Event` — resume when that event fires.

Example::

    def sender(sim, radio):
        for i in range(3):
            radio.send(i)
            yield Timeout(1.0)

    Process(sim, sender(sim, radio))
    sim.run()

This mirrors the SimPy programming model without the dependency; the
reactive broadcast protocol of Section 5 uses it to express NACK timers
and retransmission loops naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to sleep for ``delay`` virtual time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Drives a generator as a cooperative simulation process.

    The process starts immediately (its first segment runs at the current
    virtual time via a zero-delay event, preserving deterministic ordering
    relative to other work scheduled "now").
    """

    __slots__ = ("sim", "body", "name", "done", "result", "_completion")

    def __init__(self, sim: Simulator, body: ProcessBody, name: str = "") -> None:
        self.sim = sim
        self.body = body
        self.name = name
        self.done = False
        self.result: Any = None
        self._completion = sim.event(name=f"{name}.done")
        sim.schedule(0.0, self._resume, name=f"{name}.start")

    @property
    def completion(self) -> Event:
        """Event that fires (with ``payload=result``) when the body returns."""
        return self._completion

    def _resume(self, event: Event) -> None:
        try:
            yielded = self.body.send(event.payload)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.sim.trigger(self._completion, 0.0, payload=stop.value)
            return
        if isinstance(yielded, Timeout):
            self.sim.schedule(yielded.delay, self._resume, name=f"{self.name}.timeout")
        elif isinstance(yielded, Event):
            yielded.add_callback(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected Timeout or Event"
            )
