"""Structured tracing for simulations.

Protocol/adversary/radio layers emit :class:`TraceEvent` records through a
shared :class:`Tracer`. Tracing is off by default (zero overhead beyond a
boolean check) and is used by tests to assert fine-grained behavior (for
example, that a jam was charged to the right bad node) and by experiment
reports to reconstruct propagation timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is a short dotted tag such as ``"radio.deliver"`` or
    ``"adversary.jam"``; ``time`` is (round, slot) or engine time depending
    on the emitting layer; ``data`` carries kind-specific fields.
    """

    kind: str
    time: Any
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace events, optionally filtered by kind prefix."""

    def __init__(
        self,
        enabled: bool = False,
        *,
        keep: Callable[[TraceEvent], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._keep = keep
        self._max_events = max_events
        self.dropped = 0

    def emit(self, kind: str, time: Any, **data: Any) -> None:
        if not self.enabled:
            return
        event = TraceEvent(kind, time, data)
        if self._keep is not None and not self._keep(event):
            return
        if self._max_events is not None and len(self.events) >= self._max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, prefix: str) -> list[TraceEvent]:
        """All collected events whose kind equals or starts with ``prefix.``."""
        return [
            event
            for event in self.events
            if event.kind == prefix or event.kind.startswith(prefix + ".")
        ]

    def count(self, prefix: str) -> int:
        return len(self.of_kind(prefix))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    @staticmethod
    def kinds(events: Iterable[TraceEvent]) -> list[str]:
        return [event.kind for event in events]


#: A process-wide tracer that stays disabled; layers default to this so
#: call sites never need ``if tracer is not None`` checks.
NULL_TRACER = Tracer(enabled=False)
