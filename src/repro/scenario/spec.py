"""The declarative scenario object: one serializable value from grid to adversary.

Every result in the paper is an instance of one shape — a grid, a
bad-node placement, a budget assignment, a protocol, and an adversary
behavior, run to quiescence under a round cap. :class:`ScenarioSpec`
captures that shape as a single frozen, picklable dataclass:

- **composable** — grids, placements, protocols, and behaviors combine
  freely; protocols and behaviors are referenced by registry name (see
  :mod:`repro.scenario.registries`), so new components plug in without
  editing the runner;
- **serializable** — :meth:`to_dict`/:meth:`from_dict` round-trip
  through plain JSON, so a scenario can live in a file and run through
  ``python -m repro scenario run file.json`` with no Python edits;
- **stably hashable** — :meth:`content_hash` digests the canonical JSON
  form; :func:`repro.runner.parallel.point_key` uses the same form (via
  ``__canonical_json__``), so a spec plugs directly into
  :class:`~repro.runner.parallel.ResultCache` and
  :func:`~repro.runner.parallel.point_seed`.

Construction does not touch the registries, so specs can be built while
the package is still importing; names are resolved at run/serialize time.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.adversary.placement import Placement
from repro.analysis.bounds import validate_t
from repro.errors import ConfigurationError, SpecValidationError
from repro.network.grid import GridSpec
from repro.scenario.registries import placements
from repro.types import VTRUE, Coord, NodeId, Value


# -- placement (de)serialization -----------------------------------------------


def encode_placement(placement: Placement) -> dict[str, Any]:
    """Encode a placement as ``{"kind": name, **fields}`` (recursively)."""
    name = placements.name_of(type(placement))
    encoded: dict[str, Any] = {"kind": name}
    for f in dataclasses.fields(placement):
        encoded[f.name] = _encode_value(getattr(placement, f.name))
    return encoded


def _encode_value(value: Any) -> Any:
    if isinstance(value, Placement):
        return encode_placement(value)
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    return value


def decode_placement(payload: Mapping[str, Any]) -> Placement:
    """Inverse of :func:`encode_placement`; unknown kinds list the registry."""
    if not isinstance(payload, Mapping) or "kind" not in payload:
        raise ConfigurationError(
            f"placement must be an object with a 'kind' key, got {payload!r}"
        )
    cls = placements.get(payload["kind"])
    known = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key == "kind":
            continue
        if key not in known:
            raise ConfigurationError(
                f"placement {payload['kind']!r} has no field {key!r}; "
                f"fields: {', '.join(sorted(known))}"
            )
        kwargs[key] = _decode_value(value)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"placement {payload['kind']!r} is incomplete: {exc}"
        ) from None


def _decode_value(value: Any) -> Any:
    if isinstance(value, Mapping) and "kind" in value:
        return decode_placement(value)
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


# -- the spec itself -----------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete broadcast scenario, from grid to adversary.

    Attributes:
        grid: network topology (:class:`~repro.network.grid.GridSpec`).
        t: locally-bounded adversary density (bad nodes per neighborhood).
        mf: per-bad-node message budget (the adversary's real budget).
        placement: which nodes are bad
            (:class:`~repro.adversary.placement.Placement`).
        protocol: registered protocol name (``"b"``, ``"koo"``,
            ``"heter"``, ``"cpa"``, ``"reactive"``, ...).
        behavior: registered adversary behavior name (``"jam"``,
            ``"lie"``, ``"spoof"``, ``"none"``, ``"coded"``,
            ``"figure2-defense"``, ...); ``None`` uses the protocol's
            default (``"jam"`` for threshold protocols, ``"coded"`` for
            B_reactive).
        m: homogeneous good-node budget; ``None`` uses the protocol's
            sufficient budget.
        mmax: loose upper bound on ``mf`` (reactive scenarios; sets the
            integrity-code length).
        source: source coordinate.
        vtrue: the value being broadcast.
        seed: master seed for every random stream the scenario draws.
        protected: receivers the adversary focuses on (node ids);
            ``None`` protects every good non-source node.
        max_rounds: run cap; ``None`` uses the protocol's generous default.
        batch_per_slot: transmissions a node may make per owned slot.
        validate_local_bound: re-check the placement against ``t``
            (disabled for deliberately unbounded placements, e.g.
            Bernoulli crash faults).
        protocol_params: extra protocol knobs by name (e.g. protocol B's
            ``relay_override``, B_reactive's ``quiet_limit``).
        behavior_params: extra behavior knobs by name (e.g. the coded
            jammer's ``p_forge``/``attack_nacks``, the Figure-2 defense's
            ``midside_quota``).

    Treat instances — including the param mappings — as immutable values:
    equality, pickling, and the content hash all assume the fields never
    change after construction.
    """

    grid: GridSpec
    t: int
    mf: int
    placement: Placement
    protocol: str = "b"
    behavior: str | None = None
    m: int | None = None
    mmax: int | None = None
    source: Coord = (0, 0)
    vtrue: Value = VTRUE
    seed: int = 0
    protected: tuple[NodeId, ...] | None = None
    max_rounds: int | None = None
    batch_per_slot: int = 1
    validate_local_bound: bool = True
    protocol_params: Mapping[str, Any] = field(default_factory=dict)
    behavior_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize sequence-valued fields so that specs built from JSON
        # (lists) and from Python (tuples) compare, hash, and pickle alike.
        object.__setattr__(self, "source", tuple(self.source))
        if self.protected is not None:
            object.__setattr__(self, "protected", tuple(self.protected))
        object.__setattr__(self, "protocol_params", dict(self.protocol_params))
        object.__setattr__(self, "behavior_params", dict(self.behavior_params))
        # Fail at construction, not mid-run: every numeric field that a
        # runner, driver, or protocol builder would reject later is
        # validated here, so a sampled/deserialized spec is either usable
        # or loudly invalid (the fuzz sampler leans on this contract).
        validate_t(self.grid.r, self.t)
        if self.mf < 0:
            raise ConfigurationError(f"mf must be non-negative, got {self.mf}")
        if self.m is not None and self.m < 0:
            raise ConfigurationError(f"m must be non-negative, got {self.m}")
        if self.mmax is not None and self.mmax < 1:
            raise ConfigurationError(f"mmax must be >= 1, got {self.mmax}")
        if self.batch_per_slot < 1:
            raise ConfigurationError(
                f"batch_per_slot must be >= 1, got {self.batch_per_slot}"
            )
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )

    def __hash__(self) -> int:
        # The dataclass-generated hash would raise on the dict-valued
        # param fields; hash the canonical content instead, consistent
        # with __eq__ (equal specs serialize identically).
        return hash(self.content_hash())

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form; exact inverse of :meth:`from_dict`."""
        return {
            "grid": {
                "width": self.grid.width,
                "height": self.grid.height,
                "r": self.grid.r,
                "torus": self.grid.torus,
            },
            "t": self.t,
            "mf": self.mf,
            "placement": encode_placement(self.placement),
            "protocol": self.protocol,
            "behavior": self.behavior,
            "m": self.m,
            "mmax": self.mmax,
            "source": list(self.source),
            "vtrue": self.vtrue,
            "seed": self.seed,
            "protected": (
                None if self.protected is None else list(self.protected)
            ),
            "max_rounds": self.max_rounds,
            "batch_per_slot": self.batch_per_slot,
            "validate_local_bound": self.validate_local_bound,
            "protocol_params": dict(self.protocol_params),
            "behavior_params": dict(self.behavior_params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON).

        Unknown keys are rejected so a typo in a scenario file cannot
        silently fall back to a default.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"scenario must be a JSON object, got {type(payload).__name__}"
            )
        data = dict(payload)
        try:
            grid_payload = data.pop("grid")
            t = data.pop("t")
            mf = data.pop("mf")
            placement_data = data.pop("placement")
        except KeyError as exc:
            raise ConfigurationError(
                f"scenario is missing required key {exc.args[0]!r}"
            ) from None
        if not isinstance(grid_payload, Mapping):
            raise ConfigurationError(
                f"scenario 'grid' must be an object, got {grid_payload!r}"
            )
        grid_data = dict(grid_payload)
        spec_fields = {f.name for f in dataclasses.fields(cls)}
        optional = {}
        for key in list(data):
            if key not in spec_fields:
                close = difflib.get_close_matches(key, sorted(spec_fields), n=3)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise SpecValidationError(
                    f"unknown scenario key {key!r}{hint}; expected keys: "
                    f"{', '.join(sorted(spec_fields))}",
                    field=key,
                    suggestions=tuple(close),
                )
            optional[key] = data.pop(key)
        if "source" in optional and optional["source"] is not None:
            try:
                optional["source"] = tuple(optional["source"])
            except TypeError:
                raise ConfigurationError(
                    f"scenario 'source' must be an [x, y] pair, got "
                    f"{optional['source']!r}"
                ) from None
            if len(optional["source"]) != 2:
                raise ConfigurationError(
                    f"scenario 'source' must be an [x, y] pair, got "
                    f"{list(optional['source'])!r}"
                )
        if "protected" in optional and optional["protected"] is not None:
            try:
                optional["protected"] = tuple(optional["protected"])
            except TypeError:
                raise ConfigurationError(
                    f"scenario 'protected' must be a list of node ids, got "
                    f"{optional['protected']!r}"
                ) from None
        for key in ("protocol_params", "behavior_params"):
            if key in optional and not isinstance(optional[key], Mapping):
                raise ConfigurationError(
                    f"scenario {key!r} must be an object, got {optional[key]!r}"
                )
        try:
            grid = GridSpec(**grid_data)
        except TypeError as exc:
            raise ConfigurationError(f"bad scenario grid: {exc}") from None
        return cls(
            grid=grid,
            t=t,
            mf=mf,
            placement=decode_placement(placement_data),
            **optional,
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- identity --------------------------------------------------------------

    def __canonical_json__(self) -> dict[str, Any]:
        """Canonical form used by :func:`repro.runner.parallel.canonical_point`.

        Returning :meth:`to_dict` makes ``point_key(spec)`` equal
        :meth:`content_hash`, so the result cache and ``point_seed`` key
        on the spec's *content*, independent of process, field order, or
        how the spec was constructed.
        """
        return self.to_dict()

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the scenario's canonical JSON form."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with ``changes`` applied (``dataclasses.replace`` sugar)."""
        return dataclasses.replace(self, **changes)
