"""Name-based component registries for the declarative scenario API.

Three registries map stable string names to scenario components:

- :data:`placements` — bad-node placement classes
  (:class:`~repro.adversary.placement.Placement` subclasses);
- :data:`protocols` — :class:`ProtocolEntry` node/budget builders;
- :data:`behaviors` — :class:`BehaviorEntry` adversary factories.

Components register themselves at the bottom of their defining modules
(``repro.adversary.placement``, ``repro.protocols.protocol_b``, ...), so
adding a protocol or adversary behavior never requires editing the
scenario runner — the string-literal ``if/elif`` dispatch that used to
live in ``repro.runner.broadcast_run`` is gone. Unknown names fail with
the full registered-name list.

This module is deliberately a leaf (stdlib + ``repro.errors`` only):
component modules import it at their bottoms without creating import
cycles through the rest of the package.
"""

from __future__ import annotations

import difflib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, Mapping, TypeVar

from repro.errors import ConfigurationError, SpecValidationError

EntryT = TypeVar("EntryT")


class Registry(Generic[EntryT]):
    """A named component table with self-describing lookup errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, EntryT] = {}

    def register(self, name: str, entry: EntryT) -> EntryT:
        """Register ``entry`` under ``name``; duplicate names are rejected."""
        if name in self._entries:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered"
            )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> EntryT:
        """Look a component up; unknown names fail with the known set.

        The error is a :class:`~repro.errors.SpecValidationError` carrying
        the registry kind and close-match suggestions, so service/CLI
        front ends can render did-you-mean hints structurally.
        """
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "(none)"
            close = difflib.get_close_matches(
                str(name), sorted(self._entries), n=3
            )
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise SpecValidationError(
                f"unknown {self.kind} {name!r}{hint}; registered: {known}",
                field=self.kind,
                suggestions=tuple(close),
            ) from None

    def unregister(self, name: str) -> EntryT:
        """Remove and return a registered component (test doubles, probes)."""
        try:
            return self._entries.pop(name)
        except KeyError:
            raise ConfigurationError(
                f"{self.kind} {name!r} is not registered"
            ) from None

    @contextmanager
    def temporarily(self, name: str, entry: EntryT) -> Iterator[EntryT]:
        """Register ``entry`` for the duration of a ``with`` block.

        The fuzz suite and capability tests inject deliberately-broken
        doubles this way so a failing test can never leak them into the
        process-wide registry.
        """
        self.register(name, entry)
        try:
            yield entry
        finally:
            self.unregister(name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def name_of(self, value: Any) -> str:
        """Reverse lookup (used to serialize placement classes by name)."""
        for name, entry in self._entries.items():
            if entry is value:
                return name
        raise ConfigurationError(
            f"{value!r} is not a registered {self.kind}; registered: "
            f"{', '.join(sorted(self._entries)) or '(none)'}"
        )

    def __contains__(self, name: str) -> bool:
        return name in self._entries


# -- assembly contexts ---------------------------------------------------------
#
# The runner hands these to registered builders. Fields are typed ``Any``
# to keep this module a leaf; the concrete types are documented.


@dataclass(frozen=True)
class BuildContext:
    """What a protocol builder sees: the world, pre-node-construction.

    Attributes:
        spec: the :class:`~repro.scenario.spec.ScenarioSpec` being run.
        grid: live :class:`~repro.network.grid.Grid`.
        table: :class:`~repro.network.node.NodeTable` (roles assigned).
        source: source node id.
        params: :class:`~repro.protocols.base.BroadcastParams`.
    """

    spec: Any
    grid: Any
    table: Any
    source: int
    params: Any


@dataclass(frozen=True)
class ProtocolBuild:
    """A protocol builder's output, consumed by the scenario runner.

    ``assignment`` (a :class:`~repro.analysis.budgets.BudgetAssignment`)
    supplies good-node ledger budgets when present; ``ledger_overrides``
    adds per-node exceptions on top (the reactive protocol unbounds the
    source this way). ``max_rounds`` is the protocol's default run cap,
    used when the spec does not pin one.
    """

    nodes: Mapping[int, Any]
    max_rounds: int
    assignment: Any = None
    ledger_overrides: Mapping[int, int | None] = field(default_factory=dict)


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered protocol: a name plus its scenario assembly hook.

    ``vector_build``, when present, returns the protocol's
    :class:`~repro.protocols.vectorized.ThresholdProgram` — the array
    form the whole-grid NumPy kernel executes instead of materializing
    per-node objects. It must encode exactly the relay/budget/round-cap
    choices ``build`` would make (the triple-differential suite pins
    this); returning ``None`` falls back to the per-node path.
    """

    name: str
    build: Callable[[BuildContext], ProtocolBuild]
    default_behavior: str
    description: str = ""
    vector_build: Callable[[BuildContext], Any] | None = None


@dataclass(frozen=True)
class BehaviorContext:
    """What an adversary-behavior factory sees.

    Attributes:
        spec: the :class:`~repro.scenario.spec.ScenarioSpec` being run.
        grid/table/ledger: live world objects.
        params: :class:`~repro.protocols.base.BroadcastParams`.
        rngs: an :class:`~repro.sim.rng.RngRegistry` rooted at
            ``spec.seed`` — behaviors draw named streams from it so their
            randomness is independent of scheduling and worker identity.
        tracer: the run's :class:`~repro.sim.trace.Tracer`.
    """

    spec: Any
    grid: Any
    table: Any
    ledger: Any
    params: Any
    rngs: Any
    tracer: Any

    @property
    def behavior_params(self) -> Mapping[str, Any]:
        return self.spec.behavior_params


@dataclass(frozen=True)
class BehaviorEntry:
    """One registered adversary behavior: name plus adversary factory."""

    name: str
    build: Callable[[BehaviorContext], Any]
    description: str = ""


placements: Registry[type] = Registry("placement")
protocols: Registry[ProtocolEntry] = Registry("protocol")
behaviors: Registry[BehaviorEntry] = Registry("behavior")


def default_threshold_max_rounds(
    spec: Any, source_sends: int, relay_count: int
) -> int:
    """Generous cap for threshold runs: source phase + one relay phase per
    unit of distance (moved intact from ``repro.runner.broadcast_run``).

    ``spec`` is a :class:`~repro.network.grid.GridSpec`.
    """
    if spec.torus:
        max_distance = max(spec.width, spec.height) // 2
    else:
        max_distance = max(spec.width, spec.height)
    return source_sends + (max_distance + 2) * (relay_count + 2) + 10
