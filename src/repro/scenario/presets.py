"""Bundled scenario presets: the paper's headline instances, ready to run.

``python -m repro scenario run <name>`` resolves names here;
``python -m repro scenario dump <name>`` prints the JSON form, which is
the recommended starting point for hand-written scenario files.

Presets are factories (not constants) so that importing this module
stays cheap and grid-derived data (band node ids) is computed on demand.
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.placement import RandomPlacement, StripePlacement, two_stripe_band
from repro.analysis.bounds import m0
from repro.errors import ConfigurationError
from repro.network.grid import Grid, GridSpec
from repro.scenario.spec import ScenarioSpec


def _quickstart() -> ScenarioSpec:
    """Protocol B at the Theorem-2 budget vs a worst-case stripe (§3)."""
    r, t, mf = 2, 2, 3
    return ScenarioSpec(
        grid=GridSpec(width=30, height=30, r=r, torus=True),
        t=t,
        mf=mf,
        placement=StripePlacement(y0=8, t=t),
        protocol="b",
        m=2 * m0(r, t, mf),
    )


def _stripe_band(m_factor_num: int, m_factor_den: int, delta: int) -> ScenarioSpec:
    """Two-stripe victim band at ``m = m0 * num/den + delta`` (E1 shape)."""
    r, t, mf, width = 2, 2, 3, 30
    spec = GridSpec(width=width, height=width, r=r, torus=True)
    grid = Grid(spec)
    placement, band_rows = two_stripe_band(grid, t=t, band_height=6, below_y0=8)
    band_ids = tuple(
        grid.id_of((x, y)) for y in band_rows for x in range(width)
    )
    lower = m0(r, t, mf)
    return ScenarioSpec(
        grid=spec,
        t=t,
        mf=mf,
        placement=placement,
        protocol="b",
        m=lower * m_factor_num // m_factor_den + delta,
        protected=band_ids,
        batch_per_slot=4,
    )


def _stripe_impossibility() -> ScenarioSpec:
    """Theorem 1: the band starves at ``m = m0 - 1``."""
    return _stripe_band(1, 1, -1)


def _theorem2() -> ScenarioSpec:
    """Theorem 2: the same adversary loses at ``m = 2*m0``."""
    return _stripe_band(2, 1, 0)


def _figure2() -> ScenarioSpec:
    """Figure 2's worked example: broadcast fails despite ``m = m0 + 1``."""
    from repro.experiments.e2_figure2 import paper_spec

    return paper_spec()


def _megatorus() -> ScenarioSpec:
    """10^6-node torus broadcast — the vectorized kernel's showcase.

    A 1000x1000 torus at ``r=2`` (1000 is a multiple of ``2r+1``; ``r=1``
    is impossible since 1000 is not a multiple of 3) with zero placed
    bad nodes, so the adversary can never transmit and the run is
    eligible for the NumPy whole-grid round kernel. Per-node engines
    would need minutes for this instance; the kernel completes it in
    seconds.
    """
    t = 1
    return ScenarioSpec(
        grid=GridSpec(width=1000, height=1000, r=2, torus=True),
        t=t,
        mf=1,
        placement=RandomPlacement(t=t, count=0, seed=0),
        protocol="b",
        behavior="none",
        batch_per_slot=4,
        seed=0,
    )


def _reactive() -> ScenarioSpec:
    """B_reactive with the adversary's budget unknown to the protocol (§5)."""
    r, t, mf = 1, 1, 2
    return ScenarioSpec(
        grid=GridSpec(width=18, height=18, r=r, torus=True),
        t=t,
        mf=mf,
        mmax=10**6,
        placement=RandomPlacement(t=t, count=8, seed=1000),
        protocol="reactive",
        seed=0,
    )


_PRESETS: dict[str, Callable[[], ScenarioSpec]] = {
    "quickstart": _quickstart,
    "stripe-impossibility": _stripe_impossibility,
    "theorem2": _theorem2,
    "figure2": _figure2,
    "megatorus": _megatorus,
    "reactive": _reactive,
}


def preset_names() -> tuple[str, ...]:
    return tuple(_PRESETS)


def preset(name: str) -> ScenarioSpec:
    """Build a bundled preset scenario; unknown names list the known set."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        known = ", ".join(_PRESETS)
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; bundled presets: {known}"
        ) from None
    return factory()
