"""repro.scenario — the declarative scenario API.

One serializable object — :class:`ScenarioSpec` — describes a complete
broadcast scenario from grid to adversary; :func:`run` executes any spec
through the same assembly path regardless of protocol family. Components
resolve through name-based registries (:mod:`repro.scenario.registries`)
that protocols, adversary behaviors, and placements register themselves
into, so new scenarios need no edits to the runner or experiments.

Typical use::

    from repro.scenario import ScenarioSpec, preset, run

    spec = preset("quickstart").replace(m=5)    # or build from scratch
    report = run(spec)

    text = spec.to_json()                        # file it, ship it, ...
    again = ScenarioSpec.from_json(text)         # ... rebuild it
    assert again == spec
    assert again.content_hash() == spec.content_hash()

Spec sweeps ride the parallel substrate directly::

    from repro import ResultCache, parallel_sweep
    from repro.scenario import run_summary

    result = parallel_sweep(specs, run_summary, workers=4,
                            cache=ResultCache(".cache", namespace="scenario"))
"""

from repro.scenario import registries
from repro.scenario.registries import behaviors, placements, protocols
from repro.scenario.spec import ScenarioSpec, decode_placement, encode_placement
from repro.scenario.runner import (
    BroadcastReport,
    ScenarioOutcome,
    outcome_table,
    run,
    run_summary,
    validate,
)

# Importing the component packages triggers their self-registration, so
# `import repro.scenario` alone is enough to resolve every built-in name.
import repro.adversary  # noqa: E402,F401
import repro.protocols  # noqa: E402,F401

from repro.scenario.presets import preset, preset_names  # noqa: E402

__all__ = [
    "ScenarioSpec",
    "BroadcastReport",
    "ScenarioOutcome",
    "run",
    "run_summary",
    "validate",
    "outcome_table",
    "preset",
    "preset_names",
    "encode_placement",
    "decode_placement",
    "registries",
    "placements",
    "protocols",
    "behaviors",
]
