"""The one entry point: assemble and run any :class:`ScenarioSpec`.

:func:`run` subsumes the historical ``run_threshold_broadcast`` /
``run_reactive_broadcast`` pair (both survive as thin deprecated shims in
:mod:`repro.runner.broadcast_run`): it builds the grid and role table,
resolves the protocol and adversary behavior through the name registries,
assembles budgets and the round driver, runs to quiescence, and returns
the same :class:`~repro.runner.report.BroadcastReport` the old entry
points produced — bit-for-bit, which the golden-table suite enforces.

:func:`run_summary` projects the live report onto the flat, picklable
:class:`ScenarioOutcome` so spec sweeps can ride
:func:`repro.runner.parallel.sweep` (workers + result cache) directly:
``sweep(specs, run_summary, workers=..., cache=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import repro.radio.mac as mac
import repro.radio.medium as medium_mod
from repro.analysis.verify import collect_costs, collect_outcome
from repro.errors import ConfigurationError
from repro.network.grid import Grid
from repro.network.node import NodeTable
from repro.protocols import flat, vectorized
from repro.protocols.base import BroadcastParams
from repro.radio.budget import BudgetLedger
from repro.radio.mac import RoundDriver, RunLimits
from repro.radio.schedule import TdmaSchedule
from repro.runner.parallel import ProcessLocalCache
from repro.runner.report import BroadcastReport, format_table
from repro.scenario.registries import BehaviorContext, BuildContext, behaviors, protocols
from repro.scenario.spec import ScenarioSpec
from repro.sim.rng import RngRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.types import NodeId

#: Share warm Grid/TdmaSchedule/Medium instances across the scenario
#: runs of one process (sweep workers build each grid once). Tests
#: monkeypatch this off to measure/verify the cold path.
DEFAULT_WARM_WORLD = True

_GRIDS = ProcessLocalCache(limit=8)
_MEDIA = ProcessLocalCache(limit=8)
_TABLES = ProcessLocalCache(limit=16)


def _world_for(spec: ScenarioSpec):
    """(grid, schedule, medium) for a spec — warm-cached when enabled.

    The medium cache key includes the (monkeypatchable) medium class and
    the resolved fast flag so recording/reference test setups never
    receive a stale instance; sharing the slot/round memos across runs
    of one grid is sound because delivery resolution depends only on the
    grid and the transmissions, never on placement or protocol state.
    """
    medium_cls = mac.Medium
    fast = medium_mod.DEFAULT_FAST
    if not DEFAULT_WARM_WORLD:
        grid = Grid(spec.grid)
        return grid, TdmaSchedule(grid), medium_cls(grid)
    grid, schedule = _GRIDS.get_or_build(
        spec.grid, lambda: (g := Grid(spec.grid), TdmaSchedule(g))
    )
    medium = _MEDIA.get_or_build(
        (spec.grid, medium_cls, fast), lambda: medium_cls(grid)
    )
    return grid, schedule, medium


def _table_for(spec: ScenarioSpec, grid: Grid, source: NodeId) -> NodeTable:
    """The spec's role table — warm-cached when enabled.

    Sound to share because a :class:`NodeTable` is immutable after
    construction and placements are deterministic in ``(grid, source)``;
    the key carries everything validation depends on. Unhashable custom
    placements simply rebuild every run.
    """

    def build() -> NodeTable:
        table = NodeTable(grid, source, spec.placement.bad_ids(grid, source))
        if spec.validate_local_bound:
            table.validate_locally_bounded(spec.t)
        return table

    if not DEFAULT_WARM_WORLD:
        return build()
    try:
        key = (
            spec.grid,
            source,
            spec.placement,
            spec.t,
            spec.validate_local_bound,
        )
        hash(key)
    except TypeError:
        return build()
    return _TABLES.get_or_build(key, build)


def validate(spec: ScenarioSpec) -> Grid:
    """Check a spec is runnable without running it; return its grid.

    Resolves the protocol and behavior names against the registries,
    builds (or warm-fetches) the grid, checks the source coordinate and
    protected ids, constructs the protocol parameters (which enforce the
    model bounds on ``t``/``mf``), and materializes the role table — so
    the placement's local-bound validation fires exactly as it would at
    run time. The fuzz sampler uses this as its acceptance test; CLI
    paths can use it for dry runs.
    """
    protocol = protocols.get(spec.protocol)
    behaviors.get(spec.behavior or protocol.default_behavior)
    grid, _schedule, _medium = _world_for(spec)
    source = grid.id_of(spec.source)
    BroadcastParams(r=spec.grid.r, t=spec.t, mf=spec.mf, vtrue=spec.vtrue)
    if spec.protected is not None:
        out_of_range = [nid for nid in spec.protected if not 0 <= nid < grid.n]
        if out_of_range:
            raise ConfigurationError(
                f"protected ids outside the grid: {out_of_range[:5]}"
            )
    _table_for(spec, grid, source)
    return grid


def run(
    spec: ScenarioSpec,
    *,
    tracer: Tracer = NULL_TRACER,
    adversary_override: Callable[[Grid, NodeTable, BudgetLedger], object] | None = None,
) -> BroadcastReport:
    """Run one scenario to quiescence and return its ``BroadcastReport``.

    ``tracer`` and ``adversary_override`` are run-time extras precisely
    because they are not serializable scenario *content*: the override is
    an escape hatch for ad-hoc adversaries (the deprecated
    ``behavior="custom"`` path) and takes precedence over
    ``spec.behavior``.
    """
    protocol = protocols.get(spec.protocol)
    grid, schedule, medium = _world_for(spec)
    source = grid.id_of(spec.source)
    table = _table_for(spec, grid, source)
    params = BroadcastParams(r=spec.grid.r, t=spec.t, mf=spec.mf, vtrue=spec.vtrue)

    # Whole-grid NumPy kernel: engages only for runs it can reproduce
    # bit-for-bit (threshold protocol, inert adversary, no tracing — see
    # repro.protocols.vectorized); everything else falls through to the
    # per-node assembly below untouched.
    vector_report = vectorized.try_vector_run(
        spec,
        protocol,
        grid,
        table,
        source,
        params,
        tracer=tracer,
        adversary_override=adversary_override,
    )
    if vector_report is not None:
        return vector_report

    build = protocol.build(
        BuildContext(spec=spec, grid=grid, table=table, source=source, params=params)
    )

    overrides: dict[NodeId, int | None] = (
        build.assignment.overrides() if build.assignment is not None else {}
    )
    overrides.update(build.ledger_overrides)
    for bad in table.bad_ids:
        overrides[bad] = spec.mf
    ledger = BudgetLedger(grid.n, default_budget=None, overrides=overrides)

    if adversary_override is not None:
        adversary = adversary_override(grid, table, ledger)
    else:
        behavior = behaviors.get(spec.behavior or protocol.default_behavior)
        adversary = behavior.build(
            BehaviorContext(
                spec=spec,
                grid=grid,
                table=table,
                ledger=ledger,
                params=params,
                rngs=RngRegistry(spec.seed),
                tracer=tracer,
            )
        )
    binder = getattr(adversary, "bind_decided", None)
    if callable(binder):
        binder(build.nodes)

    # The flat engine only makes sense when the fast round loop will
    # consume it (tracing and reference-mode runs distribute through the
    # nodes themselves, which must then stay canonical).
    engine = (
        flat.build_flat_engine(build.nodes, grid.n, params, source)
        if flat.DEFAULT_FLAT and mac.DEFAULT_FAST_DRIVER and not tracer.enabled
        else None
    )
    if engine is not None:
        bits_binder = getattr(adversary, "bind_decided_bits", None)
        if callable(bits_binder):
            bits_binder(engine.decided)

    driver = RoundDriver(
        grid,
        table,
        build.nodes,
        adversary,
        ledger,
        batch_per_slot=spec.batch_per_slot,
        tracer=tracer,
        medium=medium,
        schedule=schedule,
        engine=engine,
    )
    max_rounds = spec.max_rounds if spec.max_rounds is not None else build.max_rounds
    stats = driver.run(RunLimits(max_rounds=max_rounds))
    if engine is not None:
        engine.sync_nodes()

    outcome = collect_outcome(table, build.nodes, stats, spec.vtrue)
    costs = collect_costs(table, ledger)
    return BroadcastReport(
        outcome=outcome,
        costs=costs,
        stats=stats,
        grid=grid,
        table=table,
        nodes=build.nodes,
        adversary=adversary,
        ledger=ledger,
        assignment=build.assignment,
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """Flat, picklable projection of a finished scenario run.

    What ``python -m repro scenario run`` tabulates and what the result
    cache stores for spec sweeps — everything quantitative, nothing live.
    """

    success: bool
    decided_good: int
    total_good: int
    wrong_good: int
    rounds: int
    quiescent: bool
    good_total_sent: int
    good_max_sent: int
    bad_total_sent: int

    @property
    def decided_fraction(self) -> float:
        return self.decided_good / self.total_good if self.total_good else 1.0


def run_summary(spec: ScenarioSpec) -> ScenarioOutcome:
    """Run a scenario and summarize (module-level, spawn-worker-safe)."""
    report = run(spec)
    return ScenarioOutcome(
        success=report.success,
        decided_good=report.outcome.decided_good,
        total_good=report.outcome.total_good,
        wrong_good=report.outcome.wrong_good,
        rounds=report.outcome.rounds,
        quiescent=report.stats.quiescent,
        good_total_sent=report.costs.good_total,
        good_max_sent=report.costs.good_max,
        bad_total_sent=report.costs.bad_total,
    )


def outcome_table(
    specs: list[ScenarioSpec], outcomes: list[ScenarioOutcome], *, title: str
) -> str:
    """Render one row per (spec, outcome) pair for the scenario CLI."""
    rows = [
        [
            spec.content_hash()[:12],
            f"{spec.grid.width}x{spec.grid.height} r={spec.grid.r}",
            spec.protocol,
            spec.behavior or protocols.get(spec.protocol).default_behavior,
            outcome.success,
            f"{outcome.decided_good}/{outcome.total_good}",
            outcome.wrong_good,
            outcome.rounds,
            outcome.good_max_sent,
            outcome.bad_total_sent,
        ]
        for spec, outcome in zip(specs, outcomes)
    ]
    return format_table(
        ["scenario", "grid", "protocol", "behavior", "success", "decided",
         "wrong", "rounds", "max good sent", "bad sent"],
        rows,
        title=title,
    )


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="warm-world",
        flag_module="repro.scenario.runner",
        flag_attr="DEFAULT_WARM_WORLD",
        fast="repro.scenario.runner._world_for",
        reference="repro.network.grid.Grid",
        differential_test="tests/test_scenario_fastpath.py",
        fuzz_leg="fast",
        description="process-local warm Grid/Medium/NodeTable reuse vs a "
        "cold world per run",
    )
)
