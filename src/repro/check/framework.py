"""Rule framework for :mod:`repro.check`.

The moving parts, smallest first:

- :class:`Finding` — one diagnostic, with a location and a *fingerprint*
  (rule + path + message, deliberately line-free so baselines survive
  unrelated edits);
- :class:`SourceFile` — a parsed module plus its suppression comments
  (``# repro: ignore[RPR001]`` on the flagged line or the line above);
- :class:`ProjectIndex` — every scanned source file, loaded once and
  shared by all rules, so project-level rules (seams, registries) can
  cross-reference modules without re-reading the tree;
- :class:`Rule` / :class:`FileRule` — project-wide vs per-file checks;
- :func:`run_rules` — run, filter suppressed + baselined, sort.

Scanned roots are ``src/``, ``examples/``, and ``benchmarks/``; the
``tests/`` tree is indexed read-only (rules search it for differential
tests but never lint it — tests get to be weird on purpose).
"""

from __future__ import annotations

import ast
import json
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ConfigurationError

#: Directories under ``src/repro`` holding deterministic engine code —
#: the scope of the RPR0xx determinism rules. Everything a scenario run
#: executes between ``run(spec)`` and its report lives here; analysis /
#: experiment / CLI code may read clocks, engines may not.
ENGINE_DIRS = ("sim", "protocols", "radio", "adversary")

#: ``# repro: ignore[RPR001]`` / ``# repro: ignore[RPR001, RPR203]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9_,\s]+)\]")

_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, and what went wrong."""

    rule_id: str
    path: str  # repo-root-relative posix path
    line: int
    col: int
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, messages shouldn't."""
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class SourceFile:
    """A parsed module plus the bookkeeping rules need around it."""

    path: Path  # absolute
    rel: str  # posix path relative to the project root
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]  # line -> suppressed rule ids

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        suppressions: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                ids = frozenset(
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                )
                suppressions[lineno] = ids
        return cls(
            path=path,
            rel=path.relative_to(root).as_posix(),
            source=source,
            tree=tree,
            suppressions=suppressions,
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Suppression comments cover their own line and the next one."""
        for at in (line, line - 1):
            if rule_id in self.suppressions.get(at, frozenset()):
                return True
        return False

    @property
    def in_engine(self) -> bool:
        """Whether this file is deterministic-engine code (RPR0xx scope)."""
        parts = Path(self.rel).parts
        return (
            len(parts) >= 3
            and parts[0] == "src"
            and parts[1] == "repro"
            and parts[2] in ENGINE_DIRS
        )


@dataclass
class ProjectIndex:
    """Every scanned source file plus read-only access to ``tests/``."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)

    @classmethod
    def load(cls, root: Path | str) -> "ProjectIndex":
        root = Path(root).resolve()
        if not (root / "src" / "repro").is_dir():
            raise ConfigurationError(
                f"{root} does not look like the repro project root "
                "(no src/repro directory)"
            )
        files: list[SourceFile] = []
        for scan_root in ("src", "examples", "benchmarks"):
            base = root / scan_root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                try:
                    files.append(SourceFile.parse(path, root))
                except SyntaxError as exc:
                    raise ConfigurationError(
                        f"cannot parse {path}: {exc}"
                    ) from exc
        return cls(root=root, files=files)

    def file(self, rel: str) -> SourceFile | None:
        for f in self.files:
            if f.rel == rel:
                return f
        return None

    def src_files(self) -> Iterator[SourceFile]:
        for f in self.files:
            if f.rel.startswith("src/"):
                yield f

    def test_sources(self) -> dict[str, str]:
        """``tests/**.py`` sources keyed by root-relative posix path."""
        out: dict[str, str] = {}
        base = self.root / "tests"
        if base.is_dir():
            for path in sorted(base.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                out[path.relative_to(self.root).as_posix()] = path.read_text(
                    encoding="utf-8"
                )
        return out


class Rule(ABC):
    """One project invariant with a stable ID."""

    rule_id: str
    title: str
    rationale: str

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        rule_id = getattr(cls, "rule_id", None)
        if rule_id is not None and not _RULE_ID_RE.match(rule_id):
            raise ConfigurationError(
                f"rule id {rule_id!r} does not match RPR###"
            )

    @abstractmethod
    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def finding(
        self, f: SourceFile, node: ast.AST | None, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule_id=self.rule_id, path=f.rel, line=line, col=col, message=message
        )


class FileRule(Rule):
    """A rule that inspects one file at a time."""

    def applies_to(self, f: SourceFile) -> bool:
        return True

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        for f in project.files:
            if self.applies_to(f):
                yield from self.check_file(f, project)

    @abstractmethod
    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        """Yield findings for one file."""


def run_rules(
    project: ProjectIndex,
    rules: Iterable[Rule],
    *,
    baseline: frozenset[tuple[str, str, str]] = frozenset(),
) -> list[Finding]:
    """All unsuppressed, unbaselined findings, in (path, line, rule) order."""
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            f = project.file(finding.path)
            if f is not None and f.suppressed(finding.rule_id, finding.line):
                continue
            if finding.fingerprint() in baseline:
                continue
            findings.append(finding)
    findings.sort(key=lambda x: (x.path, x.line, x.col, x.rule_id))
    return findings


# -- baseline ------------------------------------------------------------------


def load_baseline(path: Path | str) -> frozenset[tuple[str, str, str]]:
    """Read a baseline file: a JSON list of finding fingerprints."""
    path = Path(path)
    if not path.exists():
        return frozenset()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"baseline {path} must be a JSON list of findings"
        )
    entries = []
    for item in payload:
        if not isinstance(item, dict) or not {"rule", "path", "message"} <= set(
            item
        ):
            raise ConfigurationError(
                f"baseline {path}: each entry needs rule/path/message keys"
            )
        entries.append((item["rule"], item["path"], item["message"]))
    return frozenset(entries)


def write_baseline(path: Path | str, findings: list[Finding]) -> None:
    """Write ``findings`` as a baseline (fingerprints only, sorted)."""
    payload = [
        {"rule": rule, "path": rel, "message": message}
        for rule, rel, message in sorted(f.fingerprint() for f in findings)
    ]
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


# -- shared AST helpers --------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def is_abstract_class(node: ast.ClassDef) -> bool:
    """ABC/Protocol bases or any ``@abstractmethod`` member."""
    for base in node.bases + node.keywords:
        target = base.value if isinstance(base, ast.keyword) else base
        name = dotted_name(target) or ""
        if name.split(".")[-1] in ("ABC", "Protocol", "ABCMeta"):
            return True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                if (dotted_name(deco) or "").split(".")[-1] in (
                    "abstractmethod",
                    "abstractproperty",
                ):
                    return True
    return False


def class_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, ast.FunctionDef)
    }


def class_assign_names(node: ast.ClassDef) -> set[str]:
    """Names bound by plain/annotated assignments in a class body."""
    names: set[str] = set()
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            if item.value is not None:
                names.add(item.target.id)
    return names
