"""``repro.check`` — project-invariant static analysis.

An AST-based rule framework (``python -m repro check``) that turns the
ROADMAP's standing rules — bit-for-bit determinism, byte-identical
fast/reference seams, registry + capability-flag completeness, strictly
optional NumPy — into machine-checked gates. Each rule has a stable ID
(``RPR###``), can be suppressed inline with ``# repro: ignore[RPR###]``,
and reports findings that a baseline file may exclude (the committed
baseline must stay empty in CI; it exists only to stage large cleanups).

Rule catalog (see the per-module docstrings for rationale):

======== ====================================================================
RPR001   unseeded ``random.*`` call in engine code
RPR002   wall-clock read (``time.time`` / ``datetime.now``) in engine code
RPR003   environment read (``os.environ`` / ``os.getenv``) in engine code
RPR004   iteration over an unordered set in engine code without ``sorted``
RPR005   ``id()``-based ordering
RPR101   engine ``DEFAULT_*`` flag module without a seam registration
RPR102   registered seam whose differential test is missing or silent
RPR103   seam registered without a fuzz leg
RPR201   concrete component class whose module never registers it
RPR202   adversary class that declares no fast-path capability flag
RPR203   registered component missing from the fuzz sampler matrix
RPR301   module-level ``import numpy`` without an ImportError guard
RPR401   mutable default argument
RPR501   ``except BrokenExecutor`` outside the pool-supervision module
======== ====================================================================
"""

from __future__ import annotations

from repro.check import determinism, hygiene, registries, robustness, seams
from repro.check.framework import (
    Finding,
    ProjectIndex,
    Rule,
    load_baseline,
    run_rules,
)

#: Every rule, in report order. New rule modules append here.
ALL_RULES: tuple[Rule, ...] = (
    *determinism.RULES,
    *seams.RULES,
    *registries.RULES,
    *hygiene.RULES,
    *robustness.RULES,
)


def run_check(
    root,
    *,
    rules: tuple[Rule, ...] = ALL_RULES,
    baseline_path=None,
) -> list[Finding]:
    """Scan the tree under ``root`` and return unsuppressed findings.

    ``baseline_path`` (optional) names a JSON baseline file whose
    fingerprints are excluded from the result.
    """
    project = ProjectIndex.load(root)
    baseline = load_baseline(baseline_path) if baseline_path else frozenset()
    return run_rules(project, rules, baseline=baseline)


__all__ = [
    "ALL_RULES",
    "Finding",
    "ProjectIndex",
    "Rule",
    "run_check",
]
