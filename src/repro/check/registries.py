"""Registry completeness rules (RPR201–RPR203).

The scenario system dispatches every component by registered name
(:mod:`repro.scenario.registries`) and the fuzz sampler draws scenarios
from :data:`repro.fuzz.sampler.PROTOCOL_BEHAVIORS`. A component class
that exists but never registers — or registers but never enters the
sampler matrix — silently escapes declarative scenarios and fuzzing.
These rules keep the three layers (class definitions, registries,
sampler matrix) mutually complete:

- RPR201: a module defining a concrete component class (an adversary —
  anything with a non-abstract ``on_slot`` — a ``Placement`` subclass,
  or a ``BroadcastNode`` subclass) must call the matching registry's
  ``register``. Modules named ``base.py`` are exempt: they hold shared
  machinery whose registration duty lies with the assembling modules.
- RPR202: every concrete adversary class must declare at least one
  driver capability flag (``spontaneous`` / ``observe_stateless`` /
  ``observe_inert_when_broke``) in its class body — the fast driver and
  the vectorized kernel read them, and an undeclared class silently
  inherits the conservative defaults, which usually means "pins the
  whole run onto the slow path" or worse, an unsound inherited promise.
- RPR203: the registered protocol/behavior names and the sampler's
  ``PROTOCOL_BEHAVIORS`` matrix must agree in both directions (a
  deliberately unsampled behavior carries an inline suppression at its
  registration site, which is the reviewable form of "excluded").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.check.framework import (
    Finding,
    ProjectIndex,
    Rule,
    SourceFile,
    class_assign_names,
    class_methods,
    dotted_name,
    is_abstract_class,
)

CAPABILITY_FLAGS = (
    "spontaneous",
    "observe_stateless",
    "observe_inert_when_broke",
)

#: Receiver spellings of the three component registries, as they appear
#: at module bottoms (``_behaviors.register(...)``) or fully qualified.
_REGISTRY_RECEIVERS = {
    "behaviors": "behavior",
    "_behaviors": "behavior",
    "protocols": "protocol",
    "_protocols": "protocol",
    "placements": "placement",
    "_placements": "placement",
}

_SAMPLER_REL = "src/repro/fuzz/sampler.py"


@dataclass(frozen=True)
class RegisterCall:
    """One ``<registry>.register("name", ...)`` call site."""

    file: SourceFile
    node: ast.Call
    kind: str  # "behavior" | "protocol" | "placement"
    name: str | None  # first positional arg when a string literal


def collect_register_calls(project: ProjectIndex) -> list[RegisterCall]:
    calls: list[RegisterCall] = []
    for f in project.src_files():
        for node in ast.walk(f.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
            ):
                continue
            receiver = (dotted_name(node.func.value) or "").split(".")[-1]
            kind = _REGISTRY_RECEIVERS.get(receiver)
            if kind is None:
                continue
            name = None
            if node.args and isinstance(node.args[0], ast.Constant):
                if isinstance(node.args[0].value, str):
                    name = node.args[0].value
            calls.append(RegisterCall(file=f, node=node, kind=kind, name=name))
    return calls


@dataclass(frozen=True)
class ComponentClass:
    """A concrete component class and which registry owes it an entry."""

    file: SourceFile
    node: ast.ClassDef
    kind: str  # "behavior" | "protocol" | "placement"


def _ancestor_names(
    node: ast.ClassDef, class_bases: dict[str, tuple[str, ...]]
) -> set[str]:
    """Transitive base-class simple names, resolved across the src tree."""
    seen: set[str] = set()
    stack = [
        (dotted_name(base) or "").split(".")[-1] for base in node.bases
    ]
    while stack:
        name = stack.pop()
        if not name or name in seen:
            continue
        seen.add(name)
        stack.extend(class_bases.get(name, ()))
    return seen


def _class_base_index(project: ProjectIndex) -> dict[str, tuple[str, ...]]:
    index: dict[str, tuple[str, ...]] = {}
    for f in project.src_files():
        for node in ast.walk(f.tree):
            if isinstance(node, ast.ClassDef):
                index[node.name] = tuple(
                    (dotted_name(base) or "").split(".")[-1]
                    for base in node.bases
                )
    return index


def collect_component_classes(project: ProjectIndex) -> list[ComponentClass]:
    class_bases = _class_base_index(project)
    components: list[ComponentClass] = []
    for f in project.src_files():
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.ClassDef) or is_abstract_class(node):
                continue
            ancestors = _ancestor_names(node, class_bases)
            methods = class_methods(node)
            if "Placement" in ancestors:
                components.append(ComponentClass(f, node, "placement"))
            elif "BroadcastNode" in ancestors:
                components.append(ComponentClass(f, node, "protocol"))
            elif "on_slot" in methods or "Adversary" in ancestors:
                components.append(ComponentClass(f, node, "behavior"))
    return components


class ComponentRegistrationRule(Rule):
    rule_id = "RPR201"
    title = "concrete component class whose module never registers it"
    rationale = (
        "Unregistered components cannot be named by a ScenarioSpec and "
        "are invisible to the fuzz sampler — they rot outside the "
        "differential net."
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        registered_kinds: dict[str, set[str]] = {}
        for call in collect_register_calls(project):
            registered_kinds.setdefault(call.file.rel, set()).add(call.kind)
        for component in collect_component_classes(project):
            f = component.file
            if f.rel.endswith("/base.py"):
                continue  # shared machinery; assembling modules register
            if component.kind in registered_kinds.get(f.rel, set()):
                continue
            registry = {
                "behavior": "repro.scenario.registries.behaviors",
                "protocol": "repro.scenario.registries.protocols",
                "placement": "repro.scenario.registries.placements",
            }[component.kind]
            yield self.finding(
                f,
                component.node,
                f"concrete {component.kind} class "
                f"{component.node.name!r} is defined here but the module "
                f"never calls {registry}.register(...); components "
                "self-register at the bottom of their defining module",
            )


class CapabilityFlagsRule(Rule):
    rule_id = "RPR202"
    title = "adversary class without declared capability flags"
    rationale = (
        "The fast driver and vectorized kernel read spontaneous / "
        "observe_stateless / observe_inert_when_broke off the class; a "
        "subclass must re-state its own contract rather than silently "
        "inherit one (the flags are promises about *this* class's "
        "on_slot/observe, not its parent's)."
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        for component in collect_component_classes(project):
            if component.kind != "behavior":
                continue
            declared = class_assign_names(component.node) & set(
                CAPABILITY_FLAGS
            )
            if not declared:
                yield self.finding(
                    component.file,
                    component.node,
                    f"adversary class {component.node.name!r} declares none "
                    f"of {', '.join(CAPABILITY_FLAGS)}; state its fast-path "
                    "contract explicitly in the class body",
                )


def _sampler_matrix(
    project: ProjectIndex,
) -> tuple[SourceFile | None, ast.stmt | None, dict[str, tuple[str, ...]]]:
    """Statically read ``PROTOCOL_BEHAVIORS`` out of the fuzz sampler."""
    f = project.file(_SAMPLER_REL)
    if f is None:
        return None, None, {}
    for stmt in f.tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            value = stmt.value
        if not (
            isinstance(target, ast.Name)
            and target.id == "PROTOCOL_BEHAVIORS"
            and isinstance(value, ast.Dict)
        ):
            continue
        matrix: dict[str, tuple[str, ...]] = {}
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            names: list[str] = []
            if isinstance(val, (ast.Tuple, ast.List)):
                for element in val.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.append(element.value)
            matrix[key.value] = tuple(names)
        return f, stmt, matrix
    return f, None, {}


class SamplerMatrixRule(Rule):
    rule_id = "RPR203"
    title = "registered component missing from the fuzz sampler matrix"
    rationale = (
        "Registry + fuzz-first is a standing rule: a protocol or "
        "behavior that registers without entering PROTOCOL_BEHAVIORS is "
        "never sampled, so its differential coverage is zero."
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        sampler_file, matrix_stmt, matrix = _sampler_matrix(project)
        if sampler_file is None:
            return
        if matrix_stmt is None:
            yield self.finding(
                sampler_file,
                None,
                "PROTOCOL_BEHAVIORS dict literal not found in the fuzz "
                "sampler; the checker cannot verify sampling completeness",
            )
            return
        sampled_behaviors = {
            name for behaviors in matrix.values() for name in behaviors
        }
        registered_protocols: dict[str, RegisterCall] = {}
        registered_behaviors: dict[str, RegisterCall] = {}
        for call in collect_register_calls(project):
            if call.name is None:
                continue
            if call.kind == "protocol":
                registered_protocols[call.name] = call
            elif call.kind == "behavior":
                registered_behaviors[call.name] = call
        for name, call in sorted(registered_protocols.items()):
            if name not in matrix:
                yield self.finding(
                    call.file,
                    call.node,
                    f"protocol {name!r} registers here but is not a key of "
                    "repro.fuzz.sampler.PROTOCOL_BEHAVIORS; fuzz-first "
                    "means every protocol gets sampled",
                )
        for name, call in sorted(registered_behaviors.items()):
            if name not in sampled_behaviors:
                yield self.finding(
                    call.file,
                    call.node,
                    f"behavior {name!r} registers here but appears in no "
                    "PROTOCOL_BEHAVIORS entry; pair it with the protocols "
                    "it can face (or suppress with a justification if it "
                    "is scenario-specific)",
                )
        for protocol in sorted(matrix):
            if protocol not in registered_protocols:
                yield self.finding(
                    sampler_file,
                    matrix_stmt,
                    f"PROTOCOL_BEHAVIORS names protocol {protocol!r}, which "
                    "is not registered anywhere under src/",
                )
        for behavior in sorted(sampled_behaviors):
            if behavior not in registered_behaviors:
                yield self.finding(
                    sampler_file,
                    matrix_stmt,
                    f"PROTOCOL_BEHAVIORS references behavior {behavior!r}, "
                    "which is not registered anywhere under src/",
                )


RULES = (
    ComponentRegistrationRule(),
    CapabilityFlagsRule(),
    SamplerMatrixRule(),
)
