"""Seam rules (RPR101–RPR103).

Every fast path in this repository keeps a byte-identical reference twin
behind a module-level ``DEFAULT_*`` boolean flag, and registers the pair
in :mod:`repro.seams` so the fuzz runner flips it differentially. These
rules close the loop statically:

- RPR101: a module that defines an engine flag (module-level
  ``DEFAULT_* = True/False``) must register a :class:`repro.seams.Seam`;
  an unregistered flag is a fast path outside the differential net.
- RPR102: every registered seam's declared differential test must exist
  under ``tests/`` and actually mention the seam — either the flag
  attribute it flips or both implementation names. A seam whose test
  went silent is indistinguishable from an untested seam.
- RPR103: a seam must declare a fuzz leg (``"fast"`` or ``"vector"``).
  The runtime registry fails a fuzz run loudly on this; the static rule
  catches it at review time instead.

Registration sites are parsed statically (``Seam(...)`` keyword string
literals), so the checker needs no imports and runs on broken trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.check.framework import (
    Finding,
    ProjectIndex,
    Rule,
    SourceFile,
    dotted_name,
)
from repro.seams import FUZZ_LEGS


@dataclass(frozen=True)
class StaticSeam:
    """A ``Seam(...)`` registration as read off the AST."""

    file: SourceFile
    node: ast.Call
    fields: dict[str, str | None]

    def get(self, key: str) -> str | None:
        return self.fields.get(key)


def _module_flags(f: SourceFile) -> list[tuple[str, ast.stmt]]:
    """Module-level ``DEFAULT_* = True/False`` assignments."""
    flags: list[tuple[str, ast.stmt]] = []
    for stmt in f.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            targets = [stmt.target.id]
            value = stmt.value
        else:
            continue
        if not (
            isinstance(value, ast.Constant) and isinstance(value.value, bool)
        ):
            continue
        for name in targets:
            if name.startswith("DEFAULT_"):
                flags.append((name, stmt))
    return flags


def collect_static_seams(project: ProjectIndex) -> list[StaticSeam]:
    """Every ``Seam(...)`` construction in the scanned tree."""
    seams: list[StaticSeam] = []
    for f in project.src_files():
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            if name.split(".")[-1] != "Seam":
                continue
            fields: dict[str, str | None] = {}
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                if isinstance(kw.value, ast.Constant):
                    value = kw.value.value
                    fields[kw.arg] = value if isinstance(value, str) else (
                        None if value is None else str(value)
                    )
            seams.append(StaticSeam(file=f, node=node, fields=fields))
    return seams


class SeamRegistrationRule(Rule):
    rule_id = "RPR101"
    title = "engine flag module without a seam registration"
    rationale = (
        "A DEFAULT_* boolean flag marks a fast/reference seam; a module "
        "that defines one without registering a repro.seams.Seam has a "
        "fast path the fuzz runner never flips."
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        static_seams = collect_static_seams(project)
        registered_flags = {
            (seam.get("flag_module"), seam.get("flag_attr"))
            for seam in static_seams
        }
        for f in project.src_files():
            module = _module_dotted(f)
            for flag_name, stmt in _module_flags(f):
                if (module, flag_name) not in registered_flags:
                    yield self.finding(
                        f,
                        stmt,
                        f"module-level engine flag {flag_name} has no "
                        "repro.seams.Seam registration; every fast/reference "
                        "seam must be registered so repro.fuzz flips it",
                    )


def _module_dotted(f: SourceFile) -> str:
    """``src/repro/radio/medium.py`` -> ``repro.radio.medium``."""
    rel = f.rel
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    rel = rel[:-len(".py")] if rel.endswith(".py") else rel
    if rel.endswith("/__init__"):
        rel = rel[: -len("/__init__")]
    return rel.replace("/", ".")


class SeamDifferentialTestRule(Rule):
    rule_id = "RPR102"
    title = "registered seam without a live differential test"
    rationale = (
        "A seam's safety net is its differential test; the registration "
        "must point at a test file that exists and names the seam."
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        tests = project.test_sources()
        for seam in collect_static_seams(project):
            name = seam.get("name") or "<unnamed>"
            for required in ("flag_module", "flag_attr", "fast", "reference"):
                if not seam.get(required):
                    yield self.finding(
                        seam.file,
                        seam.node,
                        f"seam {name!r} registration omits the {required!r} "
                        "field (or passes it non-literally); the checker "
                        "needs literal strings to verify the seam",
                    )
            test_path = seam.get("differential_test")
            if not test_path:
                yield self.finding(
                    seam.file,
                    seam.node,
                    f"seam {name!r} declares no differential_test; every "
                    "fast/reference pair needs a byte-identity suite",
                )
                continue
            source = tests.get(test_path)
            if source is None:
                yield self.finding(
                    seam.file,
                    seam.node,
                    f"seam {name!r} points at differential test "
                    f"{test_path!r}, which does not exist",
                )
                continue
            flag_attr = seam.get("flag_attr") or ""
            fast_token = (seam.get("fast") or "").rsplit(".", 1)[-1]
            ref_token = (seam.get("reference") or "").rsplit(".", 1)[-1]
            names_flag = bool(flag_attr) and flag_attr in source
            names_pair = (
                bool(fast_token)
                and bool(ref_token)
                and fast_token in source
                and ref_token in source
            )
            if not (names_flag or names_pair):
                yield self.finding(
                    seam.file,
                    seam.node,
                    f"differential test {test_path!r} for seam {name!r} "
                    f"mentions neither the flag {flag_attr!r} nor both "
                    f"implementations ({fast_token!r}/{ref_token!r}); the "
                    "test no longer exercises this seam",
                )
            # The flag the seam claims to flip must exist where it claims.
            flag_module = seam.get("flag_module")
            flag_file = project.file(
                "src/" + (flag_module or "").replace(".", "/") + ".py"
            )
            if flag_file is None or flag_attr not in (
                name for name, _ in _module_flags(flag_file)
            ):
                yield self.finding(
                    seam.file,
                    seam.node,
                    f"seam {name!r} claims flag {flag_module}.{flag_attr}, "
                    "but no such module-level boolean flag exists",
                )


class SeamFuzzLegRule(Rule):
    rule_id = "RPR103"
    title = "seam registered without a fuzz leg"
    rationale = (
        "repro.fuzz only flips seams that declare a leg; a legless seam "
        "escapes differential fuzzing (the runtime registry also refuses "
        "to fuzz while one exists)."
    )

    def check(self, project: ProjectIndex) -> Iterator[Finding]:
        for seam in collect_static_seams(project):
            name = seam.get("name") or "<unnamed>"
            has_kwarg = any(
                kw.arg == "fuzz_leg" for kw in seam.node.keywords
            )
            leg = seam.get("fuzz_leg")
            if has_kwarg and (leg is None or leg not in FUZZ_LEGS):
                yield self.finding(
                    seam.file,
                    seam.node,
                    f"seam {name!r} declares fuzz_leg={leg!r}; it must be "
                    f"one of {', '.join(repr(leg) for leg in FUZZ_LEGS)} so "
                    "repro.fuzz exercises the seam differentially",
                )


RULES = (
    SeamRegistrationRule(),
    SeamDifferentialTestRule(),
    SeamFuzzLegRule(),
)
