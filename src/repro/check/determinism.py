"""Determinism rules (RPR001–RPR005).

The repository's first standing rule is bit-for-bit determinism:
``parallel == serial``, and a fixed seed yields an identical fuzz digest
at any worker count. The engine directories (``sim/``, ``protocols/``,
``radio/``, ``adversary/``) therefore must not read any ambient
nondeterminism source — the process-global ``random`` state, the clock,
or the environment — and must not let unordered-container iteration
order leak into results. PR 6's slot-bucket-ordering bug was exactly the
RPR004 class: an order-sensitivity defect that a fuzz campaign had to
find after the fact instead of a review-time check.

Seeded randomness stays legal: ``random.Random(seed)`` instances (the
:mod:`repro.sim.rng` substream pattern) are explicit, owned state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.framework import (
    FileRule,
    Finding,
    ProjectIndex,
    SourceFile,
    dotted_name,
)

#: ``random`` module attributes that read/mutate the process-global
#: stream. Constructing an owned generator (``Random`` / ``SystemRandom``
#: as an explicit entropy choice) is allowed.
_GLOBAL_RANDOM_EXEMPT = ("Random", "SystemRandom")

#: Wall-clock reads. ``time.perf_counter`` is deliberately absent: it is
#: only meaningful for measurement, and the engine dirs don't measure.
_CLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
)


class EngineFileRule(FileRule):
    """A file rule scoped to the deterministic engine directories."""

    def applies_to(self, f: SourceFile) -> bool:
        return f.in_engine


class UnseededRandomRule(EngineFileRule):
    rule_id = "RPR001"
    title = "unseeded random.* call in engine code"
    rationale = (
        "The process-global random stream depends on import order and "
        "interpreter state; engine randomness must come from seeded "
        "random.Random substreams (repro.sim.rng)."
    )

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _GLOBAL_RANDOM_EXEMPT:
                        yield self.finding(
                            f,
                            node,
                            f"'from random import {alias.name}' pulls in the "
                            "process-global stream; use a seeded "
                            "random.Random substream (repro.sim.rng)",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name
                    and name.startswith("random.")
                    and name.count(".") == 1
                    and name.split(".")[1] not in _GLOBAL_RANDOM_EXEMPT
                ):
                    yield self.finding(
                        f,
                        node,
                        f"unseeded {name}() reads the process-global random "
                        "stream; draw from a seeded random.Random substream "
                        "(repro.sim.rng) instead",
                    )


class WallClockRule(EngineFileRule):
    rule_id = "RPR002"
    title = "wall-clock read in engine code"
    rationale = (
        "Clock reads make replays and differential legs diverge; rounds "
        "are the engine's only notion of time."
    )

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _CLOCK_CALLS:
                    yield self.finding(
                        f,
                        node,
                        f"{name}() reads the wall clock inside engine code; "
                        "simulation time is the round counter",
                    )


class EnvironReadRule(EngineFileRule):
    rule_id = "RPR003"
    title = "environment read in engine code"
    rationale = (
        "os.environ makes a run's result depend on the invoking shell; "
        "engine configuration must arrive through the ScenarioSpec."
    )

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Attribute) and (
                dotted_name(node) == "os.environ"
            ):
                yield self.finding(
                    f,
                    node,
                    "os.environ read inside engine code; configuration "
                    "belongs on the ScenarioSpec",
                )
            elif isinstance(node, ast.Call) and dotted_name(node.func) in (
                "os.getenv",
                "getenv",
            ):
                yield self.finding(
                    f,
                    node,
                    "os.getenv() inside engine code; configuration belongs "
                    "on the ScenarioSpec",
                )


def _is_set_expr(node: ast.AST, set_vars: set[str]) -> bool:
    """Whether ``node`` statically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func in ("set", "frozenset"):
            return True
        # set arithmetic on a known set variable: a.union(b), a.difference(b)
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        ):
            return _is_set_expr(node.func.value, set_vars)
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    return False


def _annotation_is_set(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted_name(annotation)
    if name is None and isinstance(annotation, ast.Constant):
        # string annotation like "set[NodeId]"
        text = str(annotation.value)
        return text.split("[")[0].strip() in ("set", "frozenset")
    return name in ("set", "frozenset") if name else False


class _SetIterationVisitor(ast.NodeVisitor):
    """Per-function scan for iteration over unordered sets."""

    def __init__(self) -> None:
        self.hits: list[tuple[ast.AST, str]] = []

    def _scan_function(self, func: ast.AST) -> None:
        set_vars: set[str] = set()
        # Pass 1: names statically bound to set values in this function.
        for node in ast.walk(func):
            if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # nested functions get their own scan
            if isinstance(node, ast.Assign) and _is_set_expr(
                node.value, set_vars
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_vars.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_set(node.annotation) or (
                    node.value is not None
                    and _is_set_expr(node.value, set_vars)
                ):
                    set_vars.add(node.target.id)
        # Order-insensitive consumers: a generator fed straight into an
        # aggregation (or into sorted/set itself) cannot leak iteration
        # order into results, so it is exempt.
        exempt: set[ast.AST] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and (dotted_name(node.func) or "")
                in ("all", "any", "sum", "len", "min", "max", "sorted",
                    "set", "frozenset")
                and node.args
            ):
                exempt.add(node.args[0])
        # Pass 2: iteration sites.
        for node in ast.walk(func):
            if isinstance(node, ast.For) and _is_set_expr(
                node.iter, set_vars
            ):
                self.hits.append((node.iter, "for-loop"))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if node in exempt:
                    continue
                for gen in node.generators:
                    if _is_set_expr(gen.iter, set_vars):
                        self.hits.append((gen.iter, "comprehension"))
            elif isinstance(node, ast.Call):
                func_name = dotted_name(node.func)
                if (
                    func_name in ("list", "tuple", "iter", "enumerate")
                    and node.args
                    and _is_set_expr(node.args[0], set_vars)
                ):
                    self.hits.append((node, f"{func_name}()"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


class UnorderedIterationRule(EngineFileRule):
    rule_id = "RPR004"
    title = "iteration over an unordered set in engine code"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history; order it with sorted(...) before it can leak into "
        "deliveries, traces, or reports (the PR-6 slot-bucket bug)."
    )

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        visitor = _SetIterationVisitor()
        visitor.visit(f.tree)
        for node, kind in visitor.hits:
            yield self.finding(
                f,
                node,
                f"{kind} iterates an unordered set; wrap it in sorted(...) "
                "so ordering cannot leak into results",
            )
        for node in ast.walk(f.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
            ):
                yield self.finding(
                    f,
                    node,
                    ".popitem() removes an arbitrary-looking entry; pop an "
                    "explicitly chosen key instead",
                )


def _key_uses_id(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "id":
            return True
    return False


class IdOrderingRule(EngineFileRule):
    rule_id = "RPR005"
    title = "id()-based ordering"
    rationale = (
        "id() is an allocation address — ordering by it differs between "
        "processes and runs, which breaks parallel == serial."
    )

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func) or (
                node.func.attr if isinstance(node.func, ast.Attribute) else ""
            )
            if func_name.split(".")[-1] not in ("sorted", "sort", "min", "max"):
                continue
            for kw in node.keywords:
                if kw.arg == "key" and _key_uses_id(kw.value):
                    yield self.finding(
                        f,
                        node,
                        "ordering by id() is address-dependent and differs "
                        "across processes; order by a stable key (node id, "
                        "coordinates, insertion index)",
                    )


RULES = (
    UnseededRandomRule(),
    WallClockRule(),
    EnvironReadRule(),
    UnorderedIterationRule(),
    IdOrderingRule(),
)
