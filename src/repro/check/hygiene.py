"""Hygiene rules (RPR301, RPR401).

- RPR301: NumPy is a strictly optional accelerator. A module-level
  ``import numpy`` outside a ``try/except ImportError`` guard makes the
  whole package unimportable on the no-numpy CI leg; imports must be
  guarded at module level or scoped inside functions that only run when
  the accelerator is engaged.
- RPR401: mutable default arguments are shared across calls — in a
  codebase whose sweep workers reuse warm processes, one mutated default
  leaks state between scenario runs and breaks parallel == serial.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.framework import (
    FileRule,
    Finding,
    ProjectIndex,
    SourceFile,
    dotted_name,
)

_NUMPY_MODULES = ("numpy", "scipy")


def _guarded_imports(tree: ast.Module) -> set[ast.stmt]:
    """Import statements inside a try/except that catches ImportError."""
    guarded: set[ast.stmt] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        catches_import_error = False
        for handler in node.handlers:
            types = []
            if handler.type is None:
                catches_import_error = True
                break
            if isinstance(handler.type, ast.Tuple):
                types = handler.type.elts
            else:
                types = [handler.type]
            for t in types:
                if (dotted_name(t) or "").split(".")[-1] in (
                    "ImportError",
                    "ModuleNotFoundError",
                ):
                    catches_import_error = True
        if not catches_import_error:
            continue
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                guarded.add(stmt)
    return guarded


def _function_imports(tree: ast.Module) -> set[ast.stmt]:
    """Import statements scoped inside a function body."""
    scoped: set[ast.stmt] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    scoped.add(stmt)
    return scoped


class OptionalNumpyRule(FileRule):
    rule_id = "RPR301"
    title = "module-level numpy import without an ImportError guard"
    rationale = (
        "NumPy is strictly optional (the no-numpy CI leg runs the whole "
        "suite without it); a bare module-level import breaks that leg."
    )

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        exempt = _guarded_imports(f.tree) | _function_imports(f.tree)
        for node in ast.walk(f.tree):
            if node in exempt:
                continue
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            else:
                continue
            for module in modules:
                root = module.split(".")[0]
                if root in _NUMPY_MODULES:
                    yield self.finding(
                        f,
                        node,
                        f"module-level 'import {module}' without a "
                        "try/except ImportError guard; NumPy is a strictly "
                        "optional accelerator — guard the import or scope "
                        "it inside the accelerated function",
                    )


class MutableDefaultRule(FileRule):
    rule_id = "RPR401"
    title = "mutable default argument"
    rationale = (
        "Default values are evaluated once and shared across calls; with "
        "warm worker processes a mutated default leaks state between "
        "scenario runs."
    )

    def applies_to(self, f: SourceFile) -> bool:
        return f.rel.startswith("src/")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in (
                "list",
                "dict",
                "set",
                "bytearray",
                "defaultdict",
                "Counter",
                "collections.defaultdict",
                "collections.Counter",
            )
        return False

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        f,
                        default,
                        f"mutable default argument in {node.name}(); use "
                        "None and create the value inside the function (or "
                        "dataclasses.field(default_factory=...))",
                    )


RULES = (
    OptionalNumpyRule(),
    MutableDefaultRule(),
)
