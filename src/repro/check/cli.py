"""CLI for ``python -m repro check``.

Exit status: 0 when the tree is clean (after inline suppressions and the
optional baseline), 1 when findings remain, 2 on usage/configuration
errors. ``--json`` emits machine-readable findings; ``--write-baseline``
snapshots the current findings so a large cleanup can land in stages —
CI runs with the committed baseline, which must stay empty (a test pins
this).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.check import ALL_RULES
from repro.check.framework import (
    ProjectIndex,
    load_baseline,
    run_rules,
    write_baseline,
)
from repro.errors import ConfigurationError

#: The committed baseline. It exists so `repro check` has a stable,
#: reviewable place for staged exclusions — and a test asserts it is
#: empty, which is the "no new debt" gate.
DEFAULT_BASELINE = ".repro-check-baseline.json"


def default_root() -> Path:
    """The project root: cwd when it looks right, else derived from the
    installed package location (src/repro/check/cli.py -> repo root)."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def list_rules() -> str:
    width = max(len(rule.rule_id) for rule in ALL_RULES)
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id.ljust(width)}  {rule.title}")
    return "\n".join(lines)


def check_command(
    *,
    root: str | None = None,
    baseline: str | None = None,
    as_json: bool = False,
    write_baseline_path: str | None = None,
    show_rules: bool = False,
) -> int:
    if show_rules:
        print(list_rules())
        return 0
    try:
        root_path = Path(root) if root is not None else default_root()
        project = ProjectIndex.load(root_path)
        baseline_path = (
            Path(baseline) if baseline is not None
            else root_path / DEFAULT_BASELINE
        )
        baseline_entries = load_baseline(baseline_path)
        findings = run_rules(project, ALL_RULES, baseline=baseline_entries)
        if write_baseline_path is not None:
            write_baseline(write_baseline_path, findings)
            print(
                f"wrote {len(findings)} finding(s) to {write_baseline_path}",
                file=sys.stderr,
            )
            return 0
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        scanned = len(project.files)
        suffix = f" [{len(baseline_entries)} baselined]" if baseline_entries else ""
        print(
            f"repro check: {len(findings)} finding(s) in {scanned} file(s), "
            f"{len(ALL_RULES)} rules{suffix}",
            file=sys.stderr,
        )
    return 1 if findings else 0
