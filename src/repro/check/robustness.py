"""Robustness rules (RPR501).

- RPR501: pool-break recovery is centralized. ``BrokenExecutor`` (and
  its ``BrokenProcessPool`` / ``BrokenThreadPool`` subclasses) may be
  caught *only* in :mod:`repro.runner.supervise` — the one module that
  owns respawn, backoff, and resubmission. An ``except BrokenExecutor``
  anywhere else either duplicates that policy (two retry layers
  multiplying each other's budgets) or silently swallows a dead pool.
  Other modules classify with
  :func:`repro.runner.supervise.is_pool_break` on an already-caught
  exception instead of naming the type in a handler.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.framework import (
    FileRule,
    Finding,
    ProjectIndex,
    SourceFile,
    dotted_name,
)

#: The one module allowed to spell the except clause.
_SUPERVISION_MODULE = "src/repro/runner/supervise.py"

_BROKEN_POOL_NAMES = (
    "BrokenExecutor",
    "BrokenProcessPool",
    "BrokenThreadPool",
)


class BrokenExecutorHandlerRule(FileRule):
    rule_id = "RPR501"
    title = "pool-break handler outside the supervision module"
    rationale = (
        "Worker-pool recovery (respawn, backoff, resubmission) lives in "
        "repro.runner.supervise; a second 'except BrokenExecutor' layer "
        "either duplicates the retry policy or hides a dead pool. Use "
        "repro.runner.supervise.is_pool_break() to classify instead."
    )

    def applies_to(self, f: SourceFile) -> bool:
        return f.rel != _SUPERVISION_MODULE

    def check_file(
        self, f: SourceFile, project: ProjectIndex
    ) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for t in types:
                name = (dotted_name(t) or "").split(".")[-1]
                if name in _BROKEN_POOL_NAMES:
                    yield self.finding(
                        f,
                        node,
                        f"'except {name}' outside repro.runner.supervise; "
                        "pool-break recovery is centralized there — catch "
                        "Exception and classify with supervise."
                        "is_pool_break(exc) instead",
                    )


RULES = (BrokenExecutorHandlerRule(),)
