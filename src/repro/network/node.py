"""Node role bookkeeping.

A :class:`NodeTable` assigns every grid node a :class:`~repro.types.Role`
and validates the paper's standing assumptions eagerly:

- exactly one source, and the source is honest;
- the bad set is *locally bounded*: no neighborhood (closed L∞ ball of
  radius r around any node) contains more than ``t`` bad nodes.

The local-boundedness check scans only the neighborhoods of bad nodes
(O(bad·(2r+1)⁴)) and runs once per scenario; placements that violate it
fail fast with :class:`PlacementError`.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PlacementError
from repro.network.grid import Grid
from repro.types import NodeId, Role


class NodeTable:
    """Roles for every node of a grid."""

    def __init__(self, grid: Grid, source: NodeId, bad: Iterable[NodeId]) -> None:
        self.grid = grid
        self.source = source
        self.bad: frozenset[NodeId] = frozenset(bad)
        if source in self.bad:
            raise PlacementError("the base station (source) must be honest")
        out_of_range = [b for b in self.bad if not 0 <= b < grid.n]
        if out_of_range:
            raise PlacementError(f"bad node ids outside grid: {out_of_range[:5]}")
        self._roles: list[Role] = [Role.GOOD] * grid.n
        for node_id in self.bad:
            self._roles[node_id] = Role.BAD
        self._roles[source] = Role.SOURCE
        self._good_ids: list[NodeId] | None = None
        self._bad_ids: list[NodeId] | None = None

    def role(self, node_id: NodeId) -> Role:
        return self._roles[node_id]

    def is_bad(self, node_id: NodeId) -> bool:
        return self._roles[node_id] is Role.BAD

    def is_honest(self, node_id: NodeId) -> bool:
        return self._roles[node_id] is not Role.BAD

    @property
    def good_ids(self) -> list[NodeId]:
        """All honest nodes, source included.

        Computed once (roles never change) but returned as a fresh copy
        per call: tables are shared process-wide by the scenario
        runner's warm cache, so a caller mutating its list must never
        reach the cached state.
        """
        if self._good_ids is None:
            roles = self._roles
            bad = Role.BAD
            self._good_ids = [
                nid for nid in self.grid.all_ids() if roles[nid] is not bad
            ]
        return list(self._good_ids)

    @property
    def bad_ids(self) -> list[NodeId]:
        if self._bad_ids is None:
            self._bad_ids = sorted(self.bad)
        return list(self._bad_ids)

    def bad_in_neighborhood(self, node_id: NodeId) -> int:
        """Number of bad nodes in the closed neighborhood of ``node_id``."""
        count = sum(1 for nb in self.grid.neighbors(node_id) if nb in self.bad)
        if node_id in self.bad:
            count += 1
        return count

    def max_bad_per_neighborhood(self) -> int:
        """The realized local bound — max over all closed neighborhoods."""
        if not self.bad:
            return 0
        return max(self.bad_in_neighborhood(nid) for nid in self.grid.all_ids())

    def validate_locally_bounded(self, t: int) -> None:
        """Raise :class:`PlacementError` unless every neighborhood has <= t bad.

        Only a node within ``r`` of a bad node can exceed the bound, so
        the scan covers the union of the bad nodes' closed neighborhoods
        — O(bad * (2r+1)^4) instead of O(n * (2r+1)^2), which is what
        lets a 10^6-node grid with a handful of bad nodes validate
        instantly. Candidates are visited in ascending id order so the
        first violation reported is identical to the full scan's.
        """
        if not self.bad:
            return
        candidates: set[NodeId] = set()
        for bad_id in self.bad:
            candidates.add(bad_id)
            candidates.update(self.grid.neighbors(bad_id))
        for node_id in sorted(candidates):
            count = self.bad_in_neighborhood(node_id)
            if count > t:
                raise PlacementError(
                    f"neighborhood of node {self.grid.coord_of(node_id)} contains "
                    f"{count} bad nodes, exceeding t={t}"
                )
