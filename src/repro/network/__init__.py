"""Grid network substrate: topology, node identity, and roles."""

from repro.network.grid import Grid, GridSpec
from repro.network.node import NodeTable

__all__ = ["Grid", "GridSpec", "NodeTable"]
