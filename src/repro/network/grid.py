"""Integer grid topology with L∞ neighborhoods, toroidal or bounded.

The paper's network is a grid with one node per unit cell, transmission
radius ``r`` in the L∞ metric, and toroidal wrap-around "to avoid edge
effects". Impossibility experiments sometimes prefer a bounded grid where
a single stripe disconnects the network; both variants are supported.

Node ids are dense row-major integers (``id = y * width + x``) so that
per-node state lives in flat lists — this matters, as neighborhood
iteration is the hottest loop in the simulator.

Fast-path layout
----------------

Besides the legacy per-node neighbor tuples (offset order, kept stable
because adversary plans and tests iterate them), a :class:`Grid`
precomputes a *dense CSR-style* neighbor table:

- ``neighbor_ids`` — one flat ``array('q')`` of all neighbor ids,
  ascending within each node's segment;
- ``neighbor_starts`` — ``n + 1`` offsets so node ``v``'s neighbors are
  ``neighbor_ids[neighbor_starts[v]:neighbor_starts[v + 1]]``.

:meth:`neighbors_sorted` exposes the same segments as tuples — each one
is materialized by slicing ``neighbor_ids``, so the CSR table is the
single source of truth and the tuple view is what hot loops iterate
(tuple iteration only increfs pre-boxed ints; indexing an ``array``
boxes on every access). The per-slot delivery resolver
(:mod:`repro.radio.medium`) combines this with dense id-indexed scratch
buffers to do steady-state slot resolution with no dict/set churn;
``python -m repro bench`` tracks its speedup.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geometry.linf import chebyshev, chebyshev_torus, linf_ball_offsets
from repro.types import Coord, NodeId


@dataclass(frozen=True)
class GridSpec:
    """Static description of a grid network.

    Attributes:
        width/height: grid dimensions (nodes per row / column).
        r: transmission radius (L∞).
        torus: whether edges wrap. Toroidal grids must be at least
            ``2*(2r+1)`` on each side so that a neighborhood never wraps
            onto itself and TDMA slot classes stay collision-free.
    """

    width: int
    height: int
    r: int
    torus: bool = True

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ConfigurationError(f"transmission radius must be >= 1, got {self.r}")
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("grid dimensions must be positive")
        side = 2 * self.r + 1
        if self.torus:
            if self.width < 2 * side or self.height < 2 * side:
                raise ConfigurationError(
                    f"toroidal grid must be at least {2 * side} per side for r={self.r}; "
                    f"got {self.width}x{self.height}"
                )
            if self.width % side or self.height % side:
                raise ConfigurationError(
                    f"toroidal dimensions must be multiples of 2r+1={side} so the TDMA "
                    f"coloring stays collision-free across the wrap; got "
                    f"{self.width}x{self.height}"
                )

    @property
    def n(self) -> int:
        """Total number of nodes."""
        return self.width * self.height

    @property
    def neighborhood_size(self) -> int:
        """Open neighborhood size ``(2r+1)^2 - 1`` (interior nodes)."""
        side = 2 * self.r + 1
        return side * side - 1

    @property
    def half_neighborhood(self) -> int:
        """The paper's recurring quantity ``r(2r+1)``."""
        return self.r * (2 * self.r + 1)


class Grid:
    """A concrete grid with precomputed neighborhoods.

    >>> grid = Grid(GridSpec(10, 10, r=1, torus=True))
    >>> len(grid.neighbors(grid.id_of((0, 0))))
    8
    """

    def __init__(self, spec: GridSpec) -> None:
        self.spec = spec
        self.width = spec.width
        self.height = spec.height
        self.r = spec.r
        self.torus = spec.torus
        self.n = spec.n
        self._neighbors: list[tuple[NodeId, ...]] = self._build_neighbors()
        self.neighbor_starts: array
        self.neighbor_ids: array
        self._neighbors_sorted: list[tuple[NodeId, ...]]
        self._build_flat_neighbors()

    # -- identity ---------------------------------------------------------

    def id_of(self, coord: Coord) -> NodeId:
        """Node id at a coordinate (wrapped on a torus, validated otherwise)."""
        x, y = coord
        if self.torus:
            x %= self.width
            y %= self.height
        elif not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"coordinate {coord} outside bounded grid")
        return y * self.width + x

    def coord_of(self, node_id: NodeId) -> Coord:
        if not 0 <= node_id < self.n:
            raise ConfigurationError(f"node id {node_id} out of range")
        return (node_id % self.width, node_id // self.width)

    def all_ids(self) -> range:
        return range(self.n)

    # -- metric -----------------------------------------------------------

    def distance(self, a: NodeId, b: NodeId) -> int:
        """L∞ distance between two nodes (toroidal if the grid wraps)."""
        ca, cb = self.coord_of(a), self.coord_of(b)
        if self.torus:
            return chebyshev_torus(ca, cb, self.width, self.height)
        return chebyshev(ca, cb)

    def neighbors(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """Open L∞ neighborhood (excludes the node itself)."""
        return self._neighbors[node_id]

    def neighbors_sorted(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """Open neighborhood as an ascending id tuple (fast-path view).

        Same members as :meth:`neighbors`, ordered by id — the view the
        per-slot delivery resolver iterates so its output comes out
        already sorted by receiver.
        """
        return self._neighbors_sorted[node_id]

    def closed_neighborhood(self, node_id: NodeId) -> tuple[NodeId, ...]:
        return self._neighbors[node_id] + (node_id,)

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        return a != b and self.distance(a, b) <= self.r

    def common_neighbors(self, a: NodeId, b: NodeId) -> set[NodeId]:
        return set(self._neighbors[a]) & set(self._neighbors[b])

    # -- construction -----------------------------------------------------

    def _build_neighbors(self) -> list[tuple[NodeId, ...]]:
        offsets = linf_ball_offsets(self.r)
        width, height = self.width, self.height
        table: list[tuple[NodeId, ...]] = []
        for node_id in range(self.n):
            x, y = node_id % width, node_id // width
            if self.torus:
                ids = tuple(
                    ((y + dy) % height) * width + ((x + dx) % width)
                    for dx, dy in offsets
                )
            else:
                ids = tuple(
                    (y + dy) * width + (x + dx)
                    for dx, dy in offsets
                    if 0 <= x + dx < width and 0 <= y + dy < height
                )
            table.append(ids)
        return table

    def _build_flat_neighbors(self) -> None:
        """Build the dense CSR neighbor table from the offset-order tuples.

        ``neighbor_ids`` holds every node's neighbors ascending; the
        sorted per-node tuples are sliced straight out of it so the two
        views can never drift apart.
        """
        starts = array("q", [0])
        flat = array("q")
        for ids in self._neighbors:
            flat.extend(sorted(ids))
            starts.append(len(flat))
        self.neighbor_starts = starts
        self.neighbor_ids = flat
        self._neighbors_sorted = [
            tuple(flat[starts[v] : starts[v + 1]]) for v in range(self.n)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "torus" if self.torus else "bounded"
        return f"<Grid {self.width}x{self.height} r={self.r} {kind}>"
