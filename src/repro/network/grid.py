"""Integer grid topology with L∞ neighborhoods, toroidal or bounded.

The paper's network is a grid with one node per unit cell, transmission
radius ``r`` in the L∞ metric, and toroidal wrap-around "to avoid edge
effects". Impossibility experiments sometimes prefer a bounded grid where
a single stripe disconnects the network; both variants are supported.

Node ids are dense row-major integers (``id = y * width + x``) so that
per-node state lives in flat lists — this matters, as neighborhood
iteration is the hottest loop in the simulator.

Fast-path layout
----------------

Besides the legacy per-node neighbor tuples (offset order, kept stable
because adversary plans and tests iterate them), a :class:`Grid`
precomputes a *dense CSR-style* neighbor table:

- ``neighbor_ids`` — one flat ``array('q')`` of all neighbor ids,
  ascending within each node's segment;
- ``neighbor_starts`` — ``n + 1`` offsets so node ``v``'s neighbors are
  ``neighbor_ids[neighbor_starts[v]:neighbor_starts[v + 1]]``.

:meth:`neighbors_sorted` exposes the same segments as tuples — each one
is materialized by slicing ``neighbor_ids``, so the CSR table is the
single source of truth and the tuple view is what hot loops iterate
(tuple iteration only increfs pre-boxed ints; indexing an ``array``
boxes on every access). The per-slot delivery resolver
(:mod:`repro.radio.medium`) combines this with dense id-indexed scratch
buffers to do steady-state slot resolution with no dict/set churn;
``python -m repro bench`` tracks its speedup.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

try:  # optional accelerator; every path below has a pure-python twin
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from repro.errors import ConfigurationError
from repro.geometry.linf import chebyshev, chebyshev_torus, linf_ball_offsets
from repro.types import Coord, NodeId

#: Build the CSR neighbor table with NumPy when it is available. The
#: result is byte-identical to the python build (tests pin this); the
#: flag exists so the differential suite can force the python path.
DEFAULT_FAST_BUILD = True


class _LazyNeighborView:
    """List-like per-node neighbor tuples, materialized on first access.

    The numpy grid build produces only the flat CSR arrays; this view
    recovers the legacy ``list[tuple[NodeId, ...]]`` interface without
    paying for a million tuple allocations up front. Materialized rows
    are cached, so hot loops that iterate one node's tuple repeatedly
    (adversary plans, the slot resolver) see plain pre-boxed ints
    exactly like the eager build.
    """

    __slots__ = ("_rows", "_make")

    def __init__(self, n: int, make) -> None:
        self._rows: list[tuple[NodeId, ...] | None] = [None] * n
        self._make = make

    def __getitem__(self, node_id: NodeId) -> tuple[NodeId, ...]:
        row = self._rows[node_id]
        if row is None:
            row = self._rows[node_id] = self._make(node_id)
        return row

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        for node_id in range(len(self._rows)):
            yield self[node_id]


@dataclass(frozen=True)
class GridSpec:
    """Static description of a grid network.

    Attributes:
        width/height: grid dimensions (nodes per row / column).
        r: transmission radius (L∞).
        torus: whether edges wrap. Toroidal grids must be at least
            ``2*(2r+1)`` on each side so that a neighborhood never wraps
            onto itself and TDMA slot classes stay collision-free.
    """

    width: int
    height: int
    r: int
    torus: bool = True

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ConfigurationError(f"transmission radius must be >= 1, got {self.r}")
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("grid dimensions must be positive")
        side = 2 * self.r + 1
        if self.torus:
            if self.width < 2 * side or self.height < 2 * side:
                raise ConfigurationError(
                    f"toroidal grid must be at least {2 * side} per side for r={self.r}; "
                    f"got {self.width}x{self.height}"
                )
            if self.width % side or self.height % side:
                raise ConfigurationError(
                    f"toroidal dimensions must be multiples of 2r+1={side} so the TDMA "
                    f"coloring stays collision-free across the wrap; got "
                    f"{self.width}x{self.height}"
                )

    @property
    def n(self) -> int:
        """Total number of nodes."""
        return self.width * self.height

    @property
    def neighborhood_size(self) -> int:
        """Open neighborhood size ``(2r+1)^2 - 1`` (interior nodes)."""
        side = 2 * self.r + 1
        return side * side - 1

    @property
    def half_neighborhood(self) -> int:
        """The paper's recurring quantity ``r(2r+1)``."""
        return self.r * (2 * self.r + 1)


class Grid:
    """A concrete grid with precomputed neighborhoods.

    >>> grid = Grid(GridSpec(10, 10, r=1, torus=True))
    >>> len(grid.neighbors(grid.id_of((0, 0))))
    8
    """

    def __init__(self, spec: GridSpec) -> None:
        self.spec = spec
        self.width = spec.width
        self.height = spec.height
        self.r = spec.r
        self.torus = spec.torus
        self.n = spec.n
        # CSR table backing: the python build fills the array('q') pair
        # eagerly; the numpy build keeps int64 arrays and materializes
        # the array('q') views lazily (a 10^6-node grid pays the 200MB
        # copy only if a python-loop consumer actually asks for it).
        self._starts_arr: array | None = None
        self._ids_arr: array | None = None
        self._starts_np = None
        self._ids_np = None
        if _np is not None and DEFAULT_FAST_BUILD:
            self._build_neighbors_numpy()
        else:
            self._neighbors: list[tuple[NodeId, ...]] = self._build_neighbors()
            self._neighbors_sorted: list[tuple[NodeId, ...]]
            self._build_flat_neighbors()

    # -- CSR views --------------------------------------------------------

    @property
    def neighbor_starts(self) -> array:
        """``n + 1`` segment offsets into :attr:`neighbor_ids` (``array('q')``)."""
        arr = self._starts_arr
        if arr is None:
            arr = self._starts_arr = array("q")
            arr.frombytes(self._starts_np.reshape(-1).data.cast("B"))
        return arr

    @property
    def neighbor_ids(self) -> array:
        """All neighbor ids, ascending within each segment (``array('q')``)."""
        arr = self._ids_arr
        if arr is None:
            arr = self._ids_arr = array("q")
            arr.frombytes(self._ids_np.reshape(-1).data.cast("B"))
        return arr

    def csr_arrays(self):
        """The CSR table as ``(starts, ids)`` int64 NumPy arrays.

        Zero-copy from whichever backing the build produced; only valid
        when NumPy is importable (the vector kernel is the consumer).
        """
        if self._starts_np is not None:
            return self._starts_np, self._ids_np
        starts = _np.frombuffer(self.neighbor_starts, dtype=_np.int64)
        ids = _np.frombuffer(self.neighbor_ids, dtype=_np.int64)
        return starts, ids

    # -- identity ---------------------------------------------------------

    def id_of(self, coord: Coord) -> NodeId:
        """Node id at a coordinate (wrapped on a torus, validated otherwise)."""
        x, y = coord
        if self.torus:
            x %= self.width
            y %= self.height
        elif not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigurationError(f"coordinate {coord} outside bounded grid")
        return y * self.width + x

    def coord_of(self, node_id: NodeId) -> Coord:
        if not 0 <= node_id < self.n:
            raise ConfigurationError(f"node id {node_id} out of range")
        return (node_id % self.width, node_id // self.width)

    def all_ids(self) -> range:
        return range(self.n)

    # -- metric -----------------------------------------------------------

    def distance(self, a: NodeId, b: NodeId) -> int:
        """L∞ distance between two nodes (toroidal if the grid wraps)."""
        ca, cb = self.coord_of(a), self.coord_of(b)
        if self.torus:
            return chebyshev_torus(ca, cb, self.width, self.height)
        return chebyshev(ca, cb)

    def neighbors(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """Open L∞ neighborhood (excludes the node itself)."""
        return self._neighbors[node_id]

    def neighbors_sorted(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """Open neighborhood as an ascending id tuple (fast-path view).

        Same members as :meth:`neighbors`, ordered by id — the view the
        per-slot delivery resolver iterates so its output comes out
        already sorted by receiver.
        """
        return self._neighbors_sorted[node_id]

    def closed_neighborhood(self, node_id: NodeId) -> tuple[NodeId, ...]:
        return self._neighbors[node_id] + (node_id,)

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        return a != b and self.distance(a, b) <= self.r

    def common_neighbors(self, a: NodeId, b: NodeId) -> set[NodeId]:
        return set(self._neighbors[a]) & set(self._neighbors[b])

    # -- construction -----------------------------------------------------

    def _build_neighbors(self) -> list[tuple[NodeId, ...]]:
        offsets = linf_ball_offsets(self.r)
        width, height = self.width, self.height
        table: list[tuple[NodeId, ...]] = []
        for node_id in range(self.n):
            x, y = node_id % width, node_id // width
            if self.torus:
                ids = tuple(
                    ((y + dy) % height) * width + ((x + dx) % width)
                    for dx, dy in offsets
                )
            else:
                ids = tuple(
                    (y + dy) * width + (x + dx)
                    for dx, dy in offsets
                    if 0 <= x + dx < width and 0 <= y + dy < height
                )
            table.append(ids)
        return table

    def _build_flat_neighbors(self) -> None:
        """Build the dense CSR neighbor table from the offset-order tuples.

        ``neighbor_ids`` holds every node's neighbors ascending; the
        sorted per-node tuples are sliced straight out of it so the two
        views can never drift apart.
        """
        starts = array("q", [0])
        flat = array("q")
        for ids in self._neighbors:
            flat.extend(sorted(ids))
            starts.append(len(flat))
        self._starts_arr = starts
        self._ids_arr = flat
        self._neighbors_sorted = [
            tuple(flat[starts[v] : starts[v + 1]]) for v in range(self.n)
        ]

    def _build_neighbors_numpy(self) -> None:
        """NumPy twin of the neighbor-table build (identical output).

        An interior node's ascending neighbor ids are exactly
        ``id + sorted(dy*width + dx)`` — a single broadcast add, no
        per-row sort. Only the O(r * perimeter) rows within ``r`` of an
        edge wrap (torus) or truncate (bounded); those few are fixed up
        with the scalar formula. The legacy per-node tuple views
        (``_neighbors`` in offset order, ``_neighbors_sorted``
        ascending) become lazy slices so a 10^6-node grid never
        materializes a million tuples it will not touch.
        """
        offsets = linf_ball_offsets(self.r)
        width, height, n, r = self.width, self.height, self.n, self.r
        k = len(offsets)
        interior_offs = _np.array(
            sorted(dy * width + dx for dx, dy in offsets), dtype=_np.int64
        )
        ids = _np.arange(n, dtype=_np.int64)
        cols = ids[:, None] + interior_offs
        xs = ids % width
        ys = ids // width
        edge = (xs < r) | (xs >= width - r) | (ys < r) | (ys >= height - r)
        sentinel = n  # bounded rows are padded; sentinels never survive
        for v in _np.nonzero(edge)[0].tolist():
            x, y = v % width, v // width
            if self.torus:
                row = sorted(
                    ((y + dy) % height) * width + ((x + dx) % width)
                    for dx, dy in offsets
                )
            else:
                row = sorted(
                    (y + dy) * width + (x + dx)
                    for dx, dy in offsets
                    if 0 <= x + dx < width and 0 <= y + dy < height
                )
                row += [sentinel] * (k - len(row))
            cols[v, :] = row
        if self.torus:
            flat_np = cols.reshape(-1)
            starts_np = _np.arange(0, (n + 1) * k, k, dtype=_np.int64)
        else:
            keep = cols < sentinel
            flat_np = cols[keep]
            starts_np = _np.zeros(n + 1, dtype=_np.int64)
            _np.cumsum(keep.sum(axis=1), out=starts_np[1:])
        self._starts_np = _np.ascontiguousarray(starts_np)
        self._ids_np = _np.ascontiguousarray(flat_np)
        self._neighbors = _LazyNeighborView(n, self._offset_row)
        self._neighbors_sorted = _LazyNeighborView(n, self._sorted_row)

    def _offset_row(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """One node's neighbors in ball-offset order (the legacy order)."""
        offsets = linf_ball_offsets(self.r)
        width, height = self.width, self.height
        x, y = node_id % width, node_id // width
        if self.torus:
            return tuple(
                ((y + dy) % height) * width + ((x + dx) % width)
                for dx, dy in offsets
            )
        return tuple(
            (y + dy) * width + (x + dx)
            for dx, dy in offsets
            if 0 <= x + dx < width and 0 <= y + dy < height
        )

    def _sorted_row(self, node_id: NodeId) -> tuple[NodeId, ...]:
        """One node's neighbors ascending, sliced from the CSR table."""
        starts, ids = self._starts_np, self._ids_np
        if ids is not None:  # slice the int64 backing; tolist boxes to int
            return tuple(ids[starts[node_id] : starts[node_id + 1]].tolist())
        starts = self.neighbor_starts
        return tuple(self.neighbor_ids[starts[node_id] : starts[node_id + 1]])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "torus" if self.torus else "bounded"
        return f"<Grid {self.width}x{self.height} r={self.r} {kind}>"


from repro import seams as _seams  # noqa: E402

_seams.register(
    _seams.Seam(
        name="grid-build",
        flag_module="repro.network.grid",
        flag_attr="DEFAULT_FAST_BUILD",
        fast="repro.network.grid.Grid._build_neighbors_numpy",
        reference="repro.network.grid.Grid._build_neighbors",
        differential_test="tests/test_vectorized.py",
        fuzz_leg="fast",
        description="NumPy CSR neighbor-table build vs the python build",
    )
)
