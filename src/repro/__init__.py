"""repro — reproduction of *Message-Efficient Byzantine Fault-Tolerant
Broadcast in a Multi-Hop Wireless Sensor Network* (Bertier, Kermarrec,
Tan — ICDCS 2010).

The package implements the paper's full system stack from scratch:

- a toroidal/bounded grid radio network with L∞ neighborhoods, a
  collision-free TDMA schedule, per-node message budgets, and the paper's
  adversarial collision semantics (:mod:`repro.network`, :mod:`repro.radio`);
- worst-case adversaries realizing the lower-bound constructions
  (:mod:`repro.adversary`);
- the paper's protocols — **B** (§3), **B_heter** (§4), **B_reactive**
  (§5) — plus the Koo-et-al. repetition baseline and certified
  propagation (:mod:`repro.protocols`);
- the two-level integrity coding scheme and the I-code baseline
  (:mod:`repro.coding`);
- closed-form bounds and budget assignments (:mod:`repro.analysis`);
- scenario runners and experiment harnesses regenerating every
  figure/theorem of the paper (:mod:`repro.runner`, :mod:`repro.experiments`).

Quickstart — scenarios are declarative, serializable values
(:mod:`repro.scenario`)::

    from repro import GridSpec, ScenarioSpec, StripePlacement, run_scenario

    spec = ScenarioSpec(
        grid=GridSpec(width=30, height=30, r=2, torus=True),
        t=2, mf=2,
        placement=StripePlacement(y0=8, t=2),
        protocol="b",            # registry name; behavior defaults to "jam"
    )
    report = run_scenario(spec)
    assert report.success  # m = 2*m0 suffices (Theorem 2)

    text = spec.to_json()                    # a scenario is just JSON ...
    assert ScenarioSpec.from_json(text) == spec
    spec.content_hash()                      # ... with a stable identity
    # `python -m repro scenario run file.json` runs it with no Python edits.

Regenerating the paper (CLI)::

    python -m repro list                        # the 13 experiments
    python -m repro run e2 e7 --workers 4       # parallel sweeps
    python -m repro run all --cache-dir .cache  # memoize per-point results
    python -m repro scenario run figure2        # bundled preset scenarios

Experiments resolve through :mod:`repro.experiments.registry` and execute
on :func:`repro.runner.parallel.sweep`: points fan out over spawn-safe
worker processes (``--workers``, bit-identical to a serial run) and an
on-disk JSON cache keyed by a stable hash of each config point
(``--cache-dir``) skips everything already computed — re-running an
experiment only pays for points whose configuration changed.
Programmatic use::

    from repro import ResultCache, parallel_sweep
    from repro.experiments import registry

    result = registry.get("e8").run(workers=4, cache=ResultCache(".cache"))
"""

from repro._version import __version__
from repro.adversary import (
    LatticePlacement,
    NullAdversary,
    RandomPlacement,
    SpamLiar,
    SpoofingJammer,
    StripePlacement,
    ThresholdGuardJammer,
    two_stripe_band,
)
from repro.analysis import (
    BroadcastOutcome,
    BudgetAssignment,
    MessageCosts,
    corollary1_max_tolerable_t,
    corollary1_min_breakable_t,
    heterogeneous_assignment,
    homogeneous_assignment,
    koo_budget,
    m0,
    max_reactive_t,
    protocol_b_relay_count,
    theorem4_budget,
)
from repro.coding import ChainCode, ICode, SubbitCodec, UnidirectionalChannel
from repro.errors import (
    BudgetExceededError,
    CodingError,
    ConfigurationError,
    PlacementError,
    ReproError,
    ScheduleConflictError,
    SimulationError,
)
from repro.network import Grid, GridSpec, NodeTable
from repro.protocols import (
    BroadcastParams,
    make_cpa_nodes,
    make_koo_nodes,
    make_protocol_b_nodes,
    make_protocol_heter_nodes,
    make_reactive_nodes,
    protocol_b_required_budget,
)
from repro.radio import BudgetLedger, RoundDriver, RunLimits, TdmaSchedule
from repro.runner import (
    BroadcastReport,
    ReactiveRunConfig,
    ResultCache,
    SweepProgress,
    SweepResult,
    ThresholdRunConfig,
    format_table,
    parallel_sweep,
    point_key,
    point_seed,
    run_reactive_broadcast,
    run_threshold_broadcast,
    sweep,
)
from repro.scenario import ScenarioOutcome, ScenarioSpec
from repro.scenario import preset as scenario_preset
from repro.scenario import preset_names as scenario_preset_names
from repro.scenario import run as run_scenario
from repro.scenario import run_summary as run_scenario_summary
from repro.types import VFALSE, VTRUE, Role

__all__ = [
    "__version__",
    # network / radio
    "Grid",
    "GridSpec",
    "NodeTable",
    "BudgetLedger",
    "RoundDriver",
    "RunLimits",
    "TdmaSchedule",
    # adversary
    "LatticePlacement",
    "NullAdversary",
    "RandomPlacement",
    "SpamLiar",
    "SpoofingJammer",
    "StripePlacement",
    "ThresholdGuardJammer",
    "two_stripe_band",
    # analysis
    "BroadcastOutcome",
    "BudgetAssignment",
    "MessageCosts",
    "corollary1_max_tolerable_t",
    "corollary1_min_breakable_t",
    "heterogeneous_assignment",
    "homogeneous_assignment",
    "koo_budget",
    "m0",
    "max_reactive_t",
    "protocol_b_relay_count",
    "theorem4_budget",
    # coding
    "ChainCode",
    "ICode",
    "SubbitCodec",
    "UnidirectionalChannel",
    # protocols
    "BroadcastParams",
    "make_cpa_nodes",
    "make_koo_nodes",
    "make_protocol_b_nodes",
    "make_protocol_heter_nodes",
    "make_reactive_nodes",
    "protocol_b_required_budget",
    # scenario
    "ScenarioSpec",
    "ScenarioOutcome",
    "run_scenario",
    "run_scenario_summary",
    "scenario_preset",
    "scenario_preset_names",
    # runner
    "BroadcastReport",
    "ReactiveRunConfig",
    "ResultCache",
    "SweepProgress",
    "SweepResult",
    "ThresholdRunConfig",
    "format_table",
    "parallel_sweep",
    "point_key",
    "point_seed",
    "run_reactive_broadcast",
    "run_threshold_broadcast",
    "sweep",
    # errors
    "ReproError",
    "ConfigurationError",
    "BudgetExceededError",
    "CodingError",
    "PlacementError",
    "ScheduleConflictError",
    "SimulationError",
    # values
    "VTRUE",
    "VFALSE",
    "Role",
]
