"""Non-jamming and spoofing adversary behaviors.

- :class:`SpamLiar` — bad nodes broadcast a wrong value in their own TDMA
  slots until their budget runs out. Powerless against the threshold
  protocols (Lemma 1: at most ``t*mf`` wrong copies per receiver), which
  is exactly what correctness tests use it for.
- :class:`SpoofingJammer` — jams honest transmissions and makes the
  garbled result look like the *victim* endorsed a wrong value. Defeats
  naive certified propagation (each jammed relay becomes a distinct fake
  endorsement), demonstrating why §5 needs the integrity code; the coded
  channel reduces this attack to the ``2^-L`` guessing game.
"""

from __future__ import annotations

import itertools

from repro.adversary.base import Adversary
from repro.network.grid import Grid
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.messages import BadTransmission, Transmission
from repro.radio.schedule import TdmaSchedule
from repro.types import VFALSE, NodeId, Value


class SpamLiar(Adversary):
    """Every bad node repeats a wrong value in its own slot, budget permitting.

    Transmitting in the node's own TDMA slot never collides with honest
    traffic (same-slot nodes share no receiver), so this is a pure
    value-planting attack. Spontaneous by nature, but observe-stateless:
    ``on_slot`` reads only the slot map and the ledger.
    """

    observe_stateless = True

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        ledger: BudgetLedger,
        *,
        wrong_value: Value = VFALSE,
    ) -> None:
        self.table = table
        self.ledger = ledger
        self.wrong_value = wrong_value
        self.schedule = TdmaSchedule(grid)
        self._by_slot: dict[int, list[NodeId]] = {}
        for bad in table.bad_ids:
            self._by_slot.setdefault(self.schedule.slot_of(bad), []).append(bad)

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        return [
            BadTransmission(sender=bad, value=self.wrong_value)
            for bad in self._by_slot.get(slot, ())
            if self.ledger.can_send(bad)
        ]

    def has_pending(self) -> bool:
        return any(
            self.ledger.can_send(bad)
            for bads in self._by_slot.values()
            for bad in bads
        )


class SpoofingJammer(Adversary):
    """Jam relays and forge the victims' endorsements (anti-CPA attack).

    For every honest transmission, one in-range bad node (within ``2r``,
    i.e. sharing at least one receiver) collides with it and dictates
    that common neighbors hear ``wrong_value`` *apparently from the
    victim*. Against sender-counting protocols each jam simultaneously
    suppresses a real endorsement and manufactures a fake one.

    Purely reactive and observe-stateless: ``on_slot`` reads only its
    own caches and the ledger.
    """

    spontaneous = False
    observe_stateless = True

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        ledger: BudgetLedger,
        *,
        wrong_value: Value = VFALSE,
        jammers_per_victim: int = 1,
    ) -> None:
        self.grid = grid
        self.table = table
        self.ledger = ledger
        self.wrong_value = wrong_value
        self.jammers_per_victim = jammers_per_victim
        self._near: dict[NodeId, tuple[NodeId, ...]] = {}
        self.jams = 0

    def _jammers_for(self, sender: NodeId) -> tuple[NodeId, ...]:
        cached = self._near.get(sender)
        if cached is None:
            reach = 2 * self.grid.r
            cached = tuple(
                bad
                for bad in self.table.bad_ids
                if self.grid.distance(bad, sender) <= reach
            )
            self._near[sender] = cached
        return cached

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        actions: list[BadTransmission] = []
        used_this_slot: set[NodeId] = set()
        for victim in honest:
            candidates = (
                jammer
                for jammer in self._jammers_for(victim.sender)
                if jammer not in used_this_slot and self.ledger.can_send(jammer)
            )
            for jammer in itertools.islice(candidates, self.jammers_per_victim):
                used_this_slot.add(jammer)
                actions.append(
                    BadTransmission(
                        sender=jammer,
                        value=self.wrong_value,
                        spoof_sender=victim.sender,
                    )
                )
        self.jams += len(actions)
        return actions


from repro.scenario.registries import BehaviorEntry, behaviors as _behaviors  # noqa: E402

_behaviors.register(
    "lie",
    BehaviorEntry(
        "lie",
        lambda ctx: SpamLiar(ctx.grid, ctx.table, ctx.ledger),
        "bad nodes spam a wrong value in their own slots",
    ),
)
_behaviors.register(
    "spoof",
    BehaviorEntry(
        "spoof",
        lambda ctx: SpoofingJammer(ctx.grid, ctx.table, ctx.ledger),
        "jam relays and forge the victims' endorsements (anti-CPA)",
    ),
)
