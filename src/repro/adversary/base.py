"""Adversary behavior base classes."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.radio.medium import Delivery
from repro.radio.messages import BadTransmission, Transmission


class Adversary(ABC):
    """A single coordinated Byzantine mind controlling all bad nodes.

    The driver consults it at every slot (:meth:`on_slot`) and shows it
    every delivery (:meth:`observe`) — the adversary is omniscient, which
    is the right model for worst-case analysis: anything a weaker
    adversary achieves, this one can.
    """

    @abstractmethod
    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        """Byzantine transmissions for this slot."""

    def observe(self, deliveries: list[Delivery]) -> None:
        """Default: ignore (stateless adversaries)."""

    def has_pending(self) -> bool:
        """Default: purely reactive — never keeps a run alive by itself."""
        return False


class NullAdversary(Adversary):
    """Bad nodes that never transmit (crash-faulty placement, clean runs)."""

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        return []


from repro.scenario.registries import BehaviorEntry, behaviors as _behaviors  # noqa: E402

_behaviors.register(
    "none",
    BehaviorEntry(
        "none",
        lambda ctx: NullAdversary(),
        "bad nodes never transmit (crash faults, clean runs)",
    ),
)
