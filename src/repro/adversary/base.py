"""Adversary behavior base classes."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.radio.medium import Delivery
from repro.radio.messages import BadTransmission, Transmission


class Adversary(ABC):
    """A single coordinated Byzantine mind controlling all bad nodes.

    The driver consults it at every slot (:meth:`on_slot`) and shows it
    every delivery (:meth:`observe`) — the adversary is omniscient, which
    is the right model for worst-case analysis: anything a weaker
    adversary achieves, this one can.

    Fast-path capability flags (see
    :class:`~repro.radio.mac.AdversaryLike`; both default conservative):

    - ``spontaneous``: set ``False`` on subclasses whose ``on_slot`` is
      an effect-free ``[]`` whenever ``honest`` is empty, so the driver
      may skip empty slots. Re-evaluate when subclassing further.
    - ``observe_stateless``: set ``True`` on subclasses whose
      ``observe`` has no observable effect and whose ``on_slot`` /
      ``has_pending`` read no delivery- or protocol-node-derived state,
      enabling the driver's burst dedup.
    - ``observe_inert_when_broke``: set ``True`` on subclasses whose
      ``observe`` maintains state that is only ever read by ``on_slot``
      — so skipping ``observe`` entirely is unobservable in any run
      where no bad node can ever transmit. The vectorized whole-grid
      kernel (:mod:`repro.protocols.vectorized`) requires one of these
      two flags (or an un-overridden ``observe``) to engage.

    Additionally, every adversary must satisfy the driver contract that
    ``on_slot`` is an effect-free ``[]`` once no bad node has ledger
    budget left (the driver stops consulting it then).
    """

    spontaneous = True
    observe_stateless = False
    observe_inert_when_broke = False

    @abstractmethod
    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        """Byzantine transmissions for this slot."""

    def observe(self, deliveries: list[Delivery]) -> None:
        """Default: ignore (stateless adversaries)."""

    def has_pending(self) -> bool:
        """Default: purely reactive — never keeps a run alive by itself."""
        return False


class NullAdversary(Adversary):
    """Bad nodes that never transmit (crash-faulty placement, clean runs).

    ``spontaneous`` stays ``True``: test doubles subclass this with
    transmitting ``on_slot`` overrides, so the empty-slot skip must not
    be inherited silently.
    """

    observe_stateless = True

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        return []


from repro.scenario.registries import BehaviorEntry, behaviors as _behaviors  # noqa: E402

_behaviors.register(
    "none",
    BehaviorEntry(
        "none",
        lambda ctx: NullAdversary(),
        "bad nodes never transmit (crash faults, clean runs)",
    ),
)
