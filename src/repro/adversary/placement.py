"""Bad-node placements.

Each placement produces a set of bad node ids satisfying the
locally-bounded constraint (at most ``t`` bad per closed neighborhood);
:class:`~repro.network.node.NodeTable` re-validates on construction, so a
buggy placement cannot silently weaken an experiment.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.network.grid import Grid
from repro.types import NodeId


class Placement(ABC):
    """Strategy choosing which nodes the adversary corrupts."""

    @abstractmethod
    def bad_ids(self, grid: Grid, source: NodeId) -> set[NodeId]:
        """The corrupted set (never including the source)."""


def _fill_window_top_down(
    grid: Grid, x_start: int, top_row: int, t: int, downward: bool
) -> list[NodeId]:
    """Corrupt ``t`` nodes of one ``(2r+1)``-wide stripe window.

    Mirrors Figure 1: start at the window's corner nearest the victim
    area, fill left-to-right, then proceed to the next row away from it.
    """
    side = 2 * grid.r + 1
    step = -1 if downward else 1
    chosen = []
    row = top_row
    remaining = t
    while remaining > 0:
        take = min(remaining, side)
        for dx in range(take):
            chosen.append(grid.id_of((x_start + dx, row)))
        remaining -= take
        row += step
    return chosen


@dataclass(frozen=True)
class StripePlacement(Placement):
    """Theorem 1's stripe adversary.

    Corrupts ``t`` nodes per ``(2r+1)``-wide window of an ``r``-row stripe
    whose rows are ``y0 .. y0 + r - 1``. ``victims_above`` selects which
    corner of each window the filling starts from (the side facing the
    area to be starved).

    Any sliding ``(2r+1)``-window over the stripe sees exactly ``t`` bad
    nodes (the paper's worst case); tests verify local-boundedness.
    """

    y0: int
    t: int
    victims_above: bool = True

    def bad_ids(self, grid: Grid, source: NodeId) -> set[NodeId]:
        side = 2 * grid.r + 1
        if self.t > grid.r * side:
            raise PlacementError(
                f"stripe cannot hold t={self.t} > r(2r+1)={grid.r * side} per window"
            )
        if grid.width % side:
            raise PlacementError(
                f"grid width {grid.width} is not a multiple of 2r+1={side}; "
                "stripe windows would be ragged"
            )
        top_row = self.y0 + grid.r - 1 if self.victims_above else self.y0
        bad: set[NodeId] = set()
        for x_start in range(0, grid.width, side):
            bad.update(
                _fill_window_top_down(
                    grid, x_start, top_row, self.t, downward=self.victims_above
                )
            )
        if source in bad:
            raise PlacementError("stripe placement would corrupt the source")
        return bad


@dataclass(frozen=True)
class CombinedPlacement(Placement):
    """Union of component placements (e.g. the two stripes of a torus band).

    Component sets may not overlap — overlapping corruption would make
    per-window budget accounting ambiguous.
    """

    parts: tuple[Placement, ...]

    def bad_ids(self, grid: Grid, source: NodeId) -> set[NodeId]:
        combined: set[NodeId] = set()
        for part in self.parts:
            ids = part.bad_ids(grid, source)
            if combined & ids:
                raise PlacementError("combined placements overlap")
            combined |= ids
        return combined


def two_stripe_band(
    grid: Grid, t: int, band_height: int, below_y0: int
) -> tuple[CombinedPlacement, range]:
    """Two stripes bounding a victim band on a torus.

    On a torus a single stripe blocks nothing (the 'far side' wraps back
    around), so impossibility experiments bound a band of ``band_height``
    rows between two stripes. Returns the combined placement and the
    victim rows. The stripes face the band: each fills from the row
    adjacent to it. Neighborhoods never see more than ``t`` bad nodes
    because the band keeps the stripes more than ``2r`` apart.
    """
    r = grid.r
    if band_height < 2 * r + 1:
        raise PlacementError(
            f"victim band must be at least 2r+1={2 * r + 1} rows so no "
            f"neighborhood touches both stripes"
        )
    lower = StripePlacement(below_y0, t, victims_above=True)
    band_start = below_y0 + r
    upper = StripePlacement(band_start + band_height, t, victims_above=False)
    return (
        CombinedPlacement((lower, upper)),
        range(band_start, band_start + band_height),
    )


@dataclass(frozen=True)
class LatticePlacement(Placement):
    """Figure 2's placement: a regular lattice with period ``2r+1``.

    Puts a cluster of ``cluster`` bad nodes (filled left-to-right, then
    downward) at every lattice site ``(x0 + i*(2r+1), y0 + j*(2r+1))``, so
    every closed neighborhood contains exactly ``cluster`` bad nodes —
    "every neighborhood has exactly one bad node" for ``cluster=1``.
    """

    x0: int
    y0: int
    cluster: int = 1

    def bad_ids(self, grid: Grid, source: NodeId) -> set[NodeId]:
        side = 2 * grid.r + 1
        if self.cluster < 1:
            raise PlacementError("cluster size must be >= 1")
        if grid.width % side or grid.height % side:
            raise PlacementError(
                f"lattice placement needs dimensions divisible by 2r+1={side}"
            )
        bad: set[NodeId] = set()
        for y in range(self.y0 % side, grid.height, side):
            for x in range(self.x0 % side, grid.width, side):
                bad.update(_fill_window_top_down(grid, x, y, self.cluster, downward=False))
        if source in bad:
            raise PlacementError(
                "lattice placement would corrupt the source; shift x0/y0"
            )
        return bad


@dataclass(frozen=True)
class BernoulliPlacement(Placement):
    """Independent per-node failure with probability ``p`` (refs [4, 5]).

    The probabilistic-failure model of Bhandari-Vaidya, named by the
    paper's §6 as future work: every non-source node is faulty with
    probability ``p``, independently — deliberately *not* locally
    bounded (runs using it must skip the local-bound validation).
    """

    p: float
    seed: int

    def bad_ids(self, grid: Grid, source: NodeId) -> set[NodeId]:
        if not 0.0 <= self.p <= 1.0:
            raise PlacementError(f"failure probability must be in [0,1], got {self.p}")
        rng = random.Random(self.seed)
        return {
            nid
            for nid in grid.all_ids()
            if nid != source and rng.random() < self.p
        }


@dataclass(frozen=True)
class RandomPlacement(Placement):
    """Random locally-bounded placement (greedy rejection).

    Corrupts up to ``count`` nodes chosen uniformly at random, skipping
    any candidate that would push some closed neighborhood beyond ``t``.
    Deterministic given the seed.
    """

    t: int
    count: int
    seed: int

    def bad_ids(self, grid: Grid, source: NodeId) -> set[NodeId]:
        if self.t < 1:
            raise PlacementError("random placement needs t >= 1")
        if self.count <= 0:
            # Identical result to the loop below (which would break on its
            # first iteration) without shuffling the full id list — at 10^6
            # nodes the shuffle costs more than the broadcast run.
            return set()
        rng = random.Random(self.seed)
        candidates = [nid for nid in grid.all_ids() if nid != source]
        rng.shuffle(candidates)
        # counts[c] = bad nodes currently in the closed neighborhood of c
        counts = [0] * grid.n
        bad: set[NodeId] = set()
        for candidate in candidates:
            if len(bad) >= self.count:
                break
            affected = grid.closed_neighborhood(candidate)
            if all(counts[c] < self.t for c in affected):
                bad.add(candidate)
                for c in affected:
                    counts[c] += 1
        return bad


# Self-registration: these names key placement serialization in
# ScenarioSpec JSON ({"kind": "stripe", ...}) — see repro.scenario.spec.
from repro.scenario.registries import placements as _placements  # noqa: E402

_placements.register("stripe", StripePlacement)
_placements.register("combined", CombinedPlacement)
_placements.register("lattice", LatticePlacement)
_placements.register("bernoulli", BernoulliPlacement)
_placements.register("random", RandomPlacement)
