"""Adversary models: where bad nodes sit and what they do.

Placement (who is bad) and behavior (what they transmit) are independent
axes; scenarios combine one of each. All behaviors implement the
structural :class:`~repro.radio.mac.AdversaryLike` interface.
"""

from repro.adversary.base import Adversary, NullAdversary
from repro.adversary.figure2 import figure2_midside_quota, figure2_plan
from repro.adversary.jamming import PlannedJammer, ThresholdGuardJammer
from repro.adversary.lying import SpamLiar, SpoofingJammer
from repro.adversary.placement import (
    BernoulliPlacement,
    CombinedPlacement,
    LatticePlacement,
    Placement,
    RandomPlacement,
    StripePlacement,
    two_stripe_band,
)

__all__ = [
    "Adversary",
    "NullAdversary",
    "figure2_midside_quota",
    "figure2_plan",
    "ThresholdGuardJammer",
    "PlannedJammer",
    "SpamLiar",
    "SpoofingJammer",
    "Placement",
    "BernoulliPlacement",
    "CombinedPlacement",
    "StripePlacement",
    "LatticePlacement",
    "RandomPlacement",
    "two_stripe_band",
]
