"""Worst-case collision adversary for the threshold protocols (§2-§4).

:class:`ThresholdGuardJammer` is the algorithmic realization of the
paper's lower-bound counting argument (Theorem 1 / Figure 2): it watches
every clean delivery of ``Vtrue`` and spends a bad message *exactly* when
letting one more copy through would allow some protected receiver to
reach the acceptance threshold ``t*mf + 1``.

Lazy jamming is the budget-optimal shape of the attack: each jam both
removes one correct copy from every common neighbor of jammer and victim
*and* plants a wrong copy there (the paper's collisions may deliver wrong
values), so with the Theorem-1/Figure-2 placements the stripe windows'
``t * mf`` budget suffices to starve the frontier whenever ``m < m0`` —
and provably cannot when ``m >= 2*m0``, which is what experiments E1-E3
demonstrate.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.network.grid import Grid
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.medium import Delivery, shared_plan_cache
from repro.radio.messages import BadTransmission, MessageKind, Transmission
from repro.sim.trace import NULL_TRACER, Tracer
from repro.types import VFALSE, VTRUE, NodeId, Value


class ThresholdGuardJammer(Adversary):
    """Greedy, omniscient, coordinated jammer.

    Args:
        grid/table/ledger: world access (the adversary is omniscient).
        threshold: acceptance threshold being guarded (``t*mf + 1``).
        protected: receivers to starve; default — every good non-source
            node. Experiments pass the victim band to focus the budget.
        decided_fn: oracle for "has this node already accepted?" (jamming
            decided nodes is wasted budget). Bound after protocol nodes
            exist via :meth:`bind_decided`.
        wrong_value: value planted at collision receivers.
    """

    #: Purely reactive: spends budget only against honest transmissions.
    spontaneous = False
    # observe_stateless stays False: on_slot reads the clean-copy counts
    # that observe maintains, plus protocol-node decision state.
    #: ``observe`` only maintains ``_clean``, which nothing but
    #: ``on_slot`` reads — skipping it is unobservable whenever the
    #: jammer can never transmit (mf=0 or no bad nodes), which is what
    #: lets the vectorized kernel take jam-behavior scenarios.
    observe_inert_when_broke = True

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        ledger: BudgetLedger,
        threshold: int,
        *,
        protected: Iterable[NodeId] | None = None,
        wrong_value: Value = VFALSE,
        vtrue: Value = VTRUE,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.grid = grid
        self.table = table
        self.ledger = ledger
        self.threshold = threshold
        self.wrong_value = wrong_value
        self.vtrue = vtrue
        self.tracer = tracer
        if protected is None:
            protected = [
                nid for nid in table.good_ids if nid != table.source
            ]
        else:
            # A Byzantine "victim" has no decision state to guard (and
            # the reference decision oracle only knows honest nodes), so
            # bad ids in an explicit protected set are dropped rather
            # than wasting jam budget on them. Found by repro.fuzz:
            # tests/corpus pins the regression.
            protected = [nid for nid in protected if not table.is_bad(nid)]
        self.protected: frozenset[NodeId] = frozenset(protected)
        self._protected_mask = bytearray(grid.n)
        for nid in self.protected:
            self._protected_mask[nid] = 1
        self._decided_fn: Callable[[NodeId], bool] = lambda nid: False
        self._decided_bits: bytearray | None = None
        # clean[w] = uncorrupted Vtrue copies delivered to w so far
        # (flat, id-indexed — consulted on every at-risk check).
        self._clean: list[int] = [0] * grid.n
        # Per-batch observe plans: the medium's memo returns identity-
        # stable batches, so the relevant receivers of a repeated slot
        # are computed once — and shared across runs of one shape, since
        # a plan depends only on (vtrue, protected set) and the batch.
        self._observe_plans = shared_plan_cache(
            ("guard-clean", grid.n, vtrue, tuple(sorted(self.protected)))
        )
        # bad neighbors (within r) of each protected receiver, cached lazily
        self._bad_near: dict[NodeId, tuple[NodeId, ...]] = {}
        # protected neighbors of each sender, cached lazily (the at-risk
        # scan then touches only candidates instead of the whole ball)
        self._protected_near: dict[NodeId, tuple[NodeId, ...]] = {}
        self.jams = 0

    def bind_decided(self, nodes: Mapping[NodeId, object]) -> None:
        """Wire the decision oracle to live protocol nodes."""
        self._decided_fn = lambda nid: bool(getattr(nodes[nid], "decided", False))

    def bind_decided_bits(self, bits: bytearray) -> None:
        """Read decisions from a shared flat bitmap (flat-engine runs)."""
        self._decided_bits = bits

    # -- helpers ---------------------------------------------------------------

    def _bad_neighbors_of(self, receiver: NodeId) -> tuple[NodeId, ...]:
        cached = self._bad_near.get(receiver)
        if cached is None:
            cached = tuple(
                nb for nb in self.grid.neighbors(receiver) if self.table.is_bad(nb)
            )
            self._bad_near[receiver] = cached
        return cached

    def _protected_neighbors_of(self, sender: NodeId) -> tuple[NodeId, ...]:
        cached = self._protected_near.get(sender)
        if cached is None:
            protected = self._protected_mask
            cached = tuple(
                nb for nb in self.grid.neighbors(sender) if protected[nb]
            )
            self._protected_near[sender] = cached
        return cached

    def _at_risk_receivers(self, victim: Transmission) -> list[NodeId]:
        """Protected, undecided receivers whom this delivery would tip over."""
        at_risk = []
        clean = self._clean
        bits = self._decided_bits
        tip = self.threshold - 1
        for receiver in self._protected_neighbors_of(victim.sender):
            if bits is not None:
                if bits[receiver]:
                    continue
            elif self._decided_fn(receiver):
                continue
            if clean[receiver] >= tip:
                at_risk.append(receiver)
        return at_risk

    # -- AdversaryLike ------------------------------------------------------------

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        if not honest:
            return []
        # (receiver, set of candidate jammers) pairs still needing coverage.
        pending: dict[NodeId, tuple[NodeId, ...]] = {}
        for victim in honest:
            if victim.value != self.vtrue:
                continue
            for receiver in self._at_risk_receivers(victim):
                pending.setdefault(receiver, self._bad_neighbors_of(receiver))

        if not pending:
            return []

        chosen: set[NodeId] = set()
        # Greedy set cover: repeatedly pick the budgeted bad node covering
        # the most still-uncovered at-risk receivers.
        while pending:
            coverage: dict[NodeId, int] = {}
            for receiver, candidates in pending.items():
                for jammer in candidates:
                    if jammer in chosen or not self.ledger.can_send(jammer):
                        continue
                    coverage[jammer] = coverage.get(jammer, 0) + 1
            if not coverage:
                break  # out of reachable budget: these receivers will accept
            best = max(coverage, key=lambda j: (coverage[j], -j))
            chosen.add(best)
            pending = {
                receiver: candidates
                for receiver, candidates in pending.items()
                if self.grid.distance(best, receiver) > self.grid.r
            }

        self.jams += len(chosen)
        if self.tracer.enabled:
            for jammer in sorted(chosen):
                self.tracer.emit(
                    "adversary.jam", (round_index, slot), jammer=jammer
                )
        return [
            BadTransmission(sender=jammer, value=self.wrong_value)
            for jammer in sorted(chosen)
        ]

    def observe(self, deliveries: list[Delivery]) -> None:
        targets = self._observe_plans.get(deliveries)
        if targets is None:
            protected = self._protected_mask
            vtrue = self.vtrue
            data = MessageKind.DATA
            targets = [
                d.receiver
                for d in deliveries
                if not d.corrupted
                and d.kind is data
                and d.value == vtrue
                and protected[d.receiver]
            ]
            self._observe_plans.put(deliveries, targets)
        clean = self._clean
        for receiver in targets:
            clean[receiver] += 1

    def clean_copies_at(self, receiver: NodeId) -> int:
        """Clean Vtrue copies a protected receiver has (for experiment reports)."""
        return self._clean[receiver]


class PlannedJammer(Adversary):
    """Executes a precomputed jam plan (the clairvoyant constructions).

    The lower-bound *constructions* of the paper (Theorem 1's stripe and
    especially Figure 2's lattice) implicitly assume the adversary plans
    which message events to corrupt so that jams are maximally shared
    between frontier receivers. The lazy
    :class:`ThresholdGuardJammer` does not reach that optimum in
    Figure 2's razor-tight budget (it lets every receiver bank
    ``t*mf`` clean copies before spending anything, and the per-receiver
    tails do not overlap enough); this jammer executes an explicit plan
    instead.

    ``plan`` maps each jamming bad node to ``{victim_sender: quota}``
    where ``quota`` is how many of that sender's transmissions to jam
    (``None`` = all of them, budget permitting). Several jammers may be
    assigned the same victim; they all transmit in the victim's slot,
    widening the corrupted area — Figure 2 needs exactly that for the
    mid-side suppliers audible from two defenders.

    Purely reactive and observe-stateless: ``on_slot`` reads only the
    plan quotas and the ledger, so the driver may skip empty slots and
    dedup repeated bursts (the Figure-2 source phase is 2001 of them).
    """

    spontaneous = False
    observe_stateless = True

    def __init__(
        self,
        grid: Grid,
        table: NodeTable,
        ledger: BudgetLedger,
        plan: Mapping[NodeId, Mapping[NodeId, int | None]],
        *,
        wrong_value: Value = VFALSE,
    ) -> None:
        self.grid = grid
        self.table = table
        self.ledger = ledger
        self.wrong_value = wrong_value
        self.jams = 0
        # victim sender -> [(jammer, remaining quota)]
        self._assignments: dict[NodeId, list[list[int | None]]] = {}
        for jammer, victims in plan.items():
            if not table.is_bad(jammer):
                raise ConfigurationError(f"planned jammer {jammer} is not a bad node")
            for victim, quota in victims.items():
                self._assignments.setdefault(victim, []).append(
                    [jammer, quota]
                )

    def on_slot(
        self, round_index: int, slot: int, honest: list[Transmission]
    ) -> list[BadTransmission]:
        actions: list[BadTransmission] = []
        used: set[NodeId] = set()
        for victim in honest:
            for entry in self._assignments.get(victim.sender, ()):
                jammer, quota = entry
                if quota is not None and quota <= 0:
                    continue
                if jammer in used or not self.ledger.can_send(jammer):
                    continue
                used.add(jammer)
                if quota is not None:
                    entry[1] = quota - 1
                actions.append(
                    BadTransmission(sender=jammer, value=self.wrong_value)
                )
        self.jams += len(actions)
        return actions


def _build_threshold_guard(ctx) -> ThresholdGuardJammer:
    """Registered "jam" behavior: the lazy threshold-guard jammer."""
    return ThresholdGuardJammer(
        ctx.grid,
        ctx.table,
        ctx.ledger,
        threshold=ctx.params.threshold,
        protected=ctx.spec.protected,
        vtrue=ctx.spec.vtrue,
        tracer=ctx.tracer,
    )


from repro.scenario.registries import BehaviorEntry, behaviors as _behaviors  # noqa: E402

_behaviors.register(
    "jam",
    BehaviorEntry(
        "jam",
        _build_threshold_guard,
        "lazy threshold-guard jammer (the lower-bound counting argument)",
    ),
)
