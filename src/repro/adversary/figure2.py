"""The clairvoyant Figure-2 corner-starvation defense (paper §2).

The plan four defenders execute in the paper's Figure 2 worked example:
each defender adjacent to the source square jams the whole ``4x4``
supplier quadrant between its two frontier arms plus a quota of each of
its two mid-side suppliers, pinning every second-wave receiver at
exactly ``t*mf`` clean copies. Historically this lived inside the E2
experiment module as an ad-hoc ``adversary_factory`` lambda; it is a
registered behavior (``"figure2-defense"``) so the scenario can be
expressed — and serialized — declaratively.

The geometry is specific to the Figure-2 instance family (r=4, t=1,
defenders on the ``(4 + 9i, 5 + 9j)`` lattice); the jam *quota* on the
mid-side suppliers is the only free parameter
(see :func:`figure2_midside_quota`).
"""

from __future__ import annotations

from repro.adversary.jamming import PlannedJammer
from repro.network.grid import Grid
from repro.types import Coord, NodeId

#: The Figure-2 instance family's fixed parameters (paper §2).
R, T, MF = 4, 1, 1000
M = 59  # m0 + 1
WIDTH = HEIGHT = 36
#: Bad lattice offset: (4 + 9i, 5 + 9j) — puts one bad node in every
#: neighborhood, the source-square defender at (4, -4), and keeps p's 33
#: suppliers all-good (reproducing the paper's 33 * 59 = 1947).
LATTICE = (4, 5)
P_COORD: Coord = (1, 5)
MIDSIDE: tuple[Coord, ...] = ((0, 5), (5, 0), (0, -5), (-5, 0))
#: Per-defender jam quota on each adjacent mid-side supplier at the
#: paper's exact numbers (m=59, mf=1000): just enough to keep frontier
#: receivers at 1000 = t*mf clean copies.
MIDSIDE_QUOTA = 3


def figure2_midside_quota(m: int, mf: int, t: int = T) -> int:
    """Mid-side jam quota pinning frontier receivers at ``t*mf``.

    A frontier receiver such as p=(1,5) hears 16 unjammed square
    suppliers (m messages each) plus one mid-side node: clean copies are
    ``16*m + (m - q)``, which must not exceed ``t*mf``.
    """
    return max(0, 17 * m - t * mf)


def figure2_plan(
    grid: Grid, midside_quota: int = MIDSIDE_QUOTA
) -> dict[NodeId, dict[NodeId, int | None]]:
    """The four defenders' jam plans (quadrant + mid-side quotas)."""
    plan: dict[NodeId, dict[NodeId, int | None]] = {}
    quadrants = {
        (4, 5): (range(1, 5), range(1, 5), ((0, 5), (5, 0))),
        (-5, 5): (range(-4, 0), range(1, 5), ((0, 5), (-5, 0))),
        (4, -4): (range(1, 5), range(-4, 0), ((5, 0), (0, -5))),
        (-5, -4): (range(-4, 0), range(-4, 0), ((-5, 0), (0, -5))),
    }
    for defender, (xs, ys, midsides) in quadrants.items():
        victims: dict[NodeId, int | None] = {}
        for x in xs:
            for y in ys:
                victims[grid.id_of((x, y))] = None  # jam every transmission
        for coord in midsides:
            victims[grid.id_of(coord)] = midside_quota
        plan[grid.id_of(defender)] = victims
    return plan


def _build_figure2_defense(ctx) -> PlannedJammer:
    """Registered "figure2-defense" behavior.

    ``behavior_params["midside_quota"]`` overrides the paper-instance
    quota (E2's generalized sweep computes it per ``(m, mf)``).
    """
    quota = ctx.behavior_params.get("midside_quota", MIDSIDE_QUOTA)
    return PlannedJammer(
        ctx.grid, ctx.table, ctx.ledger, figure2_plan(ctx.grid, quota)
    )


from repro.scenario.registries import BehaviorEntry, behaviors as _behaviors  # noqa: E402

# The jam plan is hardwired to the Figure-2 lattice family (r=4,
# defenders on the (4+9i, 5+9j) lattice); random sampled scenarios can
# never satisfy its geometry, so it stays out of PROTOCOL_BEHAVIORS.
_behaviors.register(  # repro: ignore[RPR203]
    "figure2-defense",
    BehaviorEntry(
        "figure2-defense",
        _build_figure2_defense,
        "clairvoyant four-defender quadrant jam plan (Figure 2)",
    ),
)
