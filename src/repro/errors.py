"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A scenario, grid, or protocol was configured with invalid parameters.

    Raised eagerly at construction time so that a misconfigured experiment
    fails before any simulation work is done.
    """


class SpecValidationError(ConfigurationError):
    """A scenario payload failed validation, with machine-usable context.

    Carries the offending ``field`` (a scenario key, or a registry kind
    such as ``"protocol"``) and close-match ``suggestions`` alongside the
    human-readable message, so front ends — the scenario service's 400
    responses, future editors — can surface the same did-you-mean UX the
    CLI prints without parsing the message text.
    """

    def __init__(
        self,
        message: str,
        *,
        field: str | None = None,
        suggestions: tuple[str, ...] | list[str] = (),
    ) -> None:
        super().__init__(message)
        self.field = field
        self.suggestions: tuple[str, ...] = tuple(suggestions)


class BudgetExceededError(ReproError):
    """A node attempted to transmit beyond its message budget.

    The radio layer enforces budgets defensively; well-behaved protocol
    implementations check ``budget.remaining`` and never trigger this.
    """


class ScheduleConflictError(ReproError):
    """Two honest nodes were scheduled to transmit in a conflicting slot.

    The TDMA coloring guarantees this never happens; seeing this error
    indicates a bug in a schedule implementation, not adversarial behavior
    (adversarial collisions are modeled explicitly, not via this error).
    """


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class PoolBrokenError(SimulationError):
    """A worker pool died and supervision exhausted its restart budget.

    This is an *infrastructure* failure, never a simulation result:
    :mod:`repro.runner.supervise` respawns broken pools with capped
    backoff and resubmits in-flight points (idempotent by content hash)
    before raising this. Carries the recovery counters so callers — the
    sweep flush path, the scenario service's degraded-mode breaker —
    can report progress without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        completed: int | None = None,
        total: int | None = None,
        restarts: int = 0,
    ) -> None:
        super().__init__(message)
        self.completed = completed
        self.total = total
        self.restarts = restarts


class CodingError(ReproError):
    """Encoding/decoding failed due to malformed input.

    Note that *detected tampering* is not an error: verification APIs
    report it as a boolean/result value because it is an expected outcome
    under attack.
    """


class PlacementError(ConfigurationError):
    """An adversarial placement could not satisfy its stated constraints

    (e.g. more than ``t`` bad nodes would fall into one neighborhood, or
    the bad set would include the source).
    """
