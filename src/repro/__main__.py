"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list                        # show available experiments
    python -m repro run e2                      # run one experiment
    python -m repro run e2 e7 --workers 4       # several, in parallel
    python -m repro run all --cache-dir .cache  # everything, memoized
    python -m repro run e2 --profile            # cProfile one serial run
    python -m repro bench                       # slot-resolution benchmark
    python -m repro bench scenario              # end-to-end run(spec) bench
    python -m repro bench --quick               # CI smoke (gates on the
                                                #  trajectory's last entry)
    python -m repro scenario list               # bundled scenario presets
    python -m repro scenario dump figure2       # preset as editable JSON
    python -m repro scenario run my.json        # run a JSON scenario file
    python -m repro scenario run figure2 --workers 2 --cache-dir .cache
    python -m repro fuzz run --cases 200 --seed 0 --workers 4
    python -m repro fuzz run --time-budget 60 --seed 0
    python -m repro fuzz replay tests/corpus    # re-execute repro files
    python -m repro serve --port 8642 --cache-dir .cache --workers 4
    python -m repro serve --stdin-batch < specs.jsonl
    python -m repro cache stats .cache          # inventory a result cache
    python -m repro cache prune .cache --max-bytes 500M --max-age 30
    python -m repro atlas --quick --cache-dir .cache
    python -m repro atlas theorem2 --axes m,mf --out atlas/
    python -m repro chaos run                   # replay fault plans, check bytes
    python -m repro chaos run quickstart --plan plan.json --no-serve
    python -m repro chaos sample --seed 3       # print a sampled FaultPlan
    python -m repro e2                          # legacy alias for `run e2`

``--workers N`` fans each experiment's sweep points out over ``N``
spawn-safe worker processes (``0`` = one per CPU); results are
bit-identical to a serial run. ``--cache-dir`` memoizes per-point results
as JSON keyed by a stable hash of the point, so re-running only computes
points whose configuration changed.

``scenario run`` executes declarative :class:`repro.scenario.ScenarioSpec`
scenarios — bundled presets by name, or JSON files (one scenario object,
or a list of them) that need no Python edits at all. Specs sweep through
the same parallel/cache substrate as the experiments, keyed by each
scenario's stable content hash.

``bench`` times the per-slot delivery-resolution hot loop (fast path vs
the preserved reference path) on the E2 Figure-2 scenario; ``bench
scenario`` times full end-to-end ``run(spec)`` on the bundled presets,
fast path vs the pre-fast-path shape. Both append to their trajectory
file (``BENCH_slot_resolution.json`` / ``BENCH_scenario_run.json``, see
:mod:`repro.runner.bench`) and exit nonzero on a >1.5x speedup
regression versus the trajectory's last entry.

``serve`` starts the long-lived scenario service (:mod:`repro.serve`):
ScenarioSpec JSON over HTTP on ``POST /run``, answered with the exact
bytes a direct ``run(spec)`` report serializes to, deduplicating
concurrent identical requests and layering an in-memory LRU over the
same on-disk cache ``--cache-dir`` sweeps use. ``--stdin-batch`` is the
one-shot piped mode: one spec JSON per input line, one result JSON per
output line, in order. ``cache stats`` inventories a ``--cache-dir``
directory (entries, bytes, corrupt files) without touching its
contents; ``cache prune`` evicts entries by age and/or total size
(oldest first, ``--dry-run`` to preview) — safe at any time, since
invalidation is structural and pruned points are simply recomputed.
``bench serve`` benchmarks the daemon end to end against the
direct-run baseline (trajectory ``BENCH_serve.json``).

``atlas`` maps each preset's empirical success/failure frontier along
the ``m``/``t``/``mf`` axes by adaptive bisection and writes a
browsable ``atlas.md`` + ``atlas.json`` artifact pair (deterministic:
same scenarios → byte-identical files). Probes batch through the same
sweep substrate as everything else, so ``--cache-dir`` makes re-runs
incremental; ``bench atlas`` times cold vs cache-warm builds
(trajectory ``BENCH_atlas.json``).

``run``/``scenario run`` sweeps treat SIGTERM like Ctrl-C: workers are
stopped, a ``sweep interrupted: N/M points completed`` note goes to
stderr, and already-cached points survive for the next run to reuse.

``--profile`` (on ``run`` and ``scenario run``) cProfiles one point
serially and prints the top cumulative entries — the tooling future
perf PRs should start from before touching code.

``chaos run`` arms seeded :class:`repro.chaos.FaultPlan` fault schedules
(worker kills, slow workers, cache corruption, failed cache writes,
connection resets) against real parallel sweeps and a real in-process
daemon, asserting every response stays byte-identical to the fault-free
run — the executable form of the "faults cost latency, never bytes"
standing rule. ``chaos sample`` prints the plan a seed expands to.

``fuzz run`` samples random scenarios from the component registries and
differentially verifies every fast/reference implementation pair plus
the :mod:`repro.fuzz.oracles` invariants on each; failures are shrunk
and written to ``--corpus`` as replayable JSON repros (see README
"Fuzzing"). ``fuzz replay`` re-executes repro files or whole corpus
directories.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import signal
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.experiments import registry
from repro.runner import bench as bench_mod
from repro.runner.parallel import ResultCache, SweepProgress
from repro.runner.parallel import sweep as parallel_sweep
from repro.scenario import (
    ScenarioSpec,
    outcome_table,
    preset,
    preset_names,
    run_summary,
)
from repro.serve import service as serve_defaults


#: How many cumulative-time rows ``--profile`` prints.
PROFILE_TOP_N = 25


def _print_profile(profile: cProfile.Profile, label: str) -> None:
    stats = pstats.Stats(profile, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative")
    print(f"-- cProfile: {label} (top {PROFILE_TOP_N} by cumulative time) --")
    stats.print_stats(PROFILE_TOP_N)


def run_experiment(
    exp_id: str,
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    show_progress: bool = True,
    position: tuple[int, int] | None = None,
    profile: bool = False,
) -> None:
    """Run one experiment and print its regenerated table.

    ``profile`` wraps the (forced-serial, uncached) run in cProfile and
    prints the top cumulative entries after the table — the starting
    point for perf work on an experiment's hot path.
    """
    experiment = registry.get(exp_id)
    prefix = f"[{position[0]}/{position[1]}] " if position else ""
    print(f"== {prefix}{exp_id}: {experiment.description} ==")
    cache = (
        ResultCache(cache_dir, namespace=exp_id)
        if cache_dir is not None and not profile
        else None
    )
    progress = SweepProgress(exp_id) if show_progress and not profile else None
    start = time.perf_counter()
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
        result = experiment.run(workers=1, cache=None, progress=None)
        profiler.disable()
    else:
        result = experiment.run(workers=workers, cache=cache, progress=progress)
    elapsed = time.perf_counter() - start
    print(experiment.format(result))
    if profile:
        _print_profile(profiler, f"{exp_id}, serial, cache off")
    suffix = ""
    if cache is not None:
        suffix = f"; cache: {cache.stats.hits} hits, {cache.stats.stores} stored"
    print(f"[{exp_id} finished in {elapsed:.1f}s{suffix}]\n")


def _load_scenarios(target: str) -> list[ScenarioSpec]:
    """Resolve one `scenario run` argument: JSON file path or preset name."""
    path = Path(target)
    if path.suffix == ".json" or path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(payload, list):
            return [ScenarioSpec.from_dict(item) for item in payload]
        return [ScenarioSpec.from_dict(payload)]
    return [preset(target)]


def run_scenarios(
    targets: list[str],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    show_progress: bool = True,
    profile: bool = False,
) -> None:
    """Run scenario files/presets through the parallel sweep substrate.

    ``profile`` cProfiles the *first* scenario point serially and prints
    the top cumulative entries; its outcome is reused in the final table
    (the point is not recomputed, and not stored in the result cache).
    """
    specs: list[ScenarioSpec] = []
    for target in targets:
        specs.extend(_load_scenarios(target))
    profiled_outcome = None
    if profile and specs:
        profiler = cProfile.Profile()
        profiler.enable()
        profiled_outcome = run_summary(specs[0])
        profiler.disable()
        _print_profile(
            profiler, f"scenario {specs[0].content_hash()[:12]}, serial"
        )
    cache = (
        ResultCache(cache_dir, namespace="scenario")
        if cache_dir is not None
        else None
    )
    progress = SweepProgress("scenario") if show_progress else None
    start = time.perf_counter()
    sweep_specs = specs[1:] if profiled_outcome is not None else specs
    result = parallel_sweep(
        sweep_specs, run_summary, workers=workers, cache=cache, progress=progress
    )
    elapsed = time.perf_counter() - start
    points = list(result.points)
    outcomes = list(result.results)
    if profiled_outcome is not None:
        points.insert(0, specs[0])
        outcomes.insert(0, profiled_outcome)
    print(
        outcome_table(
            points,
            outcomes,
            title=f"scenario run: {', '.join(targets)}",
        )
    )
    suffix = ""
    if cache is not None:
        suffix = f"; cache: {cache.stats.hits} hits, {cache.stats.stores} stored"
    print(f"[{len(specs)} scenario(s) in {elapsed:.1f}s{suffix}]")


def _sigterm_as_interrupt() -> None:
    """Treat a supervisor's SIGTERM like Ctrl-C during sweeps.

    ``sweep`` already drains its workers and reports ``N/M points
    completed`` on :class:`KeyboardInterrupt`; routing SIGTERM into the
    same path means a timed-out CI job or a ``systemctl stop`` keeps the
    cached points and the progress note instead of dying mid-write.
    """

    def _raise(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError, AttributeError):
        pass  # non-main thread, or a platform without SIGTERM


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    ids = registry.experiment_ids()
    # Legacy spelling: `python -m repro e2` / `python -m repro all`.
    if argv and argv[0] in (*ids, "all"):
        argv = ["run", *argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures/theorems as experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show available experiments")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*ids, "all"],
        metavar="exp",
        help=f"experiment id ({', '.join(ids)}) or 'all'",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per sweep (0 = one per CPU; default 1)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk JSON result cache (default: off)",
    )
    run_parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-sweep progress/ETA output",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one serial run and print the top cumulative entries",
    )
    bench_parser = sub.add_parser(
        "bench",
        help="microbenchmarks: per-slot resolution or end-to-end scenarios",
    )
    bench_parser.add_argument(
        "which",
        nargs="?",
        choices=("slot", "scenario", "serve", "atlas"),
        default="slot",
        help=(
            "'slot' times Medium.resolve_slot fast vs reference (default); "
            "'scenario' times full run(spec) fast vs legacy on the presets; "
            "'serve' times the scenario service vs direct runs; "
            "'atlas' times the frontier search cold vs cache-warm"
        ),
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer iterations (CI smoke run)",
    )
    bench_parser.add_argument(
        "--out",
        default=None,
        help=(
            f"trajectory JSON path (default: {bench_mod.DEFAULT_OUT}, "
            f"{bench_mod.DEFAULT_SCENARIO_OUT}, or BENCH_serve.json)"
        ),
    )
    scenario_parser = sub.add_parser(
        "scenario", help="declarative ScenarioSpec scenarios (JSON/presets)"
    )
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="run scenario JSON files and/or bundled presets"
    )
    scenario_run.add_argument(
        "scenarios",
        nargs="+",
        metavar="file.json|preset",
        help=(
            "scenario JSON file (one object or a list) or a preset name "
            f"({', '.join(preset_names())})"
        ),
    )
    scenario_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the scenario sweep (0 = one per CPU)",
    )
    scenario_run.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk JSON result cache (default: off)",
    )
    scenario_run.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress progress/ETA output",
    )
    scenario_run.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the first scenario point and print the top entries",
    )
    scenario_sub.add_parser("list", help="show bundled scenario presets")
    scenario_dump = scenario_sub.add_parser(
        "dump", help="print a preset's JSON (start here for custom files)"
    )
    scenario_dump.add_argument(
        "preset", choices=preset_names(), help="preset name"
    )
    check_parser = sub.add_parser(
        "check",
        help="project-invariant static analysis (repro.check)",
    )
    check_parser.add_argument(
        "--root",
        default=None,
        help="project root to scan (default: auto-detected)",
    )
    check_parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of findings to exclude (default: "
        ".repro-check-baseline.json at the root, which must stay empty)",
    )
    check_parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as JSON on stdout",
    )
    check_parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="snapshot current findings to FILE and exit 0 (staged cleanups)",
    )
    check_parser.add_argument(
        "--rules",
        action="store_true",
        help="list the rule catalog and exit",
    )
    fuzz_parser = sub.add_parser(
        "fuzz",
        help="randomized-scenario differential verification (repro.fuzz)",
    )
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="sample scenarios and differentially verify each"
    )
    fuzz_run.add_argument(
        "--cases",
        type=int,
        default=None,
        help="number of scenarios to sample (mutually exclusive with "
        "--time-budget)",
    )
    fuzz_run.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep sampling batches until this much wall-clock has passed",
    )
    fuzz_run.add_argument(
        "--seed", type=int, default=0, help="master sampling seed (default 0)"
    )
    fuzz_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the case sweep (0 = one per CPU)",
    )
    fuzz_run.add_argument(
        "--corpus",
        default="fuzz-corpus",
        help="directory minimized failure repros are written to "
        "(default: fuzz-corpus)",
    )
    fuzz_run.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress progress/ETA output",
    )
    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-execute repro JSON files or corpus directories"
    )
    fuzz_replay.add_argument(
        "targets",
        nargs="+",
        metavar="file.json|dir",
        help="repro file(s) and/or corpus directories",
    )
    serve_parser = sub.add_parser(
        "serve",
        help="long-lived scenario service: spec JSON in, report bytes out",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 = ephemeral; default 8642)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="persistent compute workers (0 = one per CPU; default 0)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache shared with `scenario run --cache-dir` "
        "(default: off)",
    )
    serve_parser.add_argument(
        "--lru-size",
        type=int,
        default=serve_defaults.DEFAULT_LRU_SIZE,
        help="in-memory response LRU entries (0 disables; default "
        f"{serve_defaults.DEFAULT_LRU_SIZE})",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=serve_defaults.DEFAULT_QUEUE_LIMIT,
        help="queued computations before 503 + Retry-After (default "
        f"{serve_defaults.DEFAULT_QUEUE_LIMIT})",
    )
    serve_parser.add_argument(
        "--batch-max",
        type=int,
        default=serve_defaults.DEFAULT_BATCH_MAX,
        help="max specs coalesced into one worker chunk (default "
        f"{serve_defaults.DEFAULT_BATCH_MAX})",
    )
    serve_parser.add_argument(
        "--batch-window",
        type=float,
        default=serve_defaults.DEFAULT_BATCH_WINDOW,
        help="seconds to wait for batchmates after a miss (default "
        f"{serve_defaults.DEFAULT_BATCH_WINDOW})",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=serve_defaults.DEFAULT_REQUEST_TIMEOUT,
        help="per-request deadline in seconds before a 504 (0 disables; "
        f"default {serve_defaults.DEFAULT_REQUEST_TIMEOUT:g})",
    )
    serve_parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening (harness discovery)",
    )
    serve_parser.add_argument(
        "--stdin-batch",
        action="store_true",
        help="one-shot mode: read spec JSON lines from stdin, write one "
        "result JSON line each (in input order), then exit",
    )
    cache_parser = sub.add_parser(
        "cache", help="inspect on-disk result caches"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entries/bytes/corruption inventory of a cache dir"
    )
    cache_stats.add_argument("directory", help="the --cache-dir directory")
    cache_stats.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the inventory as JSON on stdout",
    )
    cache_prune = cache_sub.add_parser(
        "prune",
        help="evict cache entries by age and/or size (oldest first)",
    )
    cache_prune.add_argument("directory", help="the --cache-dir directory")
    cache_prune.add_argument(
        "--max-bytes",
        default=None,
        metavar="SIZE",
        help="shrink the directory to at most SIZE (e.g. 500M, 2G)",
    )
    cache_prune.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="remove entries not rewritten in the last DAYS days",
    )
    cache_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without unlinking anything",
    )
    atlas_parser = sub.add_parser(
        "atlas",
        help="adaptive frontier atlas: search presets, emit md+json report",
    )
    atlas_parser.add_argument(
        "presets",
        nargs="*",
        metavar="preset",
        help="preset names to map (default: the bundled atlas slice)",
    )
    atlas_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI slice: map only the quick preset set",
    )
    atlas_parser.add_argument(
        "--axes",
        default=None,
        metavar="m,t,mf",
        help="comma-separated axis subset (default: all registered axes)",
    )
    atlas_parser.add_argument(
        "--refine",
        type=int,
        default=1,
        help="probe radius around each frontier after bisection (default 1)",
    )
    atlas_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per probe batch (0 = one per CPU; default 1)",
    )
    atlas_parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk probe cache shared with `scenario run`/`serve` "
        "(default: off; set it to make re-runs incremental)",
    )
    atlas_parser.add_argument(
        "--out",
        default="atlas",
        metavar="DIR",
        help="directory the atlas.md/atlas.json artifacts land in "
        "(default: atlas)",
    )
    atlas_parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-generation progress output on stderr",
    )
    chaos_parser = sub.add_parser(
        "chaos",
        help="fault-injection harness: replay FaultPlans, assert bytes",
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="replay fault plans against sweeps and the serve daemon",
    )
    chaos_run.add_argument(
        "targets",
        nargs="*",
        metavar="preset",
        help="preset names to exercise (default: quickstart theorem2)",
    )
    chaos_run.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="replay this FaultPlan JSON instead of full+sampled plans",
    )
    chaos_run.add_argument(
        "--sample",
        type=int,
        default=2,
        help="sampled plans to add beside the full plan (default 2)",
    )
    chaos_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for sampled plans (default 0)",
    )
    chaos_run.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the sweep/serve legs (default 2)",
    )
    chaos_run.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the serve (daemon) leg; sweep legs only",
    )
    chaos_run.add_argument(
        "--points",
        type=int,
        default=3,
        help="seed-varied points per target preset (default 3)",
    )
    chaos_sample = chaos_sub.add_parser(
        "sample", help="print the FaultPlan(s) a seed expands to"
    )
    chaos_sample.add_argument(
        "--seed", type=int, default=0, help="first plan seed (default 0)"
    )
    chaos_sample.add_argument(
        "--count", type=int, default=1, help="how many plans (default 1)"
    )
    args = parser.parse_args(argv)

    if args.command == "serve":
        from repro.serve.cli import serve_command

        try:
            return serve_command(
                host=args.host,
                port=args.port,
                workers=args.workers,
                cache_dir=args.cache_dir,
                lru_size=args.lru_size,
                queue_limit=args.queue_limit,
                batch_max=args.batch_max,
                batch_window=args.batch_window,
                request_timeout=args.request_timeout,
                port_file=args.port_file,
                stdin_batch=args.stdin_batch,
            )
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "chaos":
        from repro.chaos.cli import chaos_run_command, chaos_sample_command

        try:
            if args.chaos_command == "sample":
                return chaos_sample_command(seed=args.seed, count=args.count)
            return chaos_run_command(
                args.targets,
                plan_file=args.plan,
                sample=args.sample,
                seed=args.seed,
                workers=args.workers,
                serve_leg=not args.no_serve,
                points=args.points,
            )
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "cache":
        from repro.serve.cli import cache_prune_command, cache_stats_command

        if args.cache_command == "prune":
            return cache_prune_command(
                args.directory,
                max_bytes=args.max_bytes,
                max_age_days=args.max_age,
                dry_run=args.dry_run,
            )
        return cache_stats_command(args.directory, as_json=args.as_json)

    if args.command == "atlas":
        from repro.analysis.atlas import atlas_command

        _sigterm_as_interrupt()
        try:
            return atlas_command(
                args.presets,
                quick=args.quick,
                axes=args.axes,
                refine=args.refine,
                workers=args.workers,
                cache_dir=args.cache_dir,
                out_dir=args.out,
                show_progress=not args.no_progress,
            )
        except KeyboardInterrupt:
            return 130
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "bench":
        return bench_mod.main_bench(
            which=args.which,
            out=args.out,
            quick=args.quick,
        )

    if args.command == "check":
        from repro.check.cli import check_command

        return check_command(
            root=args.root,
            baseline=args.baseline,
            as_json=args.as_json,
            write_baseline_path=args.write_baseline,
            show_rules=args.rules,
        )

    if args.command == "fuzz":
        from repro.fuzz.cli import fuzz_replay_command, fuzz_run_command

        try:
            if args.fuzz_command == "replay":
                return fuzz_replay_command(args.targets)
            return fuzz_run_command(
                cases=args.cases,
                time_budget=args.time_budget,
                seed=args.seed,
                workers=args.workers,
                corpus_dir=args.corpus,
                show_progress=not args.no_progress,
            )
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "scenario":
        try:
            if args.scenario_command == "run":
                _sigterm_as_interrupt()
            if args.scenario_command == "list":
                width = max(len(name) for name in preset_names())
                for name in preset_names():
                    spec = preset(name)
                    print(
                        f"{name.ljust(width)}  {spec.protocol} / "
                        f"{spec.grid.width}x{spec.grid.height} r={spec.grid.r} "
                        f"[{spec.content_hash()[:12]}]"
                    )
            elif args.scenario_command == "dump":
                print(preset(args.preset).to_json())
            else:
                run_scenarios(
                    args.scenarios,
                    workers=args.workers,
                    cache_dir=args.cache_dir,
                    show_progress=not args.no_progress,
                    profile=args.profile,
                )
        except KeyboardInterrupt:
            return 130  # sweep already reported completed/total on stderr
        except (ReproError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "list":
        width = max(len(exp_id) for exp_id in ids)
        for experiment in registry.all_experiments():
            print(f"{experiment.exp_id.ljust(width)}  {experiment.description}")
        return 0

    targets = list(ids) if "all" in args.experiments else args.experiments
    _sigterm_as_interrupt()
    overall = time.perf_counter()
    for index, exp_id in enumerate(targets, start=1):
        try:
            run_experiment(
                exp_id,
                workers=args.workers,
                cache_dir=args.cache_dir,
                show_progress=not args.no_progress,
                position=(index, len(targets)) if len(targets) > 1 else None,
                profile=args.profile,
            )
        except KeyboardInterrupt:
            return 130  # sweep already reported completed/total on stderr
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if len(targets) > 1:
        print(f"[{len(targets)} experiments in {time.perf_counter() - overall:.1f}s]")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe reader (e.g. `... | head`) closed early; exit
        # quietly instead of tracebacking. Point stdout at devnull so the
        # interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
