"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list                        # show available experiments
    python -m repro run e2                      # run one experiment
    python -m repro run e2 e7 --workers 4       # several, in parallel
    python -m repro run all --cache-dir .cache  # everything, memoized
    python -m repro bench                       # slot-resolution benchmark
    python -m repro bench --quick               # CI smoke (gates on the
                                                #  trajectory's last entry)
    python -m repro scenario list               # bundled scenario presets
    python -m repro scenario dump figure2       # preset as editable JSON
    python -m repro scenario run my.json        # run a JSON scenario file
    python -m repro scenario run figure2 --workers 2 --cache-dir .cache
    python -m repro e2                          # legacy alias for `run e2`

``--workers N`` fans each experiment's sweep points out over ``N``
spawn-safe worker processes (``0`` = one per CPU); results are
bit-identical to a serial run. ``--cache-dir`` memoizes per-point results
as JSON keyed by a stable hash of the point, so re-running only computes
points whose configuration changed.

``scenario run`` executes declarative :class:`repro.scenario.ScenarioSpec`
scenarios — bundled presets by name, or JSON files (one scenario object,
or a list of them) that need no Python edits at all. Specs sweep through
the same parallel/cache substrate as the experiments, keyed by each
scenario's stable content hash.

``bench`` times the per-slot delivery-resolution hot loop (fast path vs
the preserved reference path) on the E2 Figure-2 scenario and appends
the result to the ``BENCH_slot_resolution.json`` trajectory (see
:mod:`repro.runner.bench`); it exits nonzero on a >1.5x speedup
regression versus the trajectory's last entry.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.experiments import registry
from repro.runner import bench as bench_mod
from repro.runner.parallel import ResultCache, SweepProgress
from repro.runner.parallel import sweep as parallel_sweep
from repro.scenario import (
    ScenarioSpec,
    outcome_table,
    preset,
    preset_names,
    run_summary,
)


def run_experiment(
    exp_id: str,
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    show_progress: bool = True,
    position: tuple[int, int] | None = None,
) -> None:
    """Run one experiment and print its regenerated table."""
    experiment = registry.get(exp_id)
    prefix = f"[{position[0]}/{position[1]}] " if position else ""
    print(f"== {prefix}{exp_id}: {experiment.description} ==")
    cache = (
        ResultCache(cache_dir, namespace=exp_id) if cache_dir is not None else None
    )
    progress = SweepProgress(exp_id) if show_progress else None
    start = time.perf_counter()
    result = experiment.run(workers=workers, cache=cache, progress=progress)
    elapsed = time.perf_counter() - start
    print(experiment.format(result))
    suffix = ""
    if cache is not None:
        suffix = f"; cache: {cache.stats.hits} hits, {cache.stats.stores} stored"
    print(f"[{exp_id} finished in {elapsed:.1f}s{suffix}]\n")


def _load_scenarios(target: str) -> list[ScenarioSpec]:
    """Resolve one `scenario run` argument: JSON file path or preset name."""
    path = Path(target)
    if path.suffix == ".json" or path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(payload, list):
            return [ScenarioSpec.from_dict(item) for item in payload]
        return [ScenarioSpec.from_dict(payload)]
    return [preset(target)]


def run_scenarios(
    targets: list[str],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    show_progress: bool = True,
) -> None:
    """Run scenario files/presets through the parallel sweep substrate."""
    specs: list[ScenarioSpec] = []
    for target in targets:
        specs.extend(_load_scenarios(target))
    cache = (
        ResultCache(cache_dir, namespace="scenario")
        if cache_dir is not None
        else None
    )
    progress = SweepProgress("scenario") if show_progress else None
    start = time.perf_counter()
    result = parallel_sweep(
        specs, run_summary, workers=workers, cache=cache, progress=progress
    )
    elapsed = time.perf_counter() - start
    print(
        outcome_table(
            list(result.points),
            list(result.results),
            title=f"scenario run: {', '.join(targets)}",
        )
    )
    suffix = ""
    if cache is not None:
        suffix = f"; cache: {cache.stats.hits} hits, {cache.stats.stores} stored"
    print(f"[{len(specs)} scenario(s) in {elapsed:.1f}s{suffix}]")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    ids = registry.experiment_ids()
    # Legacy spelling: `python -m repro e2` / `python -m repro all`.
    if argv and argv[0] in (*ids, "all"):
        argv = ["run", *argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures/theorems as experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show available experiments")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*ids, "all"],
        metavar="exp",
        help=f"experiment id ({', '.join(ids)}) or 'all'",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per sweep (0 = one per CPU; default 1)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk JSON result cache (default: off)",
    )
    run_parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-sweep progress/ETA output",
    )
    bench_parser = sub.add_parser(
        "bench", help="slot-resolution microbenchmark (fast vs reference)"
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer iterations (CI smoke run)",
    )
    bench_parser.add_argument(
        "--out",
        default=None,
        help=f"trajectory JSON path (default: {bench_mod.DEFAULT_OUT})",
    )
    scenario_parser = sub.add_parser(
        "scenario", help="declarative ScenarioSpec scenarios (JSON/presets)"
    )
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="run scenario JSON files and/or bundled presets"
    )
    scenario_run.add_argument(
        "scenarios",
        nargs="+",
        metavar="file.json|preset",
        help=(
            "scenario JSON file (one object or a list) or a preset name "
            f"({', '.join(preset_names())})"
        ),
    )
    scenario_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the scenario sweep (0 = one per CPU)",
    )
    scenario_run.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk JSON result cache (default: off)",
    )
    scenario_run.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress progress/ETA output",
    )
    scenario_sub.add_parser("list", help="show bundled scenario presets")
    scenario_dump = scenario_sub.add_parser(
        "dump", help="print a preset's JSON (start here for custom files)"
    )
    scenario_dump.add_argument(
        "preset", choices=preset_names(), help="preset name"
    )
    args = parser.parse_args(argv)

    if args.command == "bench":
        return bench_mod.main_bench(
            out=args.out if args.out is not None else bench_mod.DEFAULT_OUT,
            quick=args.quick,
        )

    if args.command == "scenario":
        try:
            if args.scenario_command == "list":
                width = max(len(name) for name in preset_names())
                for name in preset_names():
                    spec = preset(name)
                    print(
                        f"{name.ljust(width)}  {spec.protocol} / "
                        f"{spec.grid.width}x{spec.grid.height} r={spec.grid.r} "
                        f"[{spec.content_hash()[:12]}]"
                    )
            elif args.scenario_command == "dump":
                print(preset(args.preset).to_json())
            else:
                run_scenarios(
                    args.scenarios,
                    workers=args.workers,
                    cache_dir=args.cache_dir,
                    show_progress=not args.no_progress,
                )
        except (ReproError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "list":
        width = max(len(exp_id) for exp_id in ids)
        for experiment in registry.all_experiments():
            print(f"{experiment.exp_id.ljust(width)}  {experiment.description}")
        return 0

    targets = list(ids) if "all" in args.experiments else args.experiments
    overall = time.perf_counter()
    for index, exp_id in enumerate(targets, start=1):
        try:
            run_experiment(
                exp_id,
                workers=args.workers,
                cache_dir=args.cache_dir,
                show_progress=not args.no_progress,
                position=(index, len(targets)) if len(targets) > 1 else None,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if len(targets) > 1:
        print(f"[{len(targets)} experiments in {time.perf_counter() - overall:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
