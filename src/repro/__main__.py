"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list            # show available experiments
    python -m repro e2              # run one experiment, print its table
    python -m repro all             # run every experiment (minutes)
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

#: experiment id -> (module, description)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "e1": ("repro.experiments.e1_impossibility", "Thm 1 / Fig 1: stripe impossibility"),
    "e2": ("repro.experiments.e2_figure2", "Fig 2 worked example (exact numbers)"),
    "e3": ("repro.experiments.e3_protocol_b", "Thm 2: protocol B at m = 2*m0"),
    "e4": ("repro.experiments.e4_koo_comparison", "budget comparison vs Koo [14]"),
    "e5": ("repro.experiments.e5_heterogeneous", "Thm 3 / Fig 5: heterogeneous budgets"),
    "e6": ("repro.experiments.e6_coding", "Fig 9: coding overhead + attacks"),
    "e7": ("repro.experiments.e7_reactive", "Thm 4: B_reactive, unknown mf"),
    "e8": ("repro.experiments.e8_corollary1", "Cor 1 feasibility map"),
    "e9": ("repro.experiments.e9_ablations", "design ablations"),
    "e10": ("repro.experiments.e10_uncertain_region", "open region (m0, 2m0) [ext]"),
    "e11": ("repro.experiments.e11_refined_coding_cost", "refined coding cost [ext]"),
    "e12": ("repro.experiments.e12_probabilistic_failures", "crash failures [ext]"),
    "e13": ("repro.experiments.e13_subbit_link", "sub-bit link validation [ext]"),
}


def run_experiment(exp_id: str) -> None:
    module_name, description = EXPERIMENTS[exp_id]
    print(f"== {exp_id}: {description} ==")
    start = time.perf_counter()
    importlib.import_module(module_name).main()
    print(f"[{exp_id} finished in {time.perf_counter() - start:.1f}s]\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures/theorems as experiments.",
    )
    parser.add_argument(
        "target",
        choices=[*EXPERIMENTS, "all", "list"],
        help="experiment id, 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for exp_id, (_, description) in EXPERIMENTS.items():
            print(f"{exp_id.ljust(width)}  {description}")
        return 0
    if args.target == "all":
        for exp_id in EXPERIMENTS:
            run_experiment(exp_id)
        return 0
    run_experiment(args.target)
    return 0


if __name__ == "__main__":
    sys.exit(main())
