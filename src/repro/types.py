"""Shared primitive types used across the package.

The simulator identifies nodes by dense integer ids (row-major index into
the grid) for speed, and exposes coordinate tuples at API boundaries where
readability matters (placements, experiment reports).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TypeAlias

NodeId: TypeAlias = int
Coord: TypeAlias = tuple[int, int]

#: Protocol payloads are small integers; the convention throughout the
#: package is that :data:`VTRUE` is the source's value and anything else is
#: a wrong value an adversary may try to plant.
Value: TypeAlias = int

VTRUE: Value = 1
VFALSE: Value = 0


class Role(enum.Enum):
    """Role of a node in a scenario."""

    SOURCE = "source"
    GOOD = "good"
    BAD = "bad"

    @property
    def is_honest(self) -> bool:
        return self is not Role.BAD


@dataclass(frozen=True, slots=True)
class SlotTime:
    """A point in slotted time: TDMA round number plus slot index within it.

    Ordering is lexicographic, which equals chronological order because all
    rounds have the same number of slots.
    """

    round: int
    slot: int

    def __lt__(self, other: "SlotTime") -> bool:
        return (self.round, self.slot) < (other.round, other.slot)

    def __le__(self, other: "SlotTime") -> bool:
        return (self.round, self.slot) <= (other.round, other.slot)
