"""Node-set region algebra.

The paper describes node sets with the notation ``[x1..x2, y1..y2]`` (a
closed integer rectangle) and reasons about stripes (Theorem 1), a
cross-shaped budget region (Figure 5), and growing disks (Lemma 10). This
module provides those shapes as composable :class:`Region` objects that
can answer membership for planar or toroidal coordinates and enumerate
their members within a bounding box.

Regions are *pure geometry*: they know nothing about grids or roles, so
they are reusable for placements, heterogeneous budget maps, and metrics.
On a torus, membership is evaluated on representative coordinates wrapped
into canonical ranges by the caller (see :meth:`Region.contains_torus`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from repro.geometry.linf import chebyshev_torus, torus_delta
from repro.types import Coord


class Region(ABC):
    """A set of integer points in the plane (optionally torus-aware)."""

    @abstractmethod
    def contains(self, point: Coord) -> bool:
        """Planar membership."""

    def contains_torus(self, point: Coord, width: int, height: int) -> bool:
        """Toroidal membership.

        Default: test all nine translates of ``point`` by ±width/±height,
        which is correct for any planar region whose extent is smaller
        than the torus. Shapes with a cheaper exact rule override this.
        """
        x, y = point
        for dx in (-width, 0, width):
            for dy in (-height, 0, height):
                if self.contains((x + dx, y + dy)):
                    return True
        return False

    def members(self, x_range: tuple[int, int], y_range: tuple[int, int]) -> Iterator[Coord]:
        """Enumerate member points within a closed bounding box."""
        for y in range(y_range[0], y_range[1] + 1):
            for x in range(x_range[0], x_range[1] + 1):
                if self.contains((x, y)):
                    yield (x, y)

    def union(self, other: "Region") -> "RegionUnion":
        return RegionUnion((self, other))


@dataclass(frozen=True)
class Rect(Region):
    """Closed rectangle ``[x1..x2, y1..y2]`` — the paper's bracket notation.

    Degenerate rectangles (single row/column/point) are allowed, mirroring
    the paper's ``[x1, y1..y2]`` shorthand.
    """

    x1: int
    x2: int
    y1: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(f"empty rectangle: {self}")

    @classmethod
    def around(cls, center: Coord, radius: int) -> "Rect":
        """The closed L∞ ball (square) of ``radius`` around ``center``."""
        return cls(center[0] - radius, center[0] + radius, center[1] - radius, center[1] + radius)

    def contains(self, point: Coord) -> bool:
        return self.x1 <= point[0] <= self.x2 and self.y1 <= point[1] <= self.y2

    @property
    def width(self) -> int:
        return self.x2 - self.x1 + 1

    @property
    def height(self) -> int:
        return self.y2 - self.y1 + 1

    @property
    def area(self) -> int:
        return self.width * self.height

    def iter_points(self) -> Iterator[Coord]:
        """All points, row-major — no bounding box needed for a Rect."""
        for y in range(self.y1, self.y2 + 1):
            for x in range(self.x1, self.x2 + 1):
                yield (x, y)


@dataclass(frozen=True)
class Stripe(Region):
    """Horizontal stripe of ``height`` rows starting at ``y0`` (Theorem 1).

    Spans all x — on a torus it is a ring around the network.
    """

    y0: int
    height: int

    def __post_init__(self) -> None:
        if self.height <= 0:
            raise ValueError(f"stripe height must be positive, got {self.height}")

    def contains(self, point: Coord) -> bool:
        return self.y0 <= point[1] <= self.y0 + self.height - 1

    def contains_torus(self, point: Coord, width: int, height: int) -> bool:
        y = point[1] % height
        for candidate in (y, y + height, y - height):
            if self.y0 <= candidate <= self.y0 + self.height - 1:
                return True
        return False

    @property
    def rows(self) -> range:
        return range(self.y0, self.y0 + self.height)


@dataclass(frozen=True)
class Cross(Region):
    """The cross-shaped privileged-budget region of Figure 5.

    All points within L∞ distance ``arm_half_width`` of either axis
    through ``center``. On a torus the arms wrap all the way around, which
    is the natural analogue of the paper's cross spanning the network.
    """

    center: Coord = (0, 0)
    arm_half_width: int = 0

    def __post_init__(self) -> None:
        if self.arm_half_width < 0:
            raise ValueError("arm_half_width must be non-negative")

    def contains(self, point: Coord) -> bool:
        return (
            abs(point[0] - self.center[0]) <= self.arm_half_width
            or abs(point[1] - self.center[1]) <= self.arm_half_width
        )

    def contains_torus(self, point: Coord, width: int, height: int) -> bool:
        return (
            torus_delta(point[0], self.center[0], width) <= self.arm_half_width
            or torus_delta(point[1], self.center[1], height) <= self.arm_half_width
        )


@dataclass(frozen=True)
class Disk(Region):
    """Closed L∞ ... no — *Euclidean* disk used by the §4 circular growth.

    The circular growing body of Lemma 10 is a genuine Euclidean circle;
    membership uses squared-distance integer arithmetic to stay exact.
    """

    center: Coord
    radius_sq: int

    @classmethod
    def of_radius(cls, center: Coord, radius: float) -> "Disk":
        return cls(center, int(radius * radius))

    def contains(self, point: Coord) -> bool:
        dx = point[0] - self.center[0]
        dy = point[1] - self.center[1]
        return dx * dx + dy * dy <= self.radius_sq

    def contains_torus(self, point: Coord, width: int, height: int) -> bool:
        dx = torus_delta(point[0], self.center[0], width)
        dy = torus_delta(point[1], self.center[1], height)
        return dx * dx + dy * dy <= self.radius_sq


@dataclass(frozen=True)
class HalfPlane(Region):
    """Points with ``y >= y0`` (above) or ``y <= y0`` (below).

    Used to define the "victim band" in impossibility experiments.
    Half-planes are unbounded and make no sense on a torus; toroidal
    membership raises to catch misuse early.
    """

    y0: int
    above: bool = True

    def contains(self, point: Coord) -> bool:
        return point[1] >= self.y0 if self.above else point[1] <= self.y0

    def contains_torus(self, point: Coord, width: int, height: int) -> bool:
        raise ValueError("HalfPlane is not torus-compatible; use Stripe bands instead")


@dataclass(frozen=True)
class RegionUnion(Region):
    """Union of component regions."""

    parts: tuple[Region, ...]

    def contains(self, point: Coord) -> bool:
        return any(part.contains(point) for part in self.parts)

    def contains_torus(self, point: Coord, width: int, height: int) -> bool:
        return any(part.contains_torus(point, width, height) for part in self.parts)


def closed_neighborhood(center: Coord, radius: int) -> Rect:
    """The paper's ``[A]`` for a neighborhood: closed square of side 2r+1."""
    return Rect.around(center, radius)


def torus_chebyshev_ball(
    center: Coord, radius: int, width: int, height: int
) -> list[Coord]:
    """All torus points (canonical coords) within L∞ distance ``radius``."""
    points = []
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            points.append(((center[0] + dx) % width, (center[1] + dy) % height))
    # Canonicalize and dedupe in case the ball wraps onto itself.
    unique = sorted(set(points))
    assert all(
        chebyshev_torus(center, p, width, height) <= radius for p in unique
    )
    return unique
