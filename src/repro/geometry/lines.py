"""Committed-line geometry of Section 4 (Lemmas 5-10).

The heterogeneous-budget proof replaces the square "growing body" of
Section 3 with a circle, and reasons about *committed lines*: segments of
slope ``rho/r`` (``rho`` an integer in ``[-r, 0]``) whose 2r-deep back
area has already accepted ``Vtrue``. Propagation is expressed through the
*frontier* of a committed line — the apex of the triangle that the next
wave of acceptance covers (Lemma 6).

This module implements that geometry exactly (rational arithmetic, no
floating point in predicates) so the simulator's §4 experiment can check
the paper's constants:

- frontier reach ``|P1 v0| >= (floor(|L| / (2*sqrt(2)*r)) - 1) * r``;
- the minimum expanding angle ``sin(angle3) >= 1/(2r)`` (Lemma 9);
- the clearance ``d > 1.25`` of an expanding line's frontier above it;
- the disk radius ``R = 550 r^2`` and cross-square side ``778 r^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

FracPoint = tuple[Fraction, Fraction]

#: Radius (in units of r^2) of the committed disk from Lemma 10/11.
DISK_RADIUS_COEFF = 550
#: Side (in units of r^2) of the square the cross area fills (Lemma 11).
CROSS_SQUARE_COEFF = 778
#: Committed-line length used by Lemma 9, in units of r.
LEMMA9_LINE_LENGTH_COEFF = 37
#: Expanding-line length used by Lemma 10, in units of r.
EXPANDING_LINE_LENGTH_COEFF = 74
#: Lower bound on the frontier clearance above an expanding line (Lemma 9).
MIN_CLEARANCE = 1.25


def _line_through(point: FracPoint, slope: Fraction) -> tuple[Fraction, Fraction]:
    """Return (a, b) such that the line is y = a*x + b."""
    a = slope
    b = point[1] - a * point[0]
    return a, b


def _intersect(
    p: FracPoint, slope_p: Fraction, q: FracPoint, slope_q: Fraction
) -> FracPoint:
    """Intersection of two non-parallel lines given by point + slope."""
    if slope_p == slope_q:
        raise ValueError("parallel lines have no unique intersection")
    a1, b1 = _line_through(p, slope_p)
    a2, b2 = _line_through(q, slope_q)
    x = (b2 - b1) / (a1 - a2)
    y = a1 * x + b1
    return (x, y)


@dataclass(frozen=True)
class CommittedLine:
    """A committed line ``L(rho, P0, Pl)`` with slope ``rho/r``.

    ``P0`` is the left endpoint; the segment contains the intermediate
    integer nodes ``P_i = (x0 + i*r, y0 + i*rho)`` for ``0 <= i <= l``.
    The *float* generalization (endpoints anywhere on the line) is modeled
    by fractional endpoints plus ``l`` implied from the length.
    """

    r: int
    rho: int
    x0: Fraction
    y0: Fraction
    l: int

    def __post_init__(self) -> None:
        if self.r <= 0:
            raise ValueError("r must be positive")
        if not -self.r <= self.rho <= 0:
            raise ValueError(f"rho must be in [-r, 0], got {self.rho}")
        if self.l < 1:
            raise ValueError("a committed line needs l >= 1")

    @classmethod
    def from_integer_endpoints(
        cls, r: int, rho: int, p0: tuple[int, int], l: int
    ) -> "CommittedLine":
        return cls(r, rho, Fraction(p0[0]), Fraction(p0[1]), l)

    @property
    def slope(self) -> Fraction:
        return Fraction(self.rho, self.r)

    def point(self, i: int | Fraction) -> FracPoint:
        """The point ``P_i`` (fractional ``i`` interpolates along the line)."""
        return (self.x0 + i * self.r, self.y0 + i * self.rho)

    @property
    def p0(self) -> FracPoint:
        return self.point(0)

    @property
    def pl(self) -> FracPoint:
        return self.point(self.l)

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        dx = float(self.pl[0] - self.p0[0])
        dy = float(self.pl[1] - self.p0[1])
        return math.hypot(dx, dy)

    def integer_nodes(self) -> Iterator[tuple[int, int]]:
        """The integer nodes P_i on the line (only exact when x0,y0 integral)."""
        for i in range(self.l + 1):
            x, y = self.point(i)
            if x.denominator == 1 and y.denominator == 1:
                yield (int(x), int(y))

    def back_area_contains(self, point: tuple[int, int]) -> bool:
        """Is an integer point inside the committed back area?

        The back area is ``{(x, y): x0 <= x <= xl and f(x) - 2r <= y <= f(x)}``
        where ``f`` is the line (shifted lines use ``floor(f(x)) - 2r``;
        with rational arithmetic the floor is exact).
        """
        x, y = Fraction(point[0]), Fraction(point[1])
        if not self.p0[0] <= x <= self.pl[0]:
            return False
        f_x = self.slope * x + (self.y0 - self.slope * self.x0)
        lower = math.floor(f_x) - 2 * self.r
        return lower <= y <= f_x

    def shifted(self, offset: Fraction) -> "CommittedLine":
        """Slide the line along itself by ``offset`` units of i (Lemma 7)."""
        x0 = self.x0 + offset * self.r
        y0 = self.y0 + offset * self.rho
        return CommittedLine(self.r, self.rho, x0, y0, self.l)

    def translated(self, dx: Fraction, dy: Fraction) -> "CommittedLine":
        """Float generalization: translate the whole line (Lemma 8)."""
        return CommittedLine(self.r, self.rho, self.x0 + dx, self.y0 + dy, self.l)


def frontier(line: CommittedLine) -> FracPoint:
    """The frontier ``v0`` of a committed line (Lemma 6).

    Draw a line of slope ``(rho+1)/r`` from ``P1`` and a line of slope
    ``(rho-1)/r`` from ``P_{l-1}``; the frontier is their intersection.
    Requires ``l > 3`` per the lemma (shorter lines have no useful apex).
    """
    if line.l <= 3:
        raise ValueError(f"Lemma 6 requires l > 3, got l={line.l}")
    up_slope = Fraction(line.rho + 1, line.r)
    down_slope = Fraction(line.rho - 1, line.r)
    return _intersect(line.point(1), up_slope, line.point(line.l - 1), down_slope)


def frontier_reach_lower_bound(line: CommittedLine) -> float:
    """Lemma 6's guaranteed arm length ``(floor(|L|/(2*sqrt(2)*r)) - 1)*r``."""
    return (math.floor(line.length / (2 * math.sqrt(2) * line.r)) - 1) * line.r


def min_expanding_angle_sin(r: int) -> Fraction:
    """Exact lower bound on ``sin(angle3)`` from Lemma 9's final step.

    The minimum angle between consecutive committed-line slopes is attained
    between slopes ``-1`` and ``-(r-1)/r``; the paper bounds its sine below
    by ``1/(2r)`` via the projection argument. We return the paper's bound.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    return Fraction(1, 2 * r)


def exact_min_angle_sin(r: int) -> float:
    """The actual minimal angle sine, for checking the bound is conservative.

    sin(angle between EF_{r} (slope -1) and EF_{r-1} (slope -(r-1)/r)) =
    |Fr-1 V| / |E Fr-1| with |Fr-1 V| = sqrt(2)/2 (the paper's Figure 8b).
    """
    e = (0.0, 0.0)
    f_r_minus_1 = (float(r), float(-(r - 1)))
    length = math.hypot(f_r_minus_1[0] - e[0], f_r_minus_1[1] - e[1])
    return (math.sqrt(2) / 2) / length


def expanding_line_clearance(r: int) -> float:
    """Lower bound on the frontier's clearance above an expanding line.

    Following Lemma 9: ``d = 7r * sin(angle2) >= 7r * sin(angle3 / 2)`` and
    ``sin(angle3/2) >= 1/(4r)``, hence ``d >= 7/4 > 1.25``. Returns the
    ``7r * 1/(4r)`` value (which is parameter-free).
    """
    if r <= 0:
        raise ValueError("r must be positive")
    return 7.0 * r / (4.0 * r)


def ring_growth_delta(r: int) -> float:
    """The positive ring-width gain per induction step (Lemma 10).

    ``delta = 1.25 - |H H1|`` where ``|H H1| = R - sqrt(R^2 - L^2/4)`` with
    ``L = 74 r`` and ``R = 550 r^2``.

    **Reproduction note.** The paper claims ``|H H1| < 0.72`` and hence
    ``delta > 0.53``, but at ``R = 550 r^2`` the sagitta is
    ``~(37 r)^2 / (2 * 550 r^2) ~= 1.2445`` for every ``r``, giving
    ``delta ~= 0.0055`` — positive (so Lemma 10's existence claim and the
    induction it feeds are intact) but far from 0.53. The constant 0.72
    would require ``R >= ~951 r^2``; this looks like an arithmetic slip
    in the paper. See EXPERIMENTS.md (E5 notes).
    """
    radius = float(DISK_RADIUS_COEFF * r * r)
    half_chord = EXPANDING_LINE_LENGTH_COEFF * r / 2.0
    sagitta = radius - math.sqrt(radius * radius - half_chord * half_chord)
    return MIN_CLEARANCE - sagitta


def committed_disk_radius(r: int) -> int:
    """``R = 550 r^2`` from Lemmas 10-11."""
    return DISK_RADIUS_COEFF * r * r


def cross_square_side(r: int) -> int:
    """``778 r^2`` — the square the cross area fills by induction (Lemma 11)."""
    return CROSS_SQUARE_COEFF * r * r
