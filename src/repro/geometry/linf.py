"""Chebyshev (L∞) metric, planar and toroidal.

All neighborhood computations in the simulator reduce to these functions,
so they are kept tiny and heavily tested (including hypothesis property
tests for the metric axioms).
"""

from __future__ import annotations

from functools import lru_cache

from repro.types import Coord


def chebyshev(a: Coord, b: Coord) -> int:
    """Planar L∞ distance between two integer points."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def wrap(value: int, size: int) -> int:
    """Wrap a coordinate onto a torus of the given size."""
    return value % size


def torus_delta(a: int, b: int, size: int) -> int:
    """Minimal absolute difference of two coordinates on a ring of ``size``."""
    diff = abs(a - b) % size
    return min(diff, size - diff)


def chebyshev_torus(a: Coord, b: Coord, width: int, height: int) -> int:
    """Toroidal L∞ distance on a ``width x height`` torus."""
    return max(torus_delta(a[0], b[0], width), torus_delta(a[1], b[1], height))


@lru_cache(maxsize=None)
def linf_ball_offsets(radius: int, include_center: bool = False) -> tuple[Coord, ...]:
    """All integer offsets with L∞ norm ≤ ``radius``.

    The paper's neighborhood of a node is exactly these offsets applied to
    the node's coordinate, *excluding* the node itself; pass
    ``include_center=True`` to keep the origin (used for closed
    neighborhoods ``[A]``).

    The result is cached: neighborhood enumeration is the hottest loop in
    the simulator and radii are tiny.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    offsets = [
        (dx, dy)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
        if include_center or (dx, dy) != (0, 0)
    ]
    return tuple(offsets)


def neighborhood_size(radius: int) -> int:
    """Number of nodes in an open L∞ neighborhood: ``(2r+1)^2 - 1``."""
    side = 2 * radius + 1
    return side * side - 1


def half_neighborhood_size(radius: int) -> int:
    """The quantity ``r(2r+1)`` that the paper's bounds revolve around.

    Geometrically: the number of grid points in a stripe of height ``r``
    and width ``2r+1`` — half of an open neighborhood.
    """
    return radius * (2 * radius + 1)
