"""L-infinity (Chebyshev) geometry on the plane and on the torus.

The paper works exclusively in the L∞ metric: a node's neighborhood is
the square of side ``2r`` centered at itself. This package provides

- :mod:`~repro.geometry.linf` — distances, balls, and toroidal wrapping;
- :mod:`~repro.geometry.regions` — node-set algebra matching the paper's
  ``[x1..x2, y1..y2]`` rectangle notation plus stripes, crosses and disks
  used by placements and budget maps;
- :mod:`~repro.geometry.lines` — the committed-line / frontier geometry
  of Section 4 (Lemmas 5-9), both as exact rational computations and as
  the constants the paper derives (e.g. the ``d > 1.25`` clearance).
"""

from repro.geometry.linf import (
    chebyshev,
    chebyshev_torus,
    linf_ball_offsets,
    torus_delta,
    wrap,
)
from repro.geometry.regions import (
    Cross,
    Disk,
    HalfPlane,
    Rect,
    Region,
    RegionUnion,
    Stripe,
)
from repro.geometry.lines import (
    CommittedLine,
    expanding_line_clearance,
    frontier,
    min_expanding_angle_sin,
)

__all__ = [
    "chebyshev",
    "chebyshev_torus",
    "linf_ball_offsets",
    "torus_delta",
    "wrap",
    "Region",
    "Rect",
    "Stripe",
    "Cross",
    "Disk",
    "HalfPlane",
    "RegionUnion",
    "CommittedLine",
    "frontier",
    "expanding_line_clearance",
    "min_expanding_angle_sin",
]
