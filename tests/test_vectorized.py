"""NumPy backend unit tests: grid fast build, kernel gates, LazyNodeMap.

The byte-identical *behavior* of the kernel is pinned by the triple
differential in ``test_scenario_fastpath.py`` (reference vs flat vs
vector on the same specs) and by the fuzz runner's third leg; this
module covers the structural pieces underneath it — CSR parity of the
NumPy grid build against the pure-python build, the eligibility gates
that must make ``try_vector_run`` fall through, and the Mapping contract
of the lazy report view.

Everything here needs NumPy; the module skips cleanly without it, which
is exactly what the no-numpy CI leg exercises.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

import repro.network.grid as grid_mod
from repro.adversary.placement import RandomPlacement
from repro.network.grid import Grid, GridSpec
from repro.protocols import vectorized
from repro.protocols.base import ThresholdNode
from repro.protocols.vectorized import LazyNodeMap
from repro.scenario import ScenarioSpec
from repro.scenario import run as run_scenario


# -- grid CSR parity: numpy build vs pure-python build -------------------------

PARITY_SPECS = [
    GridSpec(width=12, height=12, r=1, torus=True),
    GridSpec(width=15, height=10, r=2, torus=True),
    GridSpec(width=7, height=5, r=2, torus=False),
    GridSpec(width=1, height=1, r=1, torus=False),
    GridSpec(width=40, height=1, r=3, torus=False),
    GridSpec(width=1, height=40, r=2, torus=False),
    GridSpec(width=6, height=9, r=1, torus=True),
]


def _python_built(spec: GridSpec) -> Grid:
    saved = grid_mod.DEFAULT_FAST_BUILD
    grid_mod.DEFAULT_FAST_BUILD = False
    try:
        return Grid(spec)
    finally:
        grid_mod.DEFAULT_FAST_BUILD = saved


@pytest.mark.parametrize("spec", PARITY_SPECS, ids=str)
def test_numpy_grid_build_matches_python_build(spec):
    fast = Grid(spec)
    slow = _python_built(spec)
    assert list(fast.neighbor_starts) == list(slow.neighbor_starts)
    assert list(fast.neighbor_ids) == list(slow.neighbor_ids)
    for nid in fast.all_ids():
        assert fast.neighbors(nid) == slow.neighbors(nid)
        assert fast.neighbors_sorted(nid) == slow.neighbors_sorted(nid)


@pytest.mark.parametrize("spec", PARITY_SPECS, ids=str)
def test_csr_arrays_match_flat_arrays(spec):
    for grid in (Grid(spec), _python_built(spec)):
        starts, ids = grid.csr_arrays()
        assert starts.dtype == np.int64 and ids.dtype == np.int64
        assert starts.tolist() == list(grid.neighbor_starts)
        assert ids.tolist() == list(grid.neighbor_ids)


# -- kernel eligibility gates --------------------------------------------------


def _eligible_spec(**overrides) -> ScenarioSpec:
    base = dict(
        grid=GridSpec(width=12, height=12, r=1, torus=True),
        t=1,
        mf=0,
        placement=RandomPlacement(t=1, count=3, seed=1),
        protocol="b",
        behavior="jam",
        m=3,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _engages(spec: ScenarioSpec) -> bool:
    return isinstance(run_scenario(spec).nodes, LazyNodeMap)


def test_eligible_spec_engages_the_kernel():
    assert _engages(_eligible_spec())


def test_active_adversary_falls_through():
    # mf > 0 with placed bad nodes: the adversary could transmit, so
    # slot order matters and the kernel must decline.
    assert not _engages(_eligible_spec(mf=2))


def test_mf_without_bad_nodes_still_engages():
    # mf > 0 but zero placed bad nodes: nobody holds corrupt budget.
    assert _engages(
        _eligible_spec(mf=2, placement=RandomPlacement(t=1, count=0, seed=0))
    )


def test_protocol_without_vector_build_falls_through():
    # CPA's endorsement chains are slot-order dependent; it registers no
    # vector_build hook.
    assert not _engages(_eligible_spec(protocol="cpa", m=None))


def test_flag_off_falls_through():
    saved = vectorized.DEFAULT_VECTOR
    vectorized.DEFAULT_VECTOR = False
    try:
        assert not _engages(_eligible_spec())
    finally:
        vectorized.DEFAULT_VECTOR = saved


def test_kernel_report_matches_flat_report():
    # One end-to-end pin right here (the broad sweep lives in the triple
    # differential): same spec through kernel and flat engines.
    spec = _eligible_spec()
    vector_report = run_scenario(spec)
    saved = vectorized.DEFAULT_VECTOR
    vectorized.DEFAULT_VECTOR = False
    try:
        flat_report = run_scenario(spec)
    finally:
        vectorized.DEFAULT_VECTOR = saved
    assert isinstance(vector_report.nodes, LazyNodeMap)
    assert not isinstance(flat_report.nodes, LazyNodeMap)
    assert vector_report.outcome == flat_report.outcome
    assert vector_report.costs == flat_report.costs
    assert vector_report.stats == flat_report.stats


# -- LazyNodeMap Mapping contract ----------------------------------------------


@pytest.fixture(scope="module")
def kernel_report():
    spec = ScenarioSpec(
        grid=GridSpec(width=9, height=9, r=1, torus=True),
        t=1,
        mf=0,
        placement=RandomPlacement(t=1, count=2, seed=5),
        protocol="b",
        behavior="jam",
        m=2,
    )
    report = run_scenario(spec)
    assert isinstance(report.nodes, LazyNodeMap)
    return report


def test_lazy_map_keys_are_ascending_honest_ids(kernel_report):
    nodes = kernel_report.nodes
    honest = [
        nid
        for nid in kernel_report.grid.all_ids()
        if nid not in kernel_report.table.bad_ids
    ]
    assert list(nodes) == honest
    assert len(nodes) == len(honest)
    assert honest[0] in nodes


def test_lazy_map_rejects_bad_and_out_of_range_ids(kernel_report):
    nodes = kernel_report.nodes
    bad = next(iter(kernel_report.table.bad_ids))
    with pytest.raises(KeyError):
        nodes[bad]
    assert bad not in nodes
    with pytest.raises(KeyError):
        nodes[kernel_report.grid.n + 7]
    with pytest.raises(KeyError):
        # A dict raises here too; numpy wraparound indexing must not
        # silently materialize the last node instead.
        nodes[-1]
    assert nodes.get(bad) is None  # Mapping.get must swallow the KeyError


def test_lazy_map_materializes_threshold_nodes_once(kernel_report):
    nodes = kernel_report.nodes
    some_id = next(iter(nodes))
    node = nodes[some_id]
    assert isinstance(node, ThresholdNode)
    assert nodes[some_id] is node  # cached, not rebuilt
    assert node.decided  # broadcast succeeded on this spec
    assert node.received_total >= 0


def test_lazy_map_equals_dict_of_itself(kernel_report):
    nodes = kernel_report.nodes
    assert dict(nodes).keys() == set(nodes)
