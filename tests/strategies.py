"""Shared scenario/grid generators for the test suite.

One home for the spec and traffic generators that used to be scattered
across ``test_driver_consistency.py``, ``test_medium_properties.py``,
and ``test_scenario_fastpath.py``. The Hypothesis strategies are thin
wrappers over the *same* samplers ``repro.fuzz`` uses
(:func:`repro.fuzz.sampler.sample_spec`), so property tests and the fuzz
CLI explore one spec space — a scenario shape either tool can produce,
the other can reproduce.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.adversary.placement import RandomPlacement
from repro.fuzz.sampler import sample_spec
from repro.network.grid import Grid, GridSpec
from repro.radio.medium import Medium
from repro.radio.messages import Transmission
from repro.radio.schedule import TdmaSchedule
from repro.scenario import ScenarioSpec

# -- whole scenarios (the fuzz sampler as a Hypothesis strategy) ---------------


def scenario_specs(
    protocols: tuple[str, ...] | None = None,
    behavior: str | None | type(...) = ...,
) -> st.SearchStrategy[ScenarioSpec]:
    """Valid random :class:`ScenarioSpec` values via the fuzz sampler.

    ``protocols``/``behavior`` narrow the pool exactly like
    :class:`repro.fuzz.SpecSampler` does.
    """

    def build(seed: int) -> ScenarioSpec:
        return sample_spec(
            random.Random(seed), protocols=protocols, behavior=behavior
        )

    return st.integers(0, 2**32 - 1).map(build)


def vector_candidate_specs() -> st.SearchStrategy[ScenarioSpec]:
    """Sampler-shaped threshold-protocol specs for the triple differential.

    Half the draws force ``mf=0`` so the vectorized kernel's engagement
    condition (adversary can never transmit) is hit often; the rest keep
    the sampled ``mf`` and exercise the fall-through path. Degenerate
    stripe grids and ``max_rounds=1`` caps arrive through the sampler
    exactly as ``repro fuzz`` would produce them.
    """

    def build(pair: tuple[int, bool]) -> ScenarioSpec:
        seed, force_broke = pair
        spec = sample_spec(
            random.Random(seed), protocols=("b", "koo", "heter")
        )
        return spec.replace(mf=0) if force_broke else spec

    return st.tuples(st.integers(0, 2**32 - 1), st.booleans()).map(build)


# -- the PR-4 equivalence-suite base scenario ----------------------------------

EQUIVALENCE_GRID = GridSpec(width=15, height=15, r=1, torus=True)


def equivalence_spec(**overrides) -> ScenarioSpec:
    """The fast-vs-reference suite's base scenario, with overrides."""
    base = dict(
        grid=EQUIVALENCE_GRID,
        t=1,
        mf=2,
        placement=RandomPlacement(t=1, count=6, seed=11),
        protocol="b",
        m=4,
        batch_per_slot=2,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# -- driver-consistency threshold scenarios ------------------------------------

DRIVER_GRID = GridSpec(width=12, height=12, r=1, torus=True)

#: Random threshold-protocol configurations for driver accounting tests.
threshold_scenarios = st.fixed_dictionaries(
    {
        "t": st.integers(1, 2),
        "mf": st.integers(0, 3),
        "m": st.integers(1, 6),
        "bad_count": st.integers(0, 10),
        "seed": st.integers(0, 10**6),
        "behavior": st.sampled_from(["jam", "lie", "none"]),
    }
)


def threshold_spec(cfg: dict) -> ScenarioSpec:
    """A :class:`ScenarioSpec` from one ``threshold_scenarios`` draw."""
    return ScenarioSpec(
        grid=DRIVER_GRID,
        t=cfg["t"],
        mf=cfg["mf"],
        placement=RandomPlacement(
            t=cfg["t"], count=cfg["bad_count"], seed=cfg["seed"]
        ),
        protocol="b",
        behavior=cfg["behavior"],
        m=cfg["m"],
        batch_per_slot=2,
    )


# -- medium collision-property world -------------------------------------------

MEDIUM_GRID = Grid(GridSpec(15, 15, r=2, torus=True))
MEDIUM = Medium(MEDIUM_GRID)
MEDIUM_SCHEDULE = TdmaSchedule(MEDIUM_GRID)

#: One TDMA slot class of the medium-property world.
slot_classes = st.integers(0, MEDIUM_SCHEDULE.period - 1)

#: Arbitrary Byzantine sender sets for the medium-property world.
medium_bad_nodes = st.lists(
    st.integers(0, MEDIUM_GRID.n - 1), min_size=0, max_size=4, unique=True
)


def honest_for_slot(slot: int, how_many: int) -> list[Transmission]:
    """Non-interfering honest transmitters: owners of one slot class."""
    owners = MEDIUM_SCHEDULE.owners(slot)
    return [Transmission(nid, 1) for nid in owners[:how_many]]
