"""Byte-identity differential suite for the scenario service.

This is the ``serve-cache`` seam's differential test: the service's
fast path (``DEFAULT_SERVE_FAST`` on — LRU, in-flight dedup, and disk
short-circuits) must serve byte-for-byte what the reference shape
(``DEFAULT_SERVE_FAST`` off — every request computed fresh) serves,
and both must equal the ground truth
:func:`repro.serve.service.report_bytes` — the canonical serialization
of a direct ``run_summary(spec)``.

Every bundled preset is pinned on every serving path: cold compute,
warm LRU hit, and a fresh service reading the first one's disk cache.
``megatorus`` (10^6 nodes) joins only when NumPy is available — its
non-vectorized run would take minutes.
"""

import asyncio

import pytest

from repro.protocols import vectorized
from repro.runner.parallel import PersistentPool, ResultCache
from repro.scenario import preset, preset_names
from repro.serve import service as serve_service
from repro.serve.service import (
    InlinePool,
    ScenarioService,
    report_bytes,
)

IDENTITY_PRESETS = [
    pytest.param(
        name,
        marks=(
            pytest.mark.skipif(
                name == "megatorus" and not vectorized.available(),
                reason="megatorus needs the NumPy whole-grid kernel",
            )
        ),
    )
    for name in preset_names()
]


def serve_one(service, spec):
    async def scenario():
        await service.start()
        result = await service.submit_spec(spec)
        await service.drain()
        return result

    return asyncio.run(scenario())


def serve_many(service, specs):
    async def scenario():
        await service.start()
        results = [await service.submit_spec(spec) for spec in specs]
        await service.drain()
        return results

    return asyncio.run(scenario())


@pytest.mark.parametrize("name", IDENTITY_PRESETS)
def test_every_path_serves_reference_bytes(name, tmp_path):
    """Cold compute, warm LRU, and disk restart all serve report_bytes."""
    spec = preset(name)
    expected = report_bytes(spec)

    service = ScenarioService(
        pool=InlinePool(), cache=ResultCache(tmp_path, namespace="scenario")
    )
    cold, warm = serve_many(service, [spec, spec])
    assert cold.status == 200 and cold.source == "computed"
    assert cold.body == expected
    assert warm.source == "lru"
    assert warm.body == expected

    restarted = ScenarioService(
        pool=InlinePool(), cache=ResultCache(tmp_path, namespace="scenario")
    )
    disk = serve_one(restarted, spec)
    assert disk.source == "disk"
    assert disk.body == expected


def test_reference_mode_serves_identical_bytes(tmp_path, monkeypatch):
    """DEFAULT_SERVE_FAST off: every request computes fresh, same bytes."""
    spec = preset("quickstart")
    expected = report_bytes(spec)
    monkeypatch.setattr(serve_service, "DEFAULT_SERVE_FAST", False)
    service = ScenarioService(
        pool=InlinePool(), cache=ResultCache(tmp_path, namespace="scenario")
    )
    first, second = serve_many(service, [spec, spec])
    # The reference shape never short-circuits...
    assert first.source == "computed"
    assert second.source == "computed"
    assert service.stats.computed == 2
    assert service.stats.lru_hits == 0
    assert service.stats.deduped == 0
    # ...never fills a cache layer...
    assert len(service.lru) == 0
    assert list(tmp_path.glob("*.json")) == []
    # ...and serves exactly the fast path's bytes.
    assert first.body == expected
    assert second.body == expected


def test_reference_mode_concurrent_duplicates_each_compute(monkeypatch):
    computed = []

    def counting(specs):
        computed.extend(specs)
        return [("ok", {"seed": spec.seed}) for spec in specs]

    monkeypatch.setattr(serve_service, "DEFAULT_SERVE_FAST", False)
    spec = preset("quickstart")
    service = ScenarioService(pool=InlinePool(), chunk_runner=counting)

    async def scenario():
        await service.start()
        results = await asyncio.gather(
            *(service.submit_spec(spec) for _ in range(3))
        )
        await service.drain()
        return results

    results = asyncio.run(scenario())
    assert len(computed) == 3  # no dedup in reference mode
    assert len({r.body for r in results}) == 1


def test_spawn_pool_serves_reference_bytes(tmp_path):
    """Cross-process identity: a real spawn worker computes the bytes."""
    spec = preset("quickstart")
    expected = report_bytes(spec)
    with PersistentPool(1) as pool:
        service = ScenarioService(
            pool=pool, cache=ResultCache(tmp_path, namespace="scenario")
        )
        result = serve_one(service, spec)
    assert result.status == 200
    assert result.body == expected
    # The worker's result round-tripped into the shared disk cache too.
    hit, outcome = ResultCache(tmp_path, namespace="scenario").get(spec)
    assert hit
    assert serve_service.serialize_outcome(outcome) == expected
