"""Tests for the unified scenario runner and the component registries."""

import pytest

from repro.adversary.base import NullAdversary
from repro.adversary.placement import RandomPlacement, StripePlacement
from repro.errors import ConfigurationError
from repro.network.grid import GridSpec
from repro.runner.broadcast_run import (
    ReactiveRunConfig,
    ThresholdRunConfig,
    run_reactive_broadcast,
    run_threshold_broadcast,
)
from repro.runner.parallel import ResultCache, sweep
from repro.scenario import (
    ScenarioSpec,
    behaviors,
    preset,
    protocols,
    run,
    run_summary,
)


def _threshold_spec(**overrides) -> ScenarioSpec:
    base = dict(
        grid=GridSpec(width=30, height=30, r=2, torus=True),
        t=2,
        mf=3,
        placement=StripePlacement(y0=8, t=2),
        protocol="b",
        m=4,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRegistries:
    def test_builtin_protocols_registered(self):
        assert set(protocols.names()) >= {"b", "koo", "heter", "cpa", "reactive"}

    def test_builtin_behaviors_registered(self):
        assert set(behaviors.names()) >= {
            "jam", "lie", "spoof", "none", "coded", "figure2-defense",
        }

    def test_unknown_behavior_error_lists_registered_names(self):
        # The historical failure mode was a bare `unknown behavior 'x'`
        # repr; the registry must name what *is* available.
        with pytest.raises(ConfigurationError) as excinfo:
            run(_threshold_spec(behavior="shout"))
        message = str(excinfo.value)
        assert "shout" in message
        for name in ("jam", "lie", "none", "spoof"):
            assert name in message

    def test_unknown_protocol_error_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run(_threshold_spec(protocol="gossip"))
        message = str(excinfo.value)
        assert "gossip" in message and "reactive" in message and "koo" in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            protocols.register("b", protocols.get("b"))


class TestRunEquivalence:
    """run(spec) reproduces the deprecated entry points bit-for-bit.

    The class calls the shims on purpose, so it opts back out of the
    pytest.ini error filters for repro's own deprecation warnings.
    """

    pytestmark = [
        pytest.mark.filterwarnings(
            "default:run_threshold_broadcast is deprecated"
        ),
        pytest.mark.filterwarnings(
            "default:run_reactive_broadcast is deprecated"
        ),
    ]

    def test_threshold_matches_deprecated_shim(self):
        cfg = ThresholdRunConfig(
            spec=GridSpec(width=30, height=30, r=2, torus=True),
            t=2,
            mf=3,
            placement=StripePlacement(y0=8, t=2),
            protocol="b",
            m=6,
            batch_per_slot=4,
        )
        via_shim = run_threshold_broadcast(cfg)
        via_spec = run(cfg.to_scenario_spec())
        assert via_spec.outcome == via_shim.outcome
        assert via_spec.costs == via_shim.costs
        assert via_spec.stats == via_shim.stats

    def test_reactive_matches_deprecated_shim(self):
        cfg = ReactiveRunConfig(
            spec=GridSpec(width=12, height=12, r=1, torus=True),
            t=1,
            mf=2,
            mmax=10**6,
            placement=RandomPlacement(t=1, count=4, seed=77),
            seed=5,
        )
        via_shim = run_reactive_broadcast(cfg)
        via_spec = run(cfg.to_scenario_spec())
        assert via_spec.outcome == via_shim.outcome
        assert via_spec.costs == via_shim.costs
        assert via_spec.stats == via_shim.stats

    def test_custom_behavior_without_factory_still_rejected(self):
        cfg = ThresholdRunConfig(
            spec=GridSpec(width=30, height=30, r=2, torus=True),
            t=2,
            mf=3,
            placement=StripePlacement(y0=8, t=2),
            behavior="custom",
        )
        with pytest.raises(ConfigurationError, match="adversary_factory"):
            run_threshold_broadcast(cfg)


class TestBehaviorResolution:
    def test_protocol_default_behavior_used_when_unset(self):
        explicit = run(_threshold_spec(behavior="jam"))
        default = run(_threshold_spec())
        assert default.outcome == explicit.outcome
        assert default.costs == explicit.costs

    def test_none_behavior_runs_null_adversary(self):
        report = run(_threshold_spec(behavior="none", m=2))
        assert isinstance(report.adversary, NullAdversary)
        assert report.success

    def test_adversary_override_takes_precedence(self):
        sentinel = NullAdversary()
        report = run(
            _threshold_spec(behavior="jam", m=2),
            adversary_override=lambda grid, table, ledger: sentinel,
        )
        assert report.adversary is sentinel

    def test_coded_behavior_requires_mmax_or_p_forge(self):
        spec = ScenarioSpec(
            grid=GridSpec(width=12, height=12, r=1, torus=True),
            t=1,
            mf=2,
            placement=RandomPlacement(t=1, count=4, seed=3),
            protocol="reactive",
        )
        with pytest.raises(ConfigurationError, match="mmax"):
            run(spec)
        assert run(spec.replace(mmax=10**6)).success


class TestScenarioSweep:
    def test_specs_sweep_with_cache_and_workers(self, tmp_path):
        specs = [preset("quickstart"), preset("reactive")]
        cache = ResultCache(tmp_path, namespace="scenario")
        first = sweep(specs, run_summary, workers=2, cache=cache)
        assert cache.stats.stores == len(specs)
        warm = ResultCache(tmp_path, namespace="scenario")
        second = sweep(specs, run_summary, workers=1, cache=warm)
        assert warm.stats.hits == len(specs)
        assert warm.stats.stores == 0
        assert first == second
        assert all(outcome.success for outcome in first.results)

    def test_seed_is_scenario_content(self):
        # A different seed is a different cache identity, even when the
        # outcome happens to coincide (the adversary may be budget-bound).
        base = preset("reactive")
        assert base.content_hash() != base.replace(seed=1).content_hash()
        # Same seed, same everything: summaries are reproducible values.
        assert run_summary(base) == run_summary(preset("reactive"))


class TestPresets:
    def test_quickstart_succeeds_and_impossibility_fails(self):
        assert run(preset("quickstart")).success
        assert run(preset("theorem2")).success
        assert not run(preset("stripe-impossibility")).success

    @pytest.mark.slow
    def test_figure2_preset_reproduces_the_paper_failure(self):
        report = run(preset("figure2"))
        assert not report.success
        assert report.outcome.decided_good + 1 == 84  # square + mid-sides

    def test_unknown_preset_lists_names(self):
        with pytest.raises(ConfigurationError, match="quickstart"):
            preset("warp-speed")
