"""Equivalence suite for the end-to-end scenario fast path.

The referee for this PR's optimizations: whole scenarios run with every
fast-path feature disabled (reference round loop, per-node protocol
state, cold world per run) and enabled (batched driver + burst dedup +
whole-round memo, flat engines, warm world), and the resulting reports
must be identical in every observable — outcome, costs, stats, and the
per-node state the reference implementations maintain (``value_counts``
/ ``received_total`` / ``endorsements``). Same pattern as the PR-2
recorded-traffic suite for ``resolve_slot_reference``.

The base scenario comes from ``tests/strategies.py`` and report equality
is asserted through :func:`repro.fuzz.compare_reports` — the same
comparator the fuzz subsystem applies to sampled scenarios.
"""

import pytest
from hypothesis import HealthCheck, given, settings

import repro.protocols.flat as flat
import repro.protocols.vectorized as vectorized
import repro.radio.mac as mac
import repro.scenario.runner as runner_mod
from repro.adversary.placement import RandomPlacement, StripePlacement
from repro.fuzz import compare_reports
from repro.network.grid import GridSpec
from repro.scenario import ScenarioSpec, run
from strategies import equivalence_spec as _spec, vector_candidate_specs

needs_numpy = pytest.mark.skipif(
    not vectorized.available(), reason="NumPy not installed"
)


def _set_fast(monkeypatch, enabled: bool) -> None:
    monkeypatch.setattr(mac, "DEFAULT_FAST_DRIVER", enabled)
    monkeypatch.setattr(flat, "DEFAULT_FLAT", enabled)
    monkeypatch.setattr(runner_mod, "DEFAULT_WARM_WORLD", enabled)
    # This suite referees the flat engines and the batched driver; the
    # vectorized kernel has its own triple suite below and would
    # otherwise shadow the machinery under test for eligible scenarios.
    monkeypatch.setattr(vectorized, "DEFAULT_VECTOR", False)


def _run_both(monkeypatch, spec):
    _set_fast(monkeypatch, True)
    fast = run(spec)
    _set_fast(monkeypatch, False)
    reference = run(spec)
    return fast, reference


def _run_triple(spec):
    """(vector, flat, reference) reports of one spec.

    Flag handling goes through the fuzz runner's mode switcher — the
    same seam ``repro fuzz`` uses — so property cases here and sampled
    fuzz cases exercise identical machinery.
    """
    from repro.fuzz.runner import _run_mode

    vector, _ = _run_mode(spec, fast=True, vector=True)
    flat_report, _ = _run_mode(spec, fast=True)
    reference, _ = _run_mode(spec, fast=False)
    return vector, flat_report, reference


def _assert_reports_identical(fast, reference):
    assert compare_reports(fast, reference) == []


class TestFlatEngineAndDriverEquivalence:
    """Reference vs fast whole-run equality across protocol/behavior mixes."""

    def test_threshold_jam(self, monkeypatch):
        # Stateful-observe adversary: no burst dedup, eager flushes.
        fast, reference = _run_both(monkeypatch, _spec(behavior="jam"))
        _assert_reports_identical(fast, reference)

    def test_threshold_lie(self, monkeypatch):
        # Spontaneous observe-stateless adversary: dedup with observe off.
        fast, reference = _run_both(monkeypatch, _spec(behavior="lie", mf=3))
        _assert_reports_identical(fast, reference)

    def test_threshold_crash_faults(self, monkeypatch):
        # NullAdversary with budget: consulted but never transmits.
        fast, reference = _run_both(monkeypatch, _spec(behavior="none"))
        _assert_reports_identical(fast, reference)

    def test_cpa_spoof(self, monkeypatch):
        # Flat CPA engine (packed seen-set) under forged endorsements.
        spec = _spec(protocol="cpa", behavior="spoof", m=3, batch_per_slot=1)
        fast, reference = _run_both(monkeypatch, spec)
        _assert_reports_identical(fast, reference)

    def test_koo_jam(self, monkeypatch):
        fast, reference = _run_both(
            monkeypatch, _spec(protocol="koo", m=None, behavior="jam")
        )
        _assert_reports_identical(fast, reference)

    def test_reactive_coded(self, monkeypatch):
        # Queue-based nodes: no flat engine, head-stable peeks only.
        spec = ScenarioSpec(
            grid=GridSpec(width=12, height=12, r=1, torus=True),
            t=1,
            mf=3,
            mmax=10**6,
            placement=RandomPlacement(t=1, count=5, seed=503),
            protocol="reactive",
            seed=3,
        )
        fast, reference = _run_both(monkeypatch, spec)
        _assert_reports_identical(fast, reference)

    def test_reactive_coded_batched_slots(self, monkeypatch):
        # batch_per_slot > 1 with an active jammer: a drained slot owner
        # can be re-armed mid-slot by a jam-induced NACK, so the driver
        # must keep eager flushes and full per-burst owner re-scans
        # (no dedup, no compaction) for queue-based nodes.
        for seed in (0, 1, 2, 3):
            spec = ScenarioSpec(
                grid=GridSpec(width=9, height=9, r=1, torus=True),
                t=1,
                mf=6,
                mmax=10**6,
                placement=RandomPlacement(t=1, count=6, seed=200 + seed),
                protocol="reactive",
                behavior_params={"p_forge": 0.3},
                seed=seed,
                batch_per_slot=3,
            )
            fast, reference = _run_both(monkeypatch, spec)
            _assert_reports_identical(fast, reference)

    def test_stripe_protected_band(self, monkeypatch):
        spec = _spec(
            t=2,
            mf=2,
            m=3,
            placement=StripePlacement(y0=4, t=2),
            batch_per_slot=3,
        )
        fast, reference = _run_both(monkeypatch, spec)
        _assert_reports_identical(fast, reference)

    @pytest.mark.slow
    def test_figure2_paper_instance(self, monkeypatch):
        # The headline workload: 2001-burst source phase, planned
        # defense, burst dedup with multiplicity through the flat engine.
        from repro.experiments.e2_figure2 import paper_spec

        fast, reference = _run_both(monkeypatch, paper_spec())
        _assert_reports_identical(fast, reference)


class TestRoundMemoEquivalence:
    """The whole-round memo path (adversary out of budget) is exact."""

    def test_broke_adversary_replays_rounds(self, monkeypatch):
        # mf=0: the adversary is inactive from round one, so every round
        # runs through the predictable path and repeated rounds replay
        # from the medium's round memo.
        spec = _spec(mf=0, behavior="jam", m=6)
        fast, reference = _run_both(monkeypatch, spec)
        _assert_reports_identical(fast, reference)

    def test_round_memo_actually_hit(self, monkeypatch):
        _set_fast(monkeypatch, True)
        runner_mod._MEDIA.clear()
        runner_mod._GRIDS.clear()
        spec = _spec(mf=0, behavior="jam", m=6)
        report = run(spec)
        assert report.stats.rounds > 1
        # The warm medium of this grid now carries memoized rounds.
        medium = runner_mod._world_for(spec)[2]
        assert medium._round_memo

    def test_reactive_quiet_window_survives_silent_rounds(self, monkeypatch):
        # Silent predictable rounds must still run on_round_end (the
        # reactive quiet-window countdown is driven by it).
        spec = ScenarioSpec(
            grid=GridSpec(width=9, height=9, r=1, torus=True),
            t=1,
            mf=0,
            mmax=100,
            placement=RandomPlacement(t=1, count=3, seed=7),
            protocol="reactive",
            seed=1,
        )
        fast, reference = _run_both(monkeypatch, spec)
        _assert_reports_identical(fast, reference)


class TestWarmWorld:
    """Per-process Grid/Medium sharing across runs of one grid shape."""

    def test_grid_and_medium_shared_across_runs(self, monkeypatch):
        _set_fast(monkeypatch, True)
        runner_mod._GRIDS.clear()
        runner_mod._MEDIA.clear()
        spec = _spec()
        first = run(spec)
        second = run(spec)
        assert first.grid is second.grid  # one CSR build per process
        assert first.outcome == second.outcome
        assert first.costs == second.costs
        assert first.stats == second.stats

    def test_warm_medium_respects_reference_mode(self, monkeypatch):
        # Flipping medium.DEFAULT_FAST must never serve a fast-mode
        # Medium from the warm cache (the key carries the flag).
        import repro.radio.medium as medium_mod

        _set_fast(monkeypatch, True)
        spec = _spec()
        fast_medium = runner_mod._world_for(spec)[2]
        monkeypatch.setattr(medium_mod, "DEFAULT_FAST", False)
        slow_medium = runner_mod._world_for(spec)[2]
        assert fast_medium is not slow_medium
        assert fast_medium.fast and not slow_medium.fast

    def test_cold_mode_builds_fresh_world(self, monkeypatch):
        _set_fast(monkeypatch, True)
        spec = _spec()
        warm = runner_mod._world_for(spec)[0]
        monkeypatch.setattr(runner_mod, "DEFAULT_WARM_WORLD", False)
        cold = runner_mod._world_for(spec)[0]
        assert warm is not cold


class TestAdversaryBudgetGating:
    """Once no bad node can afford a message, on_slot is never consulted."""

    def test_broke_adversary_not_consulted_but_run_identical(self, monkeypatch):
        from repro.adversary.jamming import ThresholdGuardJammer

        calls = {"fast": 0, "reference": 0}

        class CountingJammer(ThresholdGuardJammer):
            mode = "fast"

            def on_slot(self, round_index, slot, honest):
                calls[type(self).mode] += 1
                return super().on_slot(round_index, slot, honest)

        def patched(mode):
            cls = type("Counting", (CountingJammer,), {"mode": mode})
            return lambda grid, table, ledger: cls(
                grid, table, ledger, threshold=3
            )

        spec = _spec(mf=0, behavior="jam", m=6)
        _set_fast(monkeypatch, True)
        fast = run(spec, adversary_override=patched("fast"))
        _set_fast(monkeypatch, False)
        reference = run(spec, adversary_override=patched("reference"))
        _assert_reports_identical(fast, reference)
        # mf=0 means the adversary could never act: the fast driver skips
        # every consultation, the reference loop performs them all.
        assert calls["fast"] == 0
        assert calls["reference"] > 0


@needs_numpy
class TestVectorKernelTripleDifferential:
    """Vectorized vs flat vs reference: all three backends byte-identical.

    Every assertion goes through :func:`repro.fuzz.compare_reports`, so
    node state (``value_counts`` / ``received_total`` / decide rounds)
    is compared, not just the aggregate report.
    """

    def _assert_triple(self, spec, *, expect_engaged: bool = True):
        vector, flat_report, reference = _run_triple(spec)
        if expect_engaged:
            assert isinstance(vector.nodes, vectorized.LazyNodeMap)
        assert compare_reports(vector, reference) == []
        assert compare_reports(flat_report, reference) == []

    def test_broke_jammer(self):
        # mf=0 with bad nodes placed: the jammer exists but can never
        # spend — observe_inert_when_broke lets the kernel take it.
        self._assert_triple(_spec(mf=0, behavior="jam", m=6))

    def test_no_bad_nodes(self):
        self._assert_triple(
            _spec(mf=3, placement=RandomPlacement(t=1, count=0, seed=0))
        )

    def test_koo_and_heter(self):
        self._assert_triple(_spec(protocol="koo", m=None, mf=0))
        self._assert_triple(
            _spec(protocol="heter", m=None, t=2, mf=2,
                  placement=RandomPlacement(t=2, count=0, seed=3))
        )

    def test_degenerate_stripes(self):
        # 1xN / Nx1 bounded stripes (the fuzz sampler's degenerate
        # shapes): CSR segments of wildly varying length, endpoint nodes
        # with tiny neighborhoods — no empty-array broadcasting errors.
        self._assert_triple(
            ScenarioSpec(
                grid=GridSpec(width=1, height=40, r=3, torus=False),
                t=1, mf=0,
                placement=RandomPlacement(t=1, count=2, seed=3),
                protocol="b", behavior="jam",
            )
        )
        self._assert_triple(
            ScenarioSpec(
                grid=GridSpec(width=40, height=1, r=2, torus=False),
                t=1, mf=0,
                placement=RandomPlacement(t=1, count=1, seed=4),
                protocol="b", behavior="none", batch_per_slot=3,
            )
        )

    def test_max_rounds_one_cap(self):
        # The round cap fires before any relay: decided bitmap must hold
        # exactly the source's round-0 audience, with no off-by-one.
        self._assert_triple(_spec(mf=0, behavior="jam", max_rounds=1))

    def test_relay_override_and_zero_budget(self):
        self._assert_triple(
            _spec(mf=0, protocol_params={"relay_override": 5})
        )
        self._assert_triple(_spec(mf=0, m=0, behavior="jam"))

    def test_cpa_and_reactive_fall_through(self):
        # No vector hook: the kernel must decline, not crash.
        spec = _spec(protocol="cpa", behavior="spoof", m=3, mf=0,
                     batch_per_slot=1)
        vector, flat_report, reference = _run_triple(spec)
        assert not isinstance(vector.nodes, vectorized.LazyNodeMap)
        assert compare_reports(vector, reference) == []
        assert compare_reports(flat_report, reference) == []

    def test_active_adversary_falls_through(self):
        # mf>0 with bad nodes: the adversary could transmit, so the
        # kernel must hand the run to the flat engine untouched.
        spec = _spec(mf=2, behavior="jam")
        vector, _flat_report, reference = _run_triple(spec)
        assert not isinstance(vector.nodes, vectorized.LazyNodeMap)
        assert compare_reports(vector, reference) == []

    @given(spec=vector_candidate_specs())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_sampled_scenarios_triple_identical(self, spec):
        # Sampler-shaped scenarios biased toward kernel eligibility
        # (mf=0 half the time); ineligible draws still assert the
        # fall-through path equals the reference.
        vector, flat_report, reference = _run_triple(spec)
        assert compare_reports(vector, reference) == []
        assert compare_reports(flat_report, reference) == []
