"""Shared recipes for the golden-equivalence suite.

Each recipe regenerates one experiment's table at fast (test-sized)
parameters. The checked-in files under ``tests/golden/`` were produced by
these exact recipes *before* the experiments migrated onto
:class:`repro.scenario.ScenarioSpec`; ``tests/test_golden_tables.py``
re-runs them after the migration and requires byte-identical output, so
any numeric drift introduced by the scenario path fails loudly.

Regenerate (only when a table is *intentionally* changed)::

    PYTHONPATH=src:tests python -c "import golden_recipes; golden_recipes.write_all()"
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _e1() -> str:
    from repro.experiments import e1_impossibility as m

    return m.table(m.run_impossibility(ms=(1, 4)))


def _e2() -> str:
    from repro.experiments import e2_figure2 as m

    point = m.Figure2SweepPoint(m=59, mf=1000)
    return m.sweep_table(m.run_sweep(points=(point,)))


def _e3() -> str:
    from repro.experiments import e3_protocol_b as m

    return m.table(m.run_theorem2(configs=((1, 1, 1),)))


def _e4() -> str:
    from repro.experiments import e4_koo_comparison as m

    return m.table(m.run_comparison())


def _e5() -> str:
    from repro.experiments import e5_heterogeneous as m

    return m.table(m.run_heterogeneous(widths=(30,)))


def _e6() -> str:
    from repro.experiments import e6_coding as m

    return m.table(m.run_coding(trials=2000, block_lengths=(4,)))


def _e7() -> str:
    from repro.experiments import e7_reactive as m

    return m.table(m.run_reactive(width=12, bad_count=5, seeds=(0, 1)))


def _e8() -> str:
    from repro.experiments import e8_corollary1 as m

    return m.table(m.run_boundary(ts=(1,), ms=(1, 6)))


def _e9() -> str:
    from repro.experiments import e9_ablations as m

    relay = m.table_a(m.run_relay_sweep())
    quiet = m.table_c(m.run_quiet_window(seeds=(0, 1)))
    return relay + "\n\n" + quiet


def _e10() -> str:
    from repro.experiments import e10_uncertain_region as m

    return m.table(m.run_uncertain_region(fractions=(2.0,)))


def _e11() -> str:
    from repro.experiments import e11_refined_coding_cost as m

    return m.table(m.run_refined_cost(ks=(32,), attack_counts=(0, 1)))


def _e12() -> str:
    from repro.experiments import e12_probabilistic_failures as m

    return m.table(
        m.run_probabilistic_failures(width=18, rs=(1,), ps=(0.0,), trials=1)
    )


def _e13() -> str:
    from repro.experiments import e13_subbit_link as m

    return m.table(m.run_link_validation(sessions=20))


RECIPES = {
    "e1": _e1,
    "e2": _e2,
    "e3": _e3,
    "e4": _e4,
    "e5": _e5,
    "e6": _e6,
    "e7": _e7,
    "e8": _e8,
    "e9": _e9,
    "e10": _e10,
    "e11": _e11,
    "e12": _e12,
    "e13": _e13,
}


def write_all() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for exp_id, recipe in RECIPES.items():
        path = GOLDEN_DIR / f"{exp_id}.txt"
        path.write_text(recipe() + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    write_all()
