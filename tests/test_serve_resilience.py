"""Serve-layer resilience: degraded mode, deadlines, connection resets.

Companion to ``test_serve_service.py`` (happy-path core) — here every
test breaks something and asserts the standing rule: infrastructure
faults may cost latency (inline compute, a retry, a 504), never bytes.
Pool doubles keep these tests in-process and deterministic; the real
spawn-pool recovery path is exercised in ``test_chaos_pool.py``.
"""

import asyncio
import io

import pytest
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from repro.chaos import inject
from repro.chaos.plan import Fault, FaultPlan
from repro.runner.parallel import PersistentPool
from repro.scenario import preset
from repro.serve.http import render_response, run_daemon
from repro.serve.service import (
    InlinePool,
    ScenarioService,
    canonical_bytes,
    report_bytes,
)


@pytest.fixture(autouse=True)
def _disarmed():
    inject.disarm()
    yield
    inject.disarm()


def spec_with_seed(seed):
    return preset("quickstart").replace(seed=seed)


def fake_chunk_runner(specs):
    return [("ok", {"seed": spec.seed}) for spec in specs]


def make_service(**overrides):
    options = dict(pool=InlinePool(), chunk_runner=fake_chunk_runner)
    options.update(overrides)
    return ScenarioService(**options)


def expected_body(spec):
    return canonical_bytes({"seed": spec.seed})


class DeadPool:
    """A pool double whose workers are gone and stay gone."""

    workers = 1
    alive = False
    restarts = 0
    unwrap = staticmethod(PersistentPool.unwrap)

    def submit(self, run, point):
        raise BrokenProcessPool("workers died at startup")

    def revive(self):
        return False

    def shutdown(self, *, wait=True):
        pass


class FlakyPool(InlinePool):
    """Loses its worker on the first submit, then behaves."""

    def __init__(self):
        self.calls = 0

    def submit(self, run, point):
        self.calls += 1
        if self.calls == 1:
            raise BrokenProcessPool("first batch loses its worker")
        return super().submit(run, point)


class StuckPool:
    """A pool whose one chunk future never resolves on its own."""

    workers = 1
    unwrap = staticmethod(PersistentPool.unwrap)

    def __init__(self):
        self.chunk = Future()

    def submit(self, run, point):
        return self.chunk

    def shutdown(self, *, wait=True):
        pass


class TestDegradedMode:
    def test_dead_pool_serves_inline_with_identical_answers(self):
        specs = [spec_with_seed(seed) for seed in (0, 1)]
        service = make_service(pool=DeadPool(), probe_interval=60.0)

        async def scenario():
            await service.start()
            results = [await service.submit_spec(spec) for spec in specs]
            health = service.health_payload()
            await service.drain()
            return results, health

        results, health = asyncio.run(scenario())
        for spec, result in zip(specs, results):
            assert result.status == 200
            assert result.source == "inline-degraded"
            assert result.body == expected_body(spec)
        assert service.degraded
        assert service.stats.degraded_requests == 2
        assert health["status"] == "degraded"
        assert health["degraded"] is True
        assert health["pool_alive"] is False

    def test_probe_batch_recovers_from_degraded_mode(self):
        service = make_service(pool=FlakyPool(), probe_interval=0.0)

        async def scenario():
            await service.start()
            first = await service.submit_spec(spec_with_seed(0))
            second = await service.submit_spec(spec_with_seed(1))
            await service.drain()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.source == "inline-degraded"
        assert first.body == expected_body(spec_with_seed(0))
        assert second.source == "computed"
        assert second.body == expected_body(spec_with_seed(1))
        assert not service.degraded
        assert service.stats.recoveries == 1
        assert service.health_payload()["status"] == "ok"


class TestRequestDeadline:
    def test_stuck_compute_times_out_as_504(self):
        pool = StuckPool()
        service = make_service(pool=pool, request_timeout=0.05)
        spec = spec_with_seed(0)

        async def scenario():
            await service.start()
            result = await service.submit_spec(spec)
            # The deadline abandoned the wait, not the work: resolving
            # the chunk still completes the batch and fills the LRU.
            pool.chunk.set_result((True, [("ok", {"seed": spec.seed})]))
            await service.drain()
            return result

        result = asyncio.run(scenario())
        assert result.status == 504
        assert result.retry_after == service.retry_after
        assert b"deadline" in result.body
        assert service.stats.timeouts == 1
        assert service.lru.get(spec.content_hash()) == expected_body(spec)

    def test_504_renders_gateway_timeout(self):
        assert render_response(504, b"{}").startswith(
            b"HTTP/1.1 504 Gateway Timeout"
        )


class TestConnectionReset:
    def test_reset_then_retry_returns_identical_bytes(self):
        """The worst-timed reset: computed, cached, never delivered."""
        spec = preset("quickstart")
        expected = report_bytes(spec)
        body = spec.to_json(indent=None).encode()
        service = ScenarioService(pool=InlinePool())
        plan = FaultPlan(faults=(Fault(kind="connection-reset"),))

        async def post_run(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(
                    b"POST /run HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status = int(head.split(b" ")[1])
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                payload = await reader.readexactly(length)
                return status, payload
            finally:
                writer.close()

        async def scenario():
            ready = asyncio.Event()
            stop = asyncio.Event()
            log = io.StringIO()
            daemon = asyncio.ensure_future(
                run_daemon(
                    service,
                    host="127.0.0.1",
                    port=0,
                    out=log,
                    ready=ready,
                    stop=stop,
                )
            )
            await ready.wait()
            port = int(log.getvalue().strip().rsplit(":", 1)[1])
            try:
                with inject.armed(plan):
                    with pytest.raises(
                        (ConnectionError, asyncio.IncompleteReadError)
                    ):
                        await post_run(port)
                    retried = await post_run(port)
                    assert inject.counters() == {"connection-reset": 1}
            finally:
                stop.set()
                await daemon
            return retried

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload == expected
