"""Unit tests for :mod:`repro.chaos.plan` and the chaos-point registry."""

import pytest

from repro import seams
from repro.chaos.plan import Fault, FaultPlan, full_plan, sample_plan
from repro.errors import SpecValidationError


class TestFaultValidation:
    def test_unknown_kind_suggests(self):
        with pytest.raises(SpecValidationError) as err:
            Fault(kind="worker-crsh")
        assert "worker-crash" in str(err.value)

    def test_empty_target_rejected(self):
        with pytest.raises(SpecValidationError):
            Fault(kind="worker-crash", target="")

    def test_delay_only_for_worker_slow(self):
        with pytest.raises(SpecValidationError):
            Fault(kind="worker-crash", delay_s=0.5)
        with pytest.raises(SpecValidationError):
            Fault(kind="worker-slow", delay_s=0.0)
        with pytest.raises(SpecValidationError):
            Fault(kind="worker-slow", delay_s=99.0)
        assert Fault(kind="worker-slow", delay_s=0.02).delay_s == 0.02

    def test_mode_defaults_and_validation(self):
        assert Fault(kind="cache-corrupt").mode == "truncate"
        assert Fault(kind="cache-write-fail").mode == "enospc"
        with pytest.raises(SpecValidationError):
            Fault(kind="cache-corrupt", mode="nope")
        with pytest.raises(SpecValidationError):
            Fault(kind="worker-crash", mode="truncate")

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(SpecValidationError) as err:
            Fault.from_dict({"kind": "worker-crash", "targe": "*"})
        assert "target" in str(err.value)


class TestFaultPlanRoundTrip:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                Fault(kind="worker-slow", delay_s=0.03),
                Fault(kind="cache-corrupt", mode="garbage", target="ab12"),
            ),
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.content_hash() == plan.content_hash()

    def test_defaults_omitted_from_dict(self):
        payload = Fault(kind="worker-crash").to_dict()
        assert payload == {"kind": "worker-crash"}

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(SpecValidationError):
            FaultPlan.from_dict({"seed": 0, "fautls": []})

    def test_bad_json_rejected(self):
        with pytest.raises(SpecValidationError):
            FaultPlan.from_json("{not json")

    def test_kinds_sorted_distinct(self):
        plan = FaultPlan(
            faults=(
                Fault(kind="worker-crash"),
                Fault(kind="cache-corrupt"),
                Fault(kind="worker-crash"),
            )
        )
        assert plan.kinds() == ("cache-corrupt", "worker-crash")

    def test_describe_mentions_seed_and_kinds(self):
        text = FaultPlan(seed=3, faults=(Fault(kind="worker-crash"),)).describe()
        assert "seed=3" in text and "worker-crash" in text


class TestSampling:
    def test_same_seed_same_plan(self):
        assert sample_plan(11) == sample_plan(11)
        assert sample_plan(11).content_hash() == sample_plan(11).content_hash()

    def test_seeds_vary_plans(self):
        plans = {sample_plan(seed).content_hash() for seed in range(20)}
        assert len(plans) > 1

    def test_sampled_plans_valid_and_bounded(self):
        for seed in range(30):
            plan = sample_plan(seed, max_faults=3)
            assert 1 <= len(plan.faults) <= 3
            for fault in plan.faults:
                assert fault.kind in seams.CHAOS_KINDS

    def test_full_plan_covers_every_kind_and_mode(self):
        plan = full_plan()
        assert set(plan.kinds()) == set(seams.CHAOS_KINDS)
        modes = {
            (fault.kind, fault.mode)
            for fault in plan.faults
            if fault.mode
        }
        assert ("cache-corrupt", "truncate") in modes
        assert ("cache-corrupt", "garbage") in modes
        assert ("cache-write-fail", "enospc") in modes
        assert ("cache-write-fail", "eperm") in modes


class TestChaosRegistry:
    def test_every_kind_has_an_injection_point(self):
        assert seams.chaos_kinds_covered() == frozenset(seams.CHAOS_KINDS)

    def test_registered_points_enumerable(self):
        seams.load_chaos_sites()
        names = seams.chaos_names()
        assert "pool-worker" in names
        assert "result-cache" in names
        assert "serve-connection" in names

    def test_point_validation(self):
        with pytest.raises(Exception):
            seams.ChaosPoint(
                name="bad", module="m", hook="h", kinds=("not-a-kind",)
            )

    def test_duplicate_registration_rejected(self):
        point = seams.load_chaos_sites()[0]
        with pytest.raises(Exception):
            seams.register_chaos(point)
