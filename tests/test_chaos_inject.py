"""Unit tests for :mod:`repro.chaos.inject` and the cache fault hooks.

Everything here is parent-side and serial: the worker-side fault path
(SIGKILL inside a real spawn worker) lives in ``test_chaos_pool.py``.
"""

import errno
import json

import pytest

from repro.chaos import inject
from repro.chaos.plan import Fault, FaultPlan
from repro.runner.parallel import (
    ResultCache,
    point_key,
    scan_cache_dir,
    sweep,
)
from repro.scenario import preset
from repro.scenario.runner import run_summary
from repro.serve.service import serialize_outcome


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed."""
    inject.disarm()
    yield
    inject.disarm()


def spec_with_seed(seed):
    return preset("quickstart").replace(seed=seed)


class TestArming:
    def test_arm_disarm(self):
        plan = FaultPlan(faults=(Fault(kind="connection-reset"),))
        assert not inject.is_armed()
        inject.arm(plan)
        assert inject.is_armed()
        assert inject.active_plan() == plan
        inject.disarm()
        assert not inject.is_armed()
        assert inject.active_plan() is None

    def test_armed_context_always_disarms(self):
        plan = FaultPlan(faults=(Fault(kind="connection-reset"),))
        with pytest.raises(RuntimeError):
            with inject.armed(plan):
                assert inject.is_armed()
                raise RuntimeError("boom")
        assert not inject.is_armed()

    def test_hooks_noop_when_disarmed(self, tmp_path):
        assert inject.connection_reset() is False
        assert inject.cache_write_fault("abc") is None
        assert inject.on_pool_break() is None
        assert inject.shipped_worker_faults() == ()

    def test_counters_reset_on_arm(self):
        with inject.armed(FaultPlan(faults=(Fault(kind="connection-reset"),))):
            assert inject.connection_reset() is True
        assert inject.counters() == {"connection-reset": 1}
        inject.arm(FaultPlan())
        assert inject.counters() == {}


class TestSpendOnce:
    def test_each_fault_fires_once(self):
        plan = FaultPlan(faults=(Fault(kind="connection-reset"),))
        with inject.armed(plan):
            assert inject.connection_reset() is True
            assert inject.connection_reset() is False

    def test_target_prefix_scopes_fault(self):
        plan = FaultPlan(
            faults=(Fault(kind="cache-write-fail", target="ffff"),)
        )
        with inject.armed(plan):
            assert inject.cache_write_fault("abcd1234") is None
            fault = inject.cache_write_fault("ffff9999")
            assert isinstance(fault, OSError)

    def test_on_pool_break_spends_worker_crash(self):
        plan = FaultPlan(
            faults=(Fault(kind="worker-crash"), Fault(kind="worker-slow", delay_s=0.01))
        )
        with inject.armed(plan):
            assert len(inject.shipped_worker_faults()) == 2
            spent = inject.on_pool_break()
            assert spent is not None and spent.kind == "worker-crash"
            # The crash is spent: a fresh snapshot ships only the slow one.
            remaining = inject.shipped_worker_faults()
            assert [fault.kind for _, fault in remaining] == ["worker-slow"]
            assert inject.on_pool_break() is None


class TestCacheFaults:
    def test_write_fault_modes(self):
        plan = FaultPlan(
            faults=(
                Fault(kind="cache-write-fail", mode="enospc"),
                Fault(kind="cache-write-fail", mode="eperm"),
            )
        )
        with inject.armed(plan):
            first = inject.cache_write_fault("aa")
            second = inject.cache_write_fault("aa")
        assert first.errno == errno.ENOSPC
        assert isinstance(second, PermissionError)
        assert second.errno == errno.EPERM

    def test_store_failure_raises_from_put(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="scenario")
        spec = spec_with_seed(0)
        outcome = run_summary(spec)
        plan = FaultPlan(faults=(Fault(kind="cache-write-fail"),))
        with inject.armed(plan):
            with pytest.raises(OSError):
                cache.put(spec, outcome)
        # The failed store must not leave a partial entry behind.
        hit, _ = cache.get(spec)
        assert not hit
        assert cache.stats.corrupt == 0

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupt_read_recovers_identical_bytes(self, tmp_path, mode):
        cache = ResultCache(str(tmp_path), namespace="scenario")
        spec = spec_with_seed(1)
        golden = serialize_outcome(run_summary(spec))
        cache.put(spec, run_summary(spec))
        plan = FaultPlan(faults=(Fault(kind="cache-corrupt", mode=mode),))
        with inject.armed(plan):
            hit, _ = cache.get(spec)
        assert not hit
        assert cache.stats.corrupt == 1
        # Recompute + overwrite marks the entry recovered...
        cache.put(spec, run_summary(spec))
        assert cache.stats.recovered == 1
        # ...and the healed entry round-trips the fault-free bytes.
        hit, outcome = cache.get(spec)
        assert hit
        assert serialize_outcome(outcome) == golden

    def test_sweep_tolerates_store_failure(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="scenario")
        specs = [spec_with_seed(seed) for seed in (2, 3)]
        goldens = [serialize_outcome(run_summary(spec)) for spec in specs]
        plan = FaultPlan(faults=(Fault(kind="cache-write-fail"),))
        with inject.armed(plan):
            result = sweep(specs, run_summary, workers=1, cache=cache)
        assert [
            serialize_outcome(outcome) for outcome in result.results
        ] == goldens
        # One store failed, the other landed; nothing crashed.
        assert cache.stats.stores == 1


class TestDurableWrites:
    def test_put_leaves_no_tmp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="scenario")
        spec = spec_with_seed(4)
        cache.put(spec, run_summary(spec))
        assert list(tmp_path.glob("*.tmp")) == []
        assert scan_cache_dir(str(tmp_path)).stale_tmp == 0

    def test_scan_counts_interrupted_writes(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="scenario")
        spec = spec_with_seed(5)
        cache.put(spec, run_summary(spec))
        key = point_key(spec)
        stale = tmp_path / f"scenario-{key}.json.1234.tmp"
        stale.write_text(json.dumps({"half": "written"}))
        stats = scan_cache_dir(str(tmp_path))
        assert stats.stale_tmp == 1
        assert stats.entries == 1  # the staging file is not an entry
