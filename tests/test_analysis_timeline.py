"""Tests for propagation-timeline analytics."""

from repro.adversary.placement import RandomPlacement, two_stripe_band
from repro.analysis.timeline import propagation_timeline
from repro.network.grid import Grid, GridSpec
from repro.network.node import NodeTable
from repro.runner.broadcast_run import ThresholdRunConfig
from repro.scenario import run


class StubNode:
    def __init__(self, decided, decide_round=None):
        self.decided = decided
        self.decide_round = decide_round


def test_buckets_group_by_distance():
    grid = Grid(GridSpec(12, 12, r=1, torus=True))
    table = NodeTable(grid, source=0, bad=set())
    nodes = {
        nid: StubNode(decided=True, decide_round=grid.distance(0, nid))
        for nid in table.good_ids
    }
    timeline = propagation_timeline(table, nodes)
    assert timeline.buckets[0].distance == 1
    assert timeline.bucket(1).total == 8  # the L∞ ring at distance 1
    assert timeline.bucket(2).total == 16
    assert timeline.bucket(1).first_round == 1
    assert timeline.front_is_monotone
    assert timeline.covered_radius == 6  # torus max distance


def test_undecided_ring_breaks_coverage():
    grid = Grid(GridSpec(12, 12, r=1, torus=True))
    table = NodeTable(grid, source=0, bad=set())
    nodes = {
        nid: StubNode(
            decided=grid.distance(0, nid) < 3,
            decide_round=grid.distance(0, nid) if grid.distance(0, nid) < 3 else None,
        )
        for nid in table.good_ids
    }
    timeline = propagation_timeline(table, nodes)
    assert timeline.covered_radius == 2
    assert timeline.bucket(3).decided == 0
    assert timeline.bucket(3).first_round is None
    assert not timeline.bucket(3).complete


def test_non_monotone_front_detected():
    grid = Grid(GridSpec(12, 12, r=1, torus=True))
    table = NodeTable(grid, source=0, bad=set())
    nodes = {nid: StubNode(decided=True, decide_round=1) for nid in table.good_ids}
    # Make a distance-1 node decide *later* than distance-2 nodes.
    near = grid.id_of((1, 0))
    nodes[near] = StubNode(decided=True, decide_round=9)
    timeline = propagation_timeline(table, nodes)
    # first_round at distance 1 is still 1 (other ring members), so the
    # front stays monotone; force it by delaying the whole ring.
    for nid in table.good_ids:
        if grid.distance(0, nid) == 1:
            nodes[nid] = StubNode(decided=True, decide_round=9)
    timeline = propagation_timeline(table, nodes)
    assert not timeline.front_is_monotone


def test_real_run_front_is_monotone():
    """Protocol B's growing committed region implies a monotone front."""
    cfg = ThresholdRunConfig(
        spec=GridSpec(18, 18, r=1, torus=True),
        t=1,
        mf=2,
        placement=RandomPlacement(t=1, count=6, seed=4),
        protocol="b",
        batch_per_slot=2,
    )
    report = run(cfg.to_scenario_spec())
    assert report.success
    timeline = propagation_timeline(report.table, report.nodes)
    assert timeline.front_is_monotone
    assert timeline.covered_radius == 9


def test_starved_band_shows_in_timeline():
    spec = GridSpec(30, 30, r=2, torus=True)
    grid = Grid(spec)
    placement, band_rows = two_stripe_band(grid, t=2, band_height=6, below_y0=8)
    band = [grid.id_of((x, y)) for y in band_rows for x in range(30)]
    cfg = ThresholdRunConfig(
        spec=spec,
        t=2,
        mf=3,
        placement=placement,
        protocol="b",
        m=1,  # below m0: the band starves
        protected=band,
        batch_per_slot=4,
    )
    report = run(cfg.to_scenario_spec())
    timeline = propagation_timeline(report.table, report.nodes)
    assert timeline.covered_radius < 15
    incomplete = [b for b in timeline.buckets if not b.complete]
    assert incomplete, "the starved band must appear as incomplete rings"
