"""Tests for runner default wiring (budgets, max rounds, report handles)."""

import pytest

from repro.adversary.placement import RandomPlacement
from repro.analysis.bounds import koo_budget, protocol_b_relay_count
from repro.network.grid import GridSpec
from repro.protocols.protocol_b import protocol_b_required_budget
from repro.runner.broadcast_run import ReactiveRunConfig, ThresholdRunConfig
from repro.scenario import run as run_spec

SPEC = GridSpec(width=12, height=12, r=1, torus=True)
PLACEMENT = RandomPlacement(t=1, count=4, seed=9)


def run(**kwargs):
    defaults = dict(
        spec=SPEC, t=1, mf=2, placement=PLACEMENT, protocol="b", batch_per_slot=4
    )
    defaults.update(kwargs)
    return run_spec(ThresholdRunConfig(**defaults).to_scenario_spec())


class TestDefaultBudgets:
    def test_protocol_b_defaults_to_2m0(self):
        report = run()
        expected = protocol_b_required_budget(1, 1, 2)
        non_source = next(
            nid for nid in report.table.good_ids if nid != report.table.source
        )
        assert report.assignment.budget_of(non_source) == expected

    def test_koo_defaults_to_2tmf_plus_1(self):
        report = run(protocol="koo")
        non_source = next(
            nid for nid in report.table.good_ids if nid != report.table.source
        )
        assert report.assignment.budget_of(non_source) == koo_budget(1, 2)

    def test_source_always_unbounded(self):
        report = run()
        assert report.ledger.budget_of(report.table.source) is None

    def test_bad_budgets_are_mf(self):
        report = run(mf=3)
        for bad in report.table.bad_ids:
            assert report.ledger.budget_of(bad) == 3

    def test_heter_ignores_m(self):
        report = run(protocol="heter", m=99)
        assert report.assignment.maximum == protocol_b_relay_count(1, 1, 2)


class TestReportHandles:
    def test_report_exposes_live_objects(self):
        report = run()
        assert report.grid.n == SPEC.n
        assert report.success == report.outcome.success
        assert set(report.nodes) == set(report.table.good_ids)

    def test_relay_override_changes_sends(self):
        default = run(m=None)
        boosted = run(m=6, relay_override=6)
        assert boosted.costs.good_max == 6
        assert default.costs.good_max == protocol_b_relay_count(1, 1, 2)


class TestMaxRoundsDefaults:
    def test_default_cap_suffices_for_success(self):
        report = run(max_rounds=None)
        assert report.success and report.stats.quiescent

    def test_tiny_cap_reports_non_quiescent(self):
        report = run(max_rounds=1)
        assert not report.stats.quiescent

    def test_reactive_default_cap_suffices(self):
        report = run_spec(
            ReactiveRunConfig(
                spec=SPEC, t=1, mf=1, mmax=100, placement=PLACEMENT, seed=0
            ).to_scenario_spec()
        )
        assert report.success and report.stats.quiescent


class TestVtruePlumbing:
    def test_custom_vtrue_value(self):
        report = run(vtrue=7)
        decided = [n for n in report.nodes.values() if n.decided]
        assert decided
        assert all(n.accepted_value == 7 for n in decided)
        assert report.outcome.correct

    def test_m_must_be_positive_via_bounds(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run(max_rounds=0)
