"""Tests for the end-to-end scenario benchmark harness."""

import json

import repro.protocols.flat as flat
import repro.radio.mac as mac
import repro.scenario.runner as runner_mod
from repro.runner.bench import (
    DEFAULT_SCENARIO_OUT,
    append_trajectory,
    check_regression,
    format_scenario_entry,
    run_scenario_bench,
)


def test_default_out_is_the_scenario_trajectory():
    assert DEFAULT_SCENARIO_OUT == "BENCH_scenario_run.json"


def test_quick_bench_single_preset_entry_shape():
    entry = run_scenario_bench(quick=True, presets=("quickstart",))
    assert entry["quick"] is True
    (timing,) = entry["scenarios"]
    assert timing["name"] == "quickstart"
    assert timing["rounds"] > 0
    assert timing["deliveries"] > 0
    assert timing["legacy_s"] > 0 and timing["fast_s"] > 0
    assert timing["speedup"] == timing["legacy_s"] / timing["fast_s"]
    assert entry["overall_speedup"] > 0
    # The flag flip-flopping must leave the process defaults untouched.
    assert mac.DEFAULT_FAST_DRIVER
    assert flat.DEFAULT_FLAT
    assert runner_mod.DEFAULT_WARM_WORLD
    # And the report table renders.
    rendered = format_scenario_entry(entry)
    assert "quickstart" in rendered
    assert "overall speedup" in rendered


def test_trajectory_append_and_regression_gate(tmp_path):
    out = tmp_path / "BENCH_scenario_run.json"
    good = {"timestamp": "t0", "overall_speedup": 9.0, "scenarios": []}
    payload = append_trajectory(good, out, benchmark="scenario_run")
    assert payload["benchmark"] == "scenario_run"
    assert json.loads(out.read_text())["runs"] == [good]

    fine = {"timestamp": "t1", "overall_speedup": 8.0, "scenarios": []}
    assert check_regression(fine, out, label="scenario-run") is None

    regressed = {"timestamp": "t2", "overall_speedup": 2.0, "scenarios": []}
    message = check_regression(regressed, out, label="scenario-run")
    assert message is not None and "scenario-run" in message

    append_trajectory(fine, out, benchmark="scenario_run")
    assert [r["timestamp"] for r in json.loads(out.read_text())["runs"]] == [
        "t0",
        "t1",
    ]


def test_missing_trajectory_never_gates(tmp_path):
    entry = {"timestamp": "t", "overall_speedup": 1.0, "scenarios": []}
    assert check_regression(entry, tmp_path / "absent.json") is None


def test_cross_benchmark_out_is_rejected(tmp_path):
    from repro.runner.bench import main_bench

    out = tmp_path / "slot.json"
    out.write_text(json.dumps({"benchmark": "slot_resolution", "runs": []}))
    assert main_bench(which="scenario", out=out, quick=True) == 2
    assert json.loads(out.read_text())["runs"] == []  # untouched
