"""Tests for the end-to-end scenario benchmark harness."""

import json

import pytest

import repro.protocols.flat as flat
import repro.radio.mac as mac
import repro.scenario.runner as runner_mod
from repro.runner.bench import (
    DEFAULT_SCENARIO_OUT,
    append_trajectory,
    check_regression,
    format_scenario_entry,
    run_scenario_bench,
)


def test_default_out_is_the_scenario_trajectory():
    assert DEFAULT_SCENARIO_OUT == "BENCH_scenario_run.json"


def test_quick_bench_single_preset_entry_shape():
    entry = run_scenario_bench(
        quick=True, presets=("quickstart",), vector_preset=None
    )
    assert entry["quick"] is True
    (timing,) = entry["scenarios"]
    assert timing["name"] == "quickstart"
    assert timing["rounds"] > 0
    assert timing["deliveries"] > 0
    assert timing["legacy_s"] > 0 and timing["fast_s"] > 0
    assert timing["speedup"] == timing["legacy_s"] / timing["fast_s"]
    assert entry["overall_speedup"] > 0
    # The flag flip-flopping must leave the process defaults untouched.
    assert mac.DEFAULT_FAST_DRIVER
    assert flat.DEFAULT_FLAT
    assert runner_mod.DEFAULT_WARM_WORLD
    # And the report table renders.
    rendered = format_scenario_entry(entry)
    assert "quickstart" in rendered
    assert "overall speedup" in rendered


def test_trajectory_append_and_regression_gate(tmp_path):
    out = tmp_path / "BENCH_scenario_run.json"
    good = {"timestamp": "t0", "overall_speedup": 9.0, "scenarios": []}
    payload = append_trajectory(good, out, benchmark="scenario_run")
    assert payload["benchmark"] == "scenario_run"
    assert json.loads(out.read_text())["runs"] == [good]

    fine = {"timestamp": "t1", "overall_speedup": 8.0, "scenarios": []}
    assert check_regression(fine, out, label="scenario-run") is None

    regressed = {"timestamp": "t2", "overall_speedup": 2.0, "scenarios": []}
    message = check_regression(regressed, out, label="scenario-run")
    assert message is not None and "scenario-run" in message

    append_trajectory(fine, out, benchmark="scenario_run")
    assert [r["timestamp"] for r in json.loads(out.read_text())["runs"]] == [
        "t0",
        "t1",
    ]


def test_regression_gate_ignores_other_flavor_entries(tmp_path):
    """Quick entries gate against quick history only (and full vs full).

    Quick and full runs use different repeat counts, so their speedups
    are not comparable; the gate used to read ``runs[-1]`` regardless of
    flavor, which both hid real quick-flavor regressions behind a slow
    full entry and raised spurious failures the other way around.
    """
    out = tmp_path / "BENCH_scenario_run.json"
    quick_fast = {"timestamp": "t0", "quick": True, "overall_speedup": 9.0}
    full_slow = {"timestamp": "t1", "quick": False, "overall_speedup": 2.0}
    append_trajectory(quick_fast, out, benchmark="scenario_run")
    append_trajectory(full_slow, out, benchmark="scenario_run")

    # A regressed quick run must gate against the quick 9.0x baseline,
    # not slip past by comparing to the trailing full 2.0x entry.
    regressed_quick = {"timestamp": "t2", "quick": True, "overall_speedup": 5.0}
    message = check_regression(regressed_quick, out, label="scenario-run")
    assert message is not None and "9.0x" in message

    # A full run slightly under the full baseline must pass, not gate
    # against the quick entry's inflated 9.0x.
    fine_full = {"timestamp": "t3", "quick": False, "overall_speedup": 1.9}
    assert check_regression(fine_full, out, label="scenario-run") is None

    # With no same-flavor history at all, the gate stays silent.
    only_full = tmp_path / "full_only.json"
    append_trajectory(full_slow, only_full, benchmark="scenario_run")
    assert check_regression(regressed_quick, only_full) is None


def test_vector_section_cross_checks_then_times(monkeypatch):
    pytest.importorskip("numpy")
    import repro.runner.bench as bench
    from repro.adversary.placement import RandomPlacement
    from repro.network.grid import GridSpec
    from repro.scenario import ScenarioSpec
    from repro.scenario import presets as presets_mod

    def _minitorus():
        return ScenarioSpec(
            grid=GridSpec(width=15, height=15, r=2, torus=True),
            t=1,
            mf=1,
            placement=RandomPlacement(t=1, count=0, seed=0),
            protocol="b",
            behavior="none",
            batch_per_slot=4,
            seed=0,
        )

    monkeypatch.setitem(presets_mod._PRESETS, "minitorus", _minitorus)
    monkeypatch.setattr(bench, "_VECTOR_CHECK_SIDE", 10)
    section = bench._vector_bench_section("minitorus", quick=True)
    assert section == {
        "preset": "minitorus",
        "available": True,
        "n": 225,
        "check_grid": "10x10",
        "rounds": section["rounds"],
        "deliveries": section["deliveries"],
        "success": True,
        "run_s": section["run_s"],
    }
    assert section["rounds"] > 0
    assert section["deliveries"] > 0
    assert section["run_s"] > 0
    # The flag flip-flopping must leave the process defaults untouched.
    import repro.protocols.vectorized as vectorized

    assert vectorized.DEFAULT_VECTOR


def test_format_scenario_entry_renders_vector_section():
    base = {
        "fast_repeats": 2,
        "legacy_repeats": 1,
        "scenarios": [],
        "overall_speedup": 3.0,
    }
    with_kernel = dict(
        base,
        vector={
            "preset": "megatorus",
            "available": True,
            "n": 1000000,
            "check_grid": "100x100",
            "rounds": 334,
            "deliveries": 24000048,
            "success": True,
            "run_s": 4.62,
        },
    )
    rendered = format_scenario_entry(with_kernel)
    assert "megatorus" in rendered and "4.62s" in rendered

    without_numpy = dict(
        base, vector={"preset": "megatorus", "available": False}
    )
    rendered = format_scenario_entry(without_numpy)
    assert "NumPy" in rendered and "skipped" in rendered

    assert "vector" not in format_scenario_entry(base)


def test_missing_trajectory_never_gates(tmp_path):
    entry = {"timestamp": "t", "overall_speedup": 1.0, "scenarios": []}
    assert check_regression(entry, tmp_path / "absent.json") is None


def test_cross_benchmark_out_is_rejected(tmp_path):
    from repro.runner.bench import main_bench

    out = tmp_path / "slot.json"
    out.write_text(json.dumps({"benchmark": "slot_resolution", "runs": []}))
    assert main_bench(which="scenario", out=out, quick=True) == 2
    assert json.loads(out.read_text())["runs"] == []  # untouched
