"""Integration tests: every experiment regenerates the paper's claims.

These run the same harnesses the benchmarks use, at reduced sizes where
the full configuration would be slow; E2 runs at the paper's exact
parameters because its numbers are the point.
"""

import pytest

from repro.experiments.e1_impossibility import run_impossibility
from repro.experiments.e3_protocol_b import run_theorem2
from repro.experiments.e4_koo_comparison import analytic_rows, run_comparison
from repro.experiments.e5_heterogeneous import run_heterogeneous
from repro.experiments.e6_coding import overhead_rows, run_cancellation, run_detection
from repro.experiments.e7_reactive import run_reactive
from repro.experiments.e8_corollary1 import run_boundary
from repro.experiments.e9_ablations import run_quiet_window, run_relay_sweep


class TestE1Impossibility:
    def test_fails_below_m0_succeeds_at_2m0(self):
        result = run_impossibility(ms=(1, 4))
        assert result.m0 == 2
        assert result.fails_below_m0
        assert result.succeeds_at_2m0

    def test_starved_band_is_fully_starved(self):
        result = run_impossibility(ms=(1,))
        point = result.points[0]
        assert point.band_decided == 0
        assert not point.success


@pytest.mark.slow
class TestE2Figure2:
    def test_paper_numbers(self):
        from repro.experiments.e2_figure2 import run_figure2

        result = run_figure2()
        assert result.m0 == 58
        assert result.decided_good + 1 == 84  # incl. source
        assert result.p_suppliers == 33
        assert result.p_potential == 1947
        assert result.midside_potential == 2065
        assert result.p_clean <= 1000
        assert result.defender_spend <= 1000
        assert result.broadcast_failed


class TestE3Theorem2:
    def test_protocol_b_always_succeeds_at_2m0(self):
        result = run_theorem2(configs=((1, 1, 2), (2, 2, 3)))
        assert result.all_succeed
        assert result.cost_within_twice_lower_bound


class TestE4Comparison:
    def test_analytic_ratio_tracks_paper(self):
        for row in analytic_rows(((4, 1, 1000), (2, 4, 3))):
            assert row.ratio == pytest.approx(row.paper_ratio, rel=0.25)

    def test_measured_b_cheaper(self):
        result = run_comparison()
        assert result.measured.koo_success and result.measured.b_success
        assert result.measured.b_max_sent < result.measured.koo_max_sent


class TestE5Heterogeneous:
    def test_succeeds_and_saves(self):
        result = run_heterogeneous(widths=(30, 60))
        assert result.all_succeed
        assert result.always_cheaper_than_homogeneous
        # Savings grow with network size (the Θ(r³) cross dilutes).
        stripe_points = [p for p in result.points if p.placement == "stripe-band"]
        assert stripe_points[-1].average_budget < stripe_points[0].average_budget


class TestE6Coding:
    def test_overhead_strictly_better_than_icode_for_large_k(self):
        for row in overhead_rows((32, 256, 1024)):
            assert row.chain_K < row.icode_K

    def test_detection_is_total(self):
        result = run_detection(trials=300)
        assert result.detection_rate == 1.0
        assert result.literal_allzero_forgery_passes  # the documented gap

    def test_cancellation_rate_matches_analytic(self):
        rows = run_cancellation(block_lengths=(4,), trials=20000)
        row = rows[0]
        assert row.measured_rate == pytest.approx(row.analytic_rate, rel=0.25)


class TestE7Reactive:
    def test_reliability_and_cost(self):
        result = run_reactive(width=12, bad_count=5, seeds=(0, 1, 2))
        assert result.success_rate == 1.0
        assert result.within_paper_bound
        assert result.forced_failure_wrong > 0


class TestE8Boundary:
    def test_consistency_with_corollary1(self):
        result = run_boundary(ts=(1, 3), ms=(1, 2, 4))
        assert result.all_consistent
        # The impossibility side is realized at least somewhere.
        assert result.breakable_failure_rate > 0


class TestE9Ablations:
    def test_relay_sweep_knee(self):
        points = run_relay_sweep()
        by_label = {p.label: p for p in points}
        assert not by_label["m0 - 1"].success
        assert any("protocol B" in label and p.success for label, p in by_label.items())
        assert by_label["2tmf+1 (Koo)"].success

    def test_quiet_window_robustness_finding(self):
        points = run_quiet_window(windows=(1, 8), seeds=(0, 1))
        # Documented finding: reliability is window-insensitive in this
        # model (jams are audible garbage); see EXPERIMENTS.md E9c.
        assert all(p.success_rate == 1.0 for p in points)
