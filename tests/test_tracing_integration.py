"""Integration tests for structured tracing through a full run."""

from repro.adversary.placement import RandomPlacement, two_stripe_band
from repro.network.grid import Grid, GridSpec
from repro.runner.broadcast_run import ThresholdRunConfig
from repro.scenario import run
from repro.sim.trace import Tracer


def test_deliveries_traced_match_stats():
    tracer = Tracer(enabled=True)
    cfg = ThresholdRunConfig(
        spec=GridSpec(12, 12, r=1, torus=True),
        t=1,
        mf=1,
        placement=RandomPlacement(t=1, count=3, seed=0),
        protocol="b",
        batch_per_slot=4,
        tracer=tracer,
    )
    report = run(cfg.to_scenario_spec(), tracer=tracer)
    assert report.success
    assert tracer.count("radio.deliver") == report.stats.deliveries
    corrupted = [
        event for event in tracer.of_kind("radio.deliver") if event.data["corrupted"]
    ]
    assert len(corrupted) == report.stats.corrupted_deliveries


def test_jam_events_traced_and_charged():
    spec = GridSpec(30, 30, r=2, torus=True)
    grid = Grid(spec)
    placement, band_rows = two_stripe_band(grid, t=2, band_height=6, below_y0=8)
    band = [grid.id_of((x, y)) for y in band_rows for x in range(30)]
    tracer = Tracer(enabled=True, keep=lambda e: e.kind.startswith("adversary"))
    cfg = ThresholdRunConfig(
        spec=spec,
        t=2,
        mf=3,
        placement=placement,
        protocol="b",
        m=1,
        protected=band,
        batch_per_slot=4,
        tracer=tracer,
    )
    report = run(cfg.to_scenario_spec(), tracer=tracer)
    jams = tracer.of_kind("adversary.jam")
    assert len(jams) == report.costs.bad_total
    # Every traced jammer really is a Byzantine node and was charged.
    for event in jams:
        jammer = event.data["jammer"]
        assert report.table.is_bad(jammer)
        assert report.ledger.sent(jammer) >= 1
