"""Tests for the liar and spoofing adversaries."""

from repro.adversary.lying import SpamLiar, SpoofingJammer
from repro.network.grid import Grid, GridSpec
from repro.network.node import NodeTable
from repro.radio.budget import BudgetLedger
from repro.radio.messages import Transmission
from repro.radio.schedule import TdmaSchedule


def setup(bad_coords=((6, 6),), mf=2, r=1):
    grid = Grid(GridSpec(12, 12, r=r, torus=True))
    bad = {grid.id_of(c) for c in bad_coords}
    table = NodeTable(grid, source=0, bad=bad)
    ledger = BudgetLedger(grid.n, default_budget=None, overrides={b: mf for b in bad})
    return grid, table, ledger


class TestSpamLiar:
    def test_lies_in_own_slot_only(self):
        grid, table, ledger = setup()
        liar = SpamLiar(grid, table, ledger)
        bad_id = grid.id_of((6, 6))
        own_slot = TdmaSchedule(grid).slot_of(bad_id)
        for slot in range(TdmaSchedule(grid).period):
            actions = liar.on_slot(0, slot, [])
            if slot == own_slot:
                assert [a.sender for a in actions] == [bad_id]
                assert actions[0].value == 0
            else:
                assert actions == []

    def test_has_pending_until_budget_gone(self):
        grid, table, ledger = setup(mf=1)
        liar = SpamLiar(grid, table, ledger)
        assert liar.has_pending()
        ledger.charge(grid.id_of((6, 6)))
        assert not liar.has_pending()

    def test_multiple_bad_nodes(self):
        grid, table, ledger = setup(bad_coords=((6, 6), (3, 9)))
        liar = SpamLiar(grid, table, ledger)
        total = sum(
            len(liar.on_slot(0, slot, [])) for slot in range(TdmaSchedule(grid).period)
        )
        assert total == 2


class TestSpoofingJammer:
    def test_jams_with_victim_identity(self):
        grid, table, ledger = setup()
        jammer = SpoofingJammer(grid, table, ledger)
        victim = grid.id_of((5, 6))
        actions = jammer.on_slot(0, 0, [Transmission(victim, 1)])
        assert len(actions) == 1
        assert actions[0].spoof_sender == victim
        assert actions[0].value == 0
        assert table.is_bad(actions[0].sender)

    def test_out_of_range_victims_ignored(self):
        grid, table, ledger = setup()
        far_victim = grid.id_of((0, 0))  # distance > 2r from (6, 6)
        assert jammer_actions(grid, table, ledger, far_victim) == []

    def test_budget_respected(self):
        grid, table, ledger = setup(mf=1)
        jammer = SpoofingJammer(grid, table, ledger)
        victim = grid.id_of((5, 6))
        first = jammer.on_slot(0, 0, [Transmission(victim, 1)])
        ledger.charge(first[0].sender)
        assert jammer.on_slot(0, 1, [Transmission(victim, 1)]) == []

    def test_one_transmission_per_jammer_per_slot(self):
        grid, table, ledger = setup(mf=10)
        jammer = SpoofingJammer(grid, table, ledger)
        v1, v2 = grid.id_of((5, 6)), grid.id_of((7, 6))
        actions = jammer.on_slot(0, 0, [Transmission(v1, 1), Transmission(v2, 1)])
        assert len(actions) == 1


def jammer_actions(grid, table, ledger, victim):
    jammer = SpoofingJammer(grid, table, ledger)
    return jammer.on_slot(0, 0, [Transmission(victim, 1)])
