"""Tests for the sub-bit layer."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.coding.subbit import SubbitCodec
from repro.errors import CodingError


def codec(length=6, seed=0):
    return SubbitCodec(block_length=length, rng=random.Random(seed))


def test_zero_bit_is_all_silent():
    assert codec().encode_bit(0) == (0,) * 6


def test_one_bit_is_never_all_silent():
    c = codec()
    for _ in range(200):
        block = c.encode_bit(1)
        assert any(block)
        assert len(block) == 6


def test_invalid_bit_rejected():
    with pytest.raises(CodingError):
        codec().encode_bit(2)


def test_block_length_validation():
    with pytest.raises(CodingError):
        SubbitCodec(block_length=0, rng=random.Random(0))


@given(st.lists(st.integers(0, 1), min_size=1, max_size=32).map(tuple))
def test_encode_decode_roundtrip(bits):
    c = codec(length=5, seed=42)
    assert c.decode(c.encode(bits)) == bits


def test_decode_block_rules():
    c = codec(length=4)
    assert c.decode_block((0, 0, 0, 0)) == 0
    assert c.decode_block((0, 0, 1, 0)) == 1
    with pytest.raises(CodingError):
        c.decode_block((0, 0))


def test_decode_rejects_ragged_signal():
    c = codec(length=4)
    with pytest.raises(CodingError):
        c.decode((0, 0, 0))


def test_blocks_split():
    c = codec(length=3)
    signal = c.encode((1, 0))
    blocks = c.blocks(signal)
    assert len(blocks) == 2
    assert blocks[1] == (0, 0, 0)


def test_deterministic_given_rng():
    a = SubbitCodec(5, random.Random(9)).encode((1, 1, 0))
    b = SubbitCodec(5, random.Random(9)).encode((1, 1, 0))
    assert a == b
