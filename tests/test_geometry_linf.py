"""Tests for the L∞ metric, planar and toroidal (incl. metric axioms)."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.linf import (
    chebyshev,
    chebyshev_torus,
    half_neighborhood_size,
    linf_ball_offsets,
    neighborhood_size,
    torus_delta,
    wrap,
)

coords = st.tuples(st.integers(-50, 50), st.integers(-50, 50))
sizes = st.integers(3, 40)


def test_chebyshev_examples():
    assert chebyshev((0, 0), (3, 1)) == 3
    assert chebyshev((0, 0), (-2, -5)) == 5
    assert chebyshev((4, 4), (4, 4)) == 0


def test_wrap():
    assert wrap(7, 5) == 2
    assert wrap(-1, 5) == 4
    assert wrap(5, 5) == 0


def test_torus_delta_examples():
    assert torus_delta(0, 9, 10) == 1  # wrap-around is shorter
    assert torus_delta(2, 5, 10) == 3
    assert torus_delta(0, 5, 10) == 5


def test_chebyshev_torus_wraps_both_axes():
    assert chebyshev_torus((0, 0), (9, 9), 10, 10) == 1
    assert chebyshev_torus((0, 0), (5, 1), 10, 10) == 5


@given(coords, coords)
def test_planar_metric_symmetry(a, b):
    assert chebyshev(a, b) == chebyshev(b, a)


@given(coords, coords, coords)
def test_planar_triangle_inequality(a, b, c):
    assert chebyshev(a, c) <= chebyshev(a, b) + chebyshev(b, c)


@given(coords, coords)
def test_planar_identity(a, b):
    assert (chebyshev(a, b) == 0) == (a == b)


@given(coords, coords, sizes, sizes)
def test_torus_metric_symmetry(a, b, w, h):
    assert chebyshev_torus(a, b, w, h) == chebyshev_torus(b, a, w, h)


@given(coords, coords, coords, sizes, sizes)
def test_torus_triangle_inequality(a, b, c, w, h):
    ab = chebyshev_torus(a, b, w, h)
    bc = chebyshev_torus(b, c, w, h)
    ac = chebyshev_torus(a, c, w, h)
    assert ac <= ab + bc


@given(coords, sizes, sizes)
def test_torus_distance_invariant_under_wrapping(a, w, h):
    shifted = (a[0] + 3 * w, a[1] - 2 * h)
    assert chebyshev_torus(a, shifted, w, h) == 0


@given(coords, coords, sizes, sizes)
def test_torus_never_exceeds_planar(a, b, w, h):
    wrapped_a = (a[0] % w, a[1] % h)
    wrapped_b = (b[0] % w, b[1] % h)
    assert chebyshev_torus(a, b, w, h) <= chebyshev(wrapped_a, wrapped_b)


def test_ball_offsets_count_matches_formula():
    for r in range(1, 5):
        assert len(linf_ball_offsets(r)) == neighborhood_size(r)
        assert len(linf_ball_offsets(r, include_center=True)) == (2 * r + 1) ** 2


def test_ball_offsets_exclude_center_by_default():
    assert (0, 0) not in linf_ball_offsets(2)
    assert (0, 0) in linf_ball_offsets(2, include_center=True)


def test_ball_offsets_all_within_radius():
    for r in (1, 3):
        for dx, dy in linf_ball_offsets(r):
            assert max(abs(dx), abs(dy)) <= r


def test_ball_offsets_negative_radius_rejected():
    with pytest.raises(ValueError):
        linf_ball_offsets(-1)


def test_half_neighborhood_is_r_times_2r_plus_1():
    assert half_neighborhood_size(1) == 3
    assert half_neighborhood_size(2) == 10
    assert half_neighborhood_size(4) == 36
